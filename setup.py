"""Setup shim for environments without the `wheel` package.

`pip install -e .` uses this via the legacy code path; package metadata
lives in pyproject.toml.
"""
from setuptools import setup

setup()
