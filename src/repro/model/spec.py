"""LLM model specifications.

Mirrors Table 3 of the paper (GPT-3 variants with their default tensor /
pipeline parallelism degrees) plus the four open models used in Figure 5
(GPT-NeoX, LLaMA2, OPT, MPT).  A :class:`ModelSpec` carries exactly the
architectural parameters that the simulators need: layer count, head count,
model dimension and datatype width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class ModelSpec:
    """Architecture description of a decoder-only transformer.

    Attributes
    ----------
    name:
        Human-readable model name (e.g. ``"gpt3-13b"``).
    num_layers:
        Number of decoder blocks.
    num_heads:
        Attention heads per block.
    d_model:
        Embedding (model) dimension ``E``.
    ffn_mult:
        FFN inner dimension as a multiple of ``d_model`` (4 for GPT-3).
    dtype_bytes:
        Bytes per parameter/activation element (2 for fp16).
    tensor_parallel:
        Default tensor-parallel degree from Table 3.
    pipeline_parallel:
        Default pipeline-parallel degree from Table 3.
    """

    name: str
    num_layers: int
    num_heads: int
    d_model: int
    ffn_mult: int = 4
    dtype_bytes: int = 2
    tensor_parallel: int = 1
    pipeline_parallel: int = 1

    def __post_init__(self) -> None:
        if self.d_model % self.num_heads != 0:
            raise ValueError(
                f"{self.name}: d_model {self.d_model} not divisible by "
                f"num_heads {self.num_heads}"
            )
        for field_name in ("num_layers", "num_heads", "d_model", "ffn_mult",
                           "dtype_bytes", "tensor_parallel", "pipeline_parallel"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{self.name}: {field_name} must be positive")

    @property
    def head_dim(self) -> int:
        """Per-head dimension ``E / num_heads``."""
        return self.d_model // self.num_heads

    @property
    def d_ffn(self) -> int:
        """FFN inner dimension."""
        return self.d_model * self.ffn_mult

    @property
    def num_parameters(self) -> int:
        """Approximate parameter count of the decoder stack.

        Per block: QKV (3·E²) + projection (E²) + two FFN matrices
        (2·ffn_mult·E²).  Embeddings and layer norms are ignored, matching
        the operator set the simulators model.
        """
        per_block = (4 + 2 * self.ffn_mult) * self.d_model * self.d_model
        return per_block * self.num_layers

    @property
    def weight_bytes(self) -> int:
        """Total decoder weight footprint in bytes."""
        return self.num_parameters * self.dtype_bytes

    def kv_bytes_per_token(self) -> int:
        """KV-cache bytes appended per generated token (all layers)."""
        return 2 * self.d_model * self.dtype_bytes * self.num_layers

    def layers_per_stage(self, pipeline_parallel: int) -> int:
        """Decoder blocks resident on one device of a PP partition."""
        if pipeline_parallel <= 0:
            raise ValueError("pipeline_parallel must be positive")
        return max(1, -(-self.num_layers // pipeline_parallel))

    def heads_per_shard(self, tensor_parallel: int) -> int:
        """Attention heads owned by one device of a TP partition.

        Megatron-style sharding splits heads (and FFN columns) across
        devices; activations keep the full ``d_model``.  GEMM shapes under
        TP are derived in :mod:`repro.model.layers` from this head count.
        """
        if tensor_parallel <= 0:
            raise ValueError("tensor_parallel must be positive")
        if self.num_heads % tensor_parallel != 0:
            raise ValueError(
                f"{self.name}: num_heads {self.num_heads} not divisible by "
                f"tensor parallel degree {tensor_parallel}"
            )
        return self.num_heads // tensor_parallel


GPT3_7B = ModelSpec("gpt3-7b", num_layers=32, num_heads=32, d_model=4096,
                    tensor_parallel=4, pipeline_parallel=1)
GPT3_13B = ModelSpec("gpt3-13b", num_layers=40, num_heads=40, d_model=5120,
                     tensor_parallel=4, pipeline_parallel=1)
GPT3_30B = ModelSpec("gpt3-30b", num_layers=48, num_heads=56, d_model=7168,
                     tensor_parallel=4, pipeline_parallel=2)
GPT3_175B = ModelSpec("gpt3-175b", num_layers=96, num_heads=96, d_model=12288,
                      tensor_parallel=8, pipeline_parallel=4)

GPT_NEOX_20B = ModelSpec("gpt-neox-20b", num_layers=44, num_heads=64, d_model=6144)
LLAMA2_13B = ModelSpec("llama2-13b", num_layers=40, num_heads=40, d_model=5120)
OPT_30B = ModelSpec("opt-30b", num_layers=48, num_heads=56, d_model=7168)
MPT_30B = ModelSpec("mpt-30b", num_layers=48, num_heads=64, d_model=7168)

MODEL_REGISTRY: Dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (
        GPT3_7B,
        GPT3_13B,
        GPT3_30B,
        GPT3_175B,
        GPT_NEOX_20B,
        LLAMA2_13B,
        OPT_30B,
        MPT_30B,
    )
}


def get_model(name: str) -> ModelSpec:
    """Look up a model spec by name (case-insensitive)."""
    key = name.lower()
    if key not in MODEL_REGISTRY:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise KeyError(f"unknown model {name!r}; known models: {known}")
    return MODEL_REGISTRY[key]
