"""Decoder-block operators and their FLOP / byte accounting.

Figure 1(a) and Figure 3 of the paper decompose a decoder block into:

* **QKV generation** — weight-activation GEMM ``[B, E] x [E, 3E]``.
* **Multi-head attention** — per-request activation-activation GEMVs
  (logit = K^T q, attend = logits·V) plus softmax on the vector units.
* **Projection + FFNs** — weight-activation GEMMs ``[B, E] x [E, E]``,
  ``[B, E] x [E, 4E]`` and ``[B, 4E] x [4E, E]``.

These operator descriptions are consumed by every device model (NPU, GPU
roofline, PIM, TransPIM), which is what lets the end-to-end experiments run
the *same* workload on all baselines.  Shapes can be sharded for tensor
parallelism: Megatron-style column/row splits divide the weight matrices
and heads by ``tp`` while activations keep full ``d_model``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List, Optional, Sequence

from repro.model.spec import ModelSpec


class OpKind(Enum):
    """Operator categories used by the accelerator mapping logic."""

    GEMM = "gemm"
    GEMV = "gemv"
    VECTOR = "vector"


@dataclass(frozen=True)
class GemmShape:
    """A dense ``[m, k] x [k, n]`` matrix multiplication."""

    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) <= 0:
            raise ValueError(f"GEMM dims must be positive, got {self}")

    @property
    def flops(self) -> int:
        """Multiply-accumulate FLOPs (2 per MAC)."""
        return 2 * self.m * self.k * self.n

    def bytes_moved(self, dtype_bytes: int, weight_resident: bool = False) -> int:
        """Off-chip bytes: inputs + weights + outputs.

        ``weight_resident`` models weights already staged on chip (only
        meaningful for small K/N; the LLM weight matrices never fit).
        """
        activation = (self.m * self.k + self.m * self.n) * dtype_bytes
        weights = 0 if weight_resident else self.k * self.n * dtype_bytes
        return activation + weights


@dataclass(frozen=True)
class GemvShape:
    """A dense ``[rows, cols] x [cols]`` matrix-vector multiplication."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if min(self.rows, self.cols) <= 0:
            raise ValueError(f"GEMV dims must be positive, got {self}")

    @property
    def flops(self) -> int:
        return 2 * self.rows * self.cols

    def bytes_moved(self, dtype_bytes: int) -> int:
        """Off-chip bytes: the matrix dominates (vector + result ≪ matrix)."""
        return (self.rows * self.cols + self.rows + self.cols) * dtype_bytes


@dataclass(frozen=True)
class Operator:
    """One schedulable operator instance of a decoder block.

    ``request_index`` is set for per-request MHA operators (selective
    batching computes them individually, per Orca); batched GEMMs leave it
    as ``None``.
    """

    name: str
    kind: OpKind
    flops: int
    bytes_moved: int
    request_index: Optional[int] = None

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per off-chip byte, the x-axis of the Figure 4 roofline."""
        if self.bytes_moved == 0:
            return float("inf")
        return self.flops / self.bytes_moved


def qkv_generation_gemm(spec: ModelSpec, batch_tokens: int, tp: int = 1) -> GemmShape:
    """QKV generation GEMM for ``batch_tokens`` tokens under TP degree ``tp``."""
    heads = spec.heads_per_shard(tp)
    return GemmShape(m=batch_tokens, k=spec.d_model, n=3 * heads * spec.head_dim)


def projection_gemm(spec: ModelSpec, batch_tokens: int, tp: int = 1) -> GemmShape:
    """Attention output projection (row-parallel under TP)."""
    heads = spec.heads_per_shard(tp)
    return GemmShape(m=batch_tokens, k=heads * spec.head_dim, n=spec.d_model)


def ffn_gemms(spec: ModelSpec, batch_tokens: int, tp: int = 1) -> List[GemmShape]:
    """The two FFN GEMMs (column- then row-parallel under TP)."""
    inner = spec.d_ffn // tp
    if inner <= 0:
        raise ValueError(f"TP degree {tp} too large for d_ffn {spec.d_ffn}")
    return [
        GemmShape(m=batch_tokens, k=spec.d_model, n=inner),
        GemmShape(m=batch_tokens, k=inner, n=spec.d_model),
    ]


def logit_gemv(spec: ModelSpec, seq_len: int, tp: int = 1) -> GemvShape:
    """Per-request logit GEMV ``K^T q`` aggregated across this shard's heads.

    Each head computes ``[seq_len, head_dim] x [head_dim]``; the shard owns
    ``heads_per_shard`` heads, so rows scale with the head count.
    """
    heads = spec.heads_per_shard(tp)
    return GemvShape(rows=seq_len * heads, cols=spec.head_dim)


def attend_gemv(spec: ModelSpec, seq_len: int, tp: int = 1) -> GemvShape:
    """Per-request attend GEMV ``logits · V`` aggregated across heads."""
    heads = spec.heads_per_shard(tp)
    return GemvShape(rows=spec.head_dim * heads, cols=seq_len)


def softmax_flops(spec: ModelSpec, seq_len: int, tp: int = 1) -> int:
    """Vector-unit FLOPs for the per-request softmax (exp + sum + div ≈ 5/elt)."""
    heads = spec.heads_per_shard(tp)
    return 5 * heads * seq_len


def decoder_block_operators(
    spec: ModelSpec,
    seq_lens: Sequence[int],
    tp: int = 1,
    phase: str = "generation",
) -> List[Operator]:
    """Operator list for one decoder block over a batch.

    Parameters
    ----------
    seq_lens:
        Per-request KV-cache lengths (context so far).  In the generation
        phase each request contributes one new token; in the summarization
        phase every request contributes ``seq_len`` prompt tokens.
    tp:
        Tensor-parallel degree; shapes are per-device.
    phase:
        ``"generation"`` or ``"summarization"``.

    Returns
    -------
    The batched GEMMs (QKV, projection, FFN x2), per-request MHA GEMVs
    (logit, attend) and per-request softmax vector ops, in dependency
    order: QKV -> MHA -> projection -> FFNs.
    """
    if phase not in ("generation", "summarization"):
        raise ValueError(f"unknown phase {phase!r}")
    if not seq_lens:
        raise ValueError("empty batch")
    if any(s <= 0 for s in seq_lens):
        raise ValueError("sequence lengths must be positive")

    if phase == "generation":
        batch_tokens = len(seq_lens)
    else:
        batch_tokens = sum(seq_lens)

    dtype = spec.dtype_bytes
    ops: List[Operator] = []

    qkv = qkv_generation_gemm(spec, batch_tokens, tp)
    ops.append(Operator("qkv_generation", OpKind.GEMM, qkv.flops,
                        qkv.bytes_moved(dtype)))

    for idx, seq_len in enumerate(seq_lens):
        if phase == "generation":
            logit = logit_gemv(spec, seq_len, tp)
            attend = attend_gemv(spec, seq_len, tp)
            ops.append(Operator(f"logit[{idx}]", OpKind.GEMV, logit.flops,
                                logit.bytes_moved(dtype), request_index=idx))
            ops.append(Operator(f"softmax[{idx}]", OpKind.VECTOR,
                                softmax_flops(spec, seq_len, tp),
                                2 * spec.heads_per_shard(tp) * seq_len * dtype,
                                request_index=idx))
            ops.append(Operator(f"attend[{idx}]", OpKind.GEMV, attend.flops,
                                attend.bytes_moved(dtype), request_index=idx))
        else:
            # Summarization attention is a GEMM per request
            # (seq x head_dim) x (head_dim x seq) per head; compute-bound.
            heads = spec.heads_per_shard(tp)
            attn = GemmShape(m=seq_len * heads, k=spec.head_dim, n=seq_len)
            ops.append(Operator(f"attention[{idx}]", OpKind.GEMM, 2 * attn.flops,
                                attn.bytes_moved(dtype), request_index=idx))

    proj = projection_gemm(spec, batch_tokens, tp)
    ops.append(Operator("projection", OpKind.GEMM, proj.flops,
                        proj.bytes_moved(dtype)))
    for i, ffn in enumerate(ffn_gemms(spec, batch_tokens, tp)):
        ops.append(Operator(f"ffn{i + 1}", OpKind.GEMM, ffn.flops,
                            ffn.bytes_moved(dtype)))
    return ops


def total_flops(ops: Iterable[Operator]) -> int:
    """Sum of FLOPs across operators."""
    return sum(op.flops for op in ops)


def total_bytes(ops: Iterable[Operator]) -> int:
    """Sum of off-chip bytes across operators."""
    return sum(op.bytes_moved for op in ops)
