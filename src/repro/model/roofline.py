"""Roofline analysis of decoder operators (paper Figure 4).

Figure 4 plots per-operator arithmetic intensity (FLOPs/byte) against
attainable performance on a device roofline, showing that the generation
phase's logit/attend operators sit deep in the memory-bound region while
summarization-phase operators and batched QKV/projection/FFN GEMMs are
compute-bound.  This module reproduces those coordinates analytically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.model.layers import (
    OpKind,
    decoder_block_operators,
)
from repro.model.spec import ModelSpec


@dataclass(frozen=True)
class RooflinePoint:
    """One operator class on the roofline plot."""

    label: str
    phase: str
    arithmetic_intensity: float
    attainable_tflops: float
    bound: str  # "compute" or "memory"


@dataclass(frozen=True)
class DeviceRoofline:
    """A peak-compute / peak-bandwidth roofline.

    Attributes are in FLOP/s and bytes/s.  ``ridge_intensity`` is the
    arithmetic intensity at which the device transitions from memory- to
    compute-bound.
    """

    name: str
    peak_flops: float
    peak_bandwidth: float

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.peak_bandwidth <= 0:
            raise ValueError("peaks must be positive")

    @property
    def ridge_intensity(self) -> float:
        return self.peak_flops / self.peak_bandwidth

    def attainable(self, intensity: float) -> float:
        """Attainable FLOP/s at the given arithmetic intensity."""
        if intensity <= 0:
            return 0.0
        return min(self.peak_flops, intensity * self.peak_bandwidth)

    def time_for(self, flops: float, bytes_moved: float) -> float:
        """Roofline execution time in seconds: max(compute, memory)."""
        return max(flops / self.peak_flops, bytes_moved / self.peak_bandwidth)


#: A100-class roofline used for the Figure 4 reproduction (fp16 tensor core
#: peak 312 TFLOPS, HBM2e 1555 GB/s).
A100_ROOFLINE = DeviceRoofline("a100-40gb", peak_flops=312e12, peak_bandwidth=1555e9)

#: RTX 3090-class roofline used in Figure 5 (fp16 ~71 TFLOPS, 936 GB/s).
RTX3090_ROOFLINE = DeviceRoofline("rtx3090-24gb", peak_flops=71e12,
                                  peak_bandwidth=936e9)


def _aggregate(ops, labels: Dict[str, str]) -> Dict[str, Dict[str, float]]:
    """Sum FLOPs/bytes of operators into labelled groups."""
    groups: Dict[str, Dict[str, float]] = {}
    for op in ops:
        base = op.name.split("[")[0]
        label = labels.get(base)
        if label is None:
            continue
        bucket = groups.setdefault(label, {"flops": 0.0, "bytes": 0.0})
        bucket["flops"] += op.flops
        bucket["bytes"] += op.bytes_moved
    return groups


def roofline_points(
    spec: ModelSpec,
    batch_size: int,
    avg_seq_len: int,
    device: DeviceRoofline = A100_ROOFLINE,
    prompt_len: Optional[int] = None,
) -> List[RooflinePoint]:
    """Compute Figure-4-style roofline points for one model.

    Two operator groups per phase are reported, matching the figure:
    ``Logit, Attend`` (the activation-activation operators) and
    ``QKV gen, Projection`` (the weight-activation operators; FFNs behave
    identically and are folded into the latter group).
    """
    if batch_size <= 0 or avg_seq_len <= 0:
        raise ValueError("batch_size and avg_seq_len must be positive")
    prompt = prompt_len if prompt_len is not None else avg_seq_len

    labels = {
        "logit": "Logit, Attend",
        "attend": "Logit, Attend",
        "attention": "Logit, Attend",
        "qkv_generation": "QKV gen, Projection",
        "projection": "QKV gen, Projection",
        "ffn1": "QKV gen, Projection",
        "ffn2": "QKV gen, Projection",
    }

    points: List[RooflinePoint] = []
    for phase, seq_lens in (
        ("generation", [avg_seq_len] * batch_size),
        ("summarization", [prompt] * batch_size),
    ):
        ops = decoder_block_operators(spec, seq_lens, phase=phase)
        for label, acc in sorted(_aggregate(ops, labels).items()):
            intensity = acc["flops"] / acc["bytes"] if acc["bytes"] else float("inf")
            attainable = device.attainable(intensity)
            bound = "compute" if intensity >= device.ridge_intensity else "memory"
            points.append(
                RooflinePoint(
                    label=label,
                    phase=phase,
                    arithmetic_intensity=intensity,
                    attainable_tflops=attainable / 1e12,
                    bound=bound,
                )
            )
    return points


def phase_intensity(spec: ModelSpec, batch_size: int, seq_lens: Sequence[int],
                    phase: str) -> float:
    """Aggregate arithmetic intensity of one phase's decoder block."""
    if len(seq_lens) != batch_size:
        raise ValueError("seq_lens length must equal batch_size")
    ops = decoder_block_operators(spec, list(seq_lens), phase=phase)
    flops = sum(op.flops for op in ops)
    bytes_moved = sum(op.bytes_moved for op in ops)
    return flops / bytes_moved if bytes_moved else float("inf")


def is_memory_bound(spec: ModelSpec, batch_size: int, seq_lens: Sequence[int],
                    phase: str, device: DeviceRoofline = A100_ROOFLINE) -> bool:
    """Whether a phase is memory-bound on the given device roofline."""
    return phase_intensity(spec, batch_size, seq_lens, phase) < device.ridge_intensity


def gemv_ops_only(spec: ModelSpec, seq_lens: Sequence[int]):
    """Convenience accessor: the generation-phase MHA GEMV operators."""
    ops = decoder_block_operators(spec, list(seq_lens), phase="generation")
    return [op for op in ops if op.kind is OpKind.GEMV]
