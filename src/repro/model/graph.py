"""Operator dependency graph for decoder blocks.

The sub-batch interleaving analysis (paper §6.2, Figure 11) relies on the
dependency structure *within* a decoder block: QKV generation feeds MHA,
MHA feeds projection, projection feeds the FFNs, and the FFN output feeds
the next block's QKV generation.  This module builds that DAG explicitly so
schedulers can query ready sets instead of hard-coding stage orders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.model.layers import Operator, decoder_block_operators
from repro.model.spec import ModelSpec


@dataclass
class OpNode:
    """A node of the operator DAG."""

    op: Operator
    layer: int
    predecessors: Set[int] = field(default_factory=set)
    successors: Set[int] = field(default_factory=set)


class OperatorGraph:
    """DAG of decoder-block operators across ``num_layers`` blocks.

    Stage structure within each block (generation phase):

    ``qkv`` -> { per-request ``logit[i]`` -> ``softmax[i]`` -> ``attend[i]`` }
    -> ``projection`` -> ``ffn1`` -> ``ffn2`` -> next block's ``qkv``.
    """

    def __init__(self) -> None:
        self.nodes: Dict[int, OpNode] = {}
        self._next_id = 0

    def add(self, op: Operator, layer: int, deps: Sequence[int] = ()) -> int:
        """Insert ``op`` with dependency edges from ``deps``; returns node id."""
        node_id = self._next_id
        self._next_id += 1
        node = OpNode(op=op, layer=layer, predecessors=set(deps))
        for dep in deps:
            if dep not in self.nodes:
                raise KeyError(f"unknown dependency node {dep}")
            self.nodes[dep].successors.add(node_id)
        self.nodes[node_id] = node
        return node_id

    def ready(self, completed: Set[int]) -> List[int]:
        """Node ids whose predecessors are all in ``completed``."""
        return [
            node_id
            for node_id, node in self.nodes.items()
            if node_id not in completed and node.predecessors <= completed
        ]

    def topological_order(self) -> List[int]:
        """Deterministic topological order (Kahn's algorithm, id-ordered)."""
        in_degree = {nid: len(node.predecessors) for nid, node in self.nodes.items()}
        frontier = sorted(nid for nid, deg in in_degree.items() if deg == 0)
        order: List[int] = []
        while frontier:
            nid = frontier.pop(0)
            order.append(nid)
            for succ in sorted(self.nodes[nid].successors):
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    frontier.append(succ)
            frontier.sort()
        if len(order) != len(self.nodes):
            raise ValueError("operator graph contains a cycle")
        return order

    def __len__(self) -> int:
        return len(self.nodes)


def build_decoder_graph(
    spec: ModelSpec,
    seq_lens: Sequence[int],
    num_layers: Optional[int] = None,
    tp: int = 1,
    phase: str = "generation",
) -> OperatorGraph:
    """Build the full operator DAG for ``num_layers`` decoder blocks.

    ``num_layers`` defaults to the spec's layer count; experiments often
    build a single block (``num_layers=1``) and multiply, since blocks are
    structurally identical.
    """
    layers = spec.num_layers if num_layers is None else num_layers
    if layers <= 0:
        raise ValueError("num_layers must be positive")

    graph = OperatorGraph()
    prev_tail: List[int] = []
    for layer in range(layers):
        ops = decoder_block_operators(spec, seq_lens, tp=tp, phase=phase)
        by_name = {}
        qkv_id = graph.add(ops[0], layer, deps=prev_tail)
        by_name[ops[0].name] = qkv_id

        attend_ids: List[int] = []
        pending: Dict[int, int] = {}
        for op in ops[1:]:
            if op.name.startswith("logit["):
                pending[op.request_index] = graph.add(op, layer, deps=[qkv_id])
            elif op.name.startswith("softmax["):
                pending[op.request_index] = graph.add(
                    op, layer, deps=[pending[op.request_index]]
                )
            elif op.name.startswith("attend["):
                attend_ids.append(
                    graph.add(op, layer, deps=[pending[op.request_index]])
                )
            elif op.name.startswith("attention["):
                attend_ids.append(graph.add(op, layer, deps=[qkv_id]))
            elif op.name == "projection":
                proj_id = graph.add(op, layer, deps=attend_ids or [qkv_id])
                by_name[op.name] = proj_id
            elif op.name == "ffn1":
                ffn1_id = graph.add(op, layer, deps=[by_name["projection"]])
                by_name[op.name] = ffn1_id
            elif op.name == "ffn2":
                ffn2_id = graph.add(op, layer, deps=[by_name["ffn1"]])
                by_name[op.name] = ffn2_id
            else:
                raise ValueError(f"unexpected operator {op.name!r}")
        prev_tail = [by_name["ffn2"]]
    return graph
