"""Statistics and utilization accounting for the simulators.

Provides counters, weighted averages and interval-union utilization used by
both the command-level DRAM/PIM simulation and the device-level pipeline
model.  Table 4 and Figure 6 of the paper report utilizations computed this
way: busy-time of a unit divided by end-to-end execution time.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple


def merge_intervals(intervals: Iterable[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Union overlapping ``(start, end)`` intervals.

    >>> merge_intervals([(0, 2), (1, 3), (5, 6)])
    [(0, 3), (5, 6)]
    """
    ordered = sorted((s, e) for s, e in intervals if e > s)
    merged: List[Tuple[float, float]] = []
    for start, end in ordered:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def busy_fraction(intervals: Iterable[Tuple[float, float]], horizon: float) -> float:
    """Fraction of ``[0, horizon]`` covered by the union of intervals."""
    if horizon <= 0:
        return 0.0
    covered = sum(e - s for s, e in merge_intervals(intervals))
    return min(1.0, covered / horizon)


@dataclass
class Counter:
    """A named monotonically increasing counter."""

    name: str
    value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increase the counter by ``amount`` (non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class StatsRegistry:
    """Bag of counters keyed by name, shared by simulator components."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counter(name).add(amount)

    def get(self, name: str) -> float:
        """Current value of counter ``name`` (0.0 if absent)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0.0

    def as_dict(self) -> Dict[str, float]:
        """All counters as a name -> value mapping, sorted by name."""
        return {name: counter.value for name, counter in sorted(self._counters.items())}


@dataclass
class UtilizationReport:
    """Per-resource utilization over a common horizon.

    ``busy`` maps resource name to accumulated busy time.  This mirrors the
    paper's Table 4 (NPU / PIM compute and memory bandwidth utilization).
    """

    horizon: float
    busy: Dict[str, float] = field(default_factory=dict)

    def utilization(self, name: str) -> float:
        """Busy fraction of resource ``name`` over the horizon."""
        if self.horizon <= 0:
            return 0.0
        return min(1.0, self.busy.get(name, 0.0) / self.horizon)

    def as_dict(self) -> Dict[str, float]:
        """Utilization per resource, sorted by name."""
        return {name: self.utilization(name) for name in sorted(self.busy)}


def weighted_mean(pairs: Iterable[Tuple[float, float]]) -> float:
    """Mean of ``(value, weight)`` pairs; 0.0 when weights sum to zero."""
    total = 0.0
    weight_sum = 0.0
    for value, weight in pairs:
        total += value * weight
        weight_sum += weight
    return total / weight_sum if weight_sum > 0 else 0.0


def histogram(values: Iterable[float], bin_width: float) -> Dict[float, int]:
    """Histogram of values into bins of ``bin_width`` keyed by bin start."""
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    bins: Dict[float, int] = defaultdict(int)
    for value in values:
        bins[(value // bin_width) * bin_width] += 1
    return dict(bins)


def summarize(values: Iterable[float]) -> Mapping[str, float]:
    """Min/mean/max/count summary used by the report formatting helpers."""
    data = list(values)
    if not data:
        return {"count": 0, "min": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "count": len(data),
        "min": min(data),
        "mean": sum(data) / len(data),
        "max": max(data),
    }
