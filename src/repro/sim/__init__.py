"""Discrete-event simulation kernel and statistics utilities."""

from repro.sim.engine import EventEngine, Resource, SimulationError
from repro.sim.events import ClockAdvanced, EventBus
from repro.sim.stats import (
    Counter,
    StatsRegistry,
    UtilizationReport,
    busy_fraction,
    histogram,
    merge_intervals,
    summarize,
    weighted_mean,
)

__all__ = [
    "ClockAdvanced",
    "EventBus",
    "EventEngine",
    "Resource",
    "SimulationError",
    "Counter",
    "StatsRegistry",
    "UtilizationReport",
    "busy_fraction",
    "histogram",
    "merge_intervals",
    "summarize",
    "weighted_mean",
]
