"""Discrete-event simulation kernel.

The NeuPIMs reproduction uses two simulation granularities (see DESIGN.md):
a command-level DRAM/PIM simulation and an event/tile-level device
simulation.  Both are driven by the same tiny discrete-event engine defined
here: a priority queue of ``(time, seq, callback)`` entries plus a notion of
named *resources* whose busy intervals feed utilization accounting.

Time is measured in **cycles** of the memory clock (1 GHz in the paper's
Table 2 configuration, so one cycle equals one nanosecond).  Floats are
accepted so that analytic tile models can schedule sub-cycle durations; the
engine only requires times to be non-negative and non-decreasing.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Sequence, Tuple

from repro.sim.events import ClockAdvanced


class SimulationError(RuntimeError):
    """Raised when the engine is driven inconsistently (e.g. past events)."""


class _Event:
    """Handle for a scheduled callback.

    The heap orders plain ``(time, seq)`` tuples — native float/int
    comparisons — rather than ordering these handles, which would pay a
    generated ``__lt__`` method call per heap sift.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "executed")

    def __init__(self, time: float, seq: int,
                 callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.executed = False


class EventEngine:
    """A minimal discrete-event scheduler.

    Events are callbacks scheduled at absolute times.  Ties are broken by
    insertion order, which makes simulations deterministic.

    Example
    -------
    >>> engine = EventEngine()
    >>> fired = []
    >>> _ = engine.schedule_at(5.0, lambda: fired.append("a"))
    >>> _ = engine.schedule_at(3.0, lambda: fired.append("b"))
    >>> engine.run()
    >>> fired
    ['b', 'a']
    >>> engine.now
    5.0
    """

    def __init__(self) -> None:
        #: heap of (time, seq, event) — tuple comparison never reaches the
        #: event because (time, seq) is unique per entry
        self._queue: List[Tuple[float, int, _Event]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False
        #: live count of scheduled, non-cancelled events — kept so
        #: :meth:`pending` is O(1) instead of a full queue scan.
        self._pending = 0
        #: optional observer bus; ``None`` keeps :meth:`step` branch-cheap
        self._events = None

    def attach_events(self, bus) -> None:
        """Attach an observer :class:`~repro.sim.events.EventBus`.

        The engine publishes :class:`~repro.sim.events.ClockAdvanced`
        after each executed callback — but only while the bus has
        subscribers, so an attached-but-idle bus costs one branch per
        step (the zero-overhead-when-empty contract).
        """
        self._events = bus

    @property
    def now(self) -> float:
        """Current simulation time in cycles."""
        return self._now

    def schedule_at(self, time: float, callback: Callable[[], None]) -> _Event:
        """Schedule ``callback`` at absolute ``time``; returns a handle."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = _Event(float(time), next(self._counter), callback)
        heapq.heappush(self._queue, (event.time, event.seq, event))
        self._pending += 1
        return event

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> _Event:
        """Schedule ``callback`` after a relative ``delay`` (>= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback)

    def cancel(self, event: _Event) -> None:
        """Cancel a previously scheduled event (lazy removal).

        Cancelling an event that already ran (or was already cancelled)
        is a no-op, as before — the pending counter only moves for events
        still in flight.
        """
        if not event.cancelled and not event.executed:
            event.cancelled = True
            self._pending -= 1

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` when drained."""
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0][0] if self._queue else None

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` when queue is empty."""
        while self._queue:
            time, _, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = time
            event.executed = True
            self._pending -= 1
            event.callback()
            events = self._events
            if events is not None and events.active:
                events.emit(ClockAdvanced(time=time))
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the queue drains or ``until`` is reached.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, which makes fixed-horizon
        utilization measurements well defined.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            while True:
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
            if until is not None and until > self._now:
                self._now = float(until)
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of pending (non-cancelled) events (O(1))."""
        return self._pending


class Resource:
    """A serially-reusable resource with busy-time accounting.

    The device-level simulation models NPU systolic arrays, vector units,
    PIM channels and the HBM bus as resources.  ``acquire_for`` books the
    earliest interval of a given duration starting no earlier than
    ``earliest`` and returns the (start, end) interval, which is how the
    pipeline models compose operator timelines without callbacks.
    """

    def __init__(self, name: str, record_intervals: bool = True) -> None:
        self.name = name
        self._free_at = 0.0
        self._busy_time = 0.0
        self._record_intervals = record_intervals
        self._intervals: List[Tuple[float, float]] = []

    def reset(self) -> None:
        """Return to the initial idle state (for scratch-resource reuse).

        Iteration-latency models that re-run list scheduling every
        serving iteration reset a persistent trio of resources instead of
        allocating fresh ones per call.
        """
        self._free_at = 0.0
        self._busy_time = 0.0
        self._intervals.clear()

    @property
    def free_at(self) -> float:
        """Earliest time at which the resource is idle."""
        return self._free_at

    @property
    def busy_time(self) -> float:
        """Total accumulated busy time."""
        return self._busy_time

    @property
    def intervals(self) -> Sequence[Tuple[float, float]]:
        """Recorded (start, end) busy intervals, in booking order.

        A read-only view of the live list (no per-access copy — pipeline
        models poll this inside scheduling loops); callers must not
        mutate it.
        """
        return self._intervals

    def acquire_for(self, duration: float, earliest: float = 0.0) -> Tuple[float, float]:
        """Book the resource for ``duration`` starting at or after ``earliest``."""
        if duration < 0:
            raise SimulationError(f"negative duration {duration}")
        start = max(self._free_at, earliest)
        end = start + duration
        self._free_at = end
        if duration > 0:
            self._busy_time += duration
            if self._record_intervals:
                self._intervals.append((start, end))
        return start, end

    def utilization(self, horizon: float) -> float:
        """Busy fraction over ``[0, horizon]``; 0.0 for a zero horizon."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self._busy_time / horizon)

    def reset(self) -> None:
        """Clear all bookings."""
        self._free_at = 0.0
        self._busy_time = 0.0
        self._intervals.clear()
