"""A zero-overhead-when-empty event bus for simulation observers.

CounterPoint-style methodology: the way to *refute* a modeling
assumption is to watch the running system through event counters — but
the observer path must cost nothing when nobody is watching, or the
instrumented system is no longer the system being measured (McKenney's
rule for lock-free observation).  The bus here encodes that contract:

* Producers (the serving scheduler, the event engine, sessions) hold an
  ``Optional[EventBus]`` and guard every emission with
  ``bus is not None and bus.active`` — with no subscribers the cost is
  one attribute read and a branch, and **no event object is ever
  constructed**.  The batch-mode observer-overhead benchmark in
  ``benchmarks/test_perf_regression.py`` gates this at <5%.
* Consumers subscribe by event type (or to everything) and receive each
  event synchronously, in emission order, on the simulation thread.

Events are plain frozen dataclasses (see :mod:`repro.serving.events`
for the serving taxonomy); the bus is type-agnostic and dispatches on
``type(event)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Type

#: An event consumer; receives the event object, return value ignored.
EventHandler = Callable[[Any], None]


@dataclass(frozen=True)
class ClockAdvanced:
    """The engine executed an event and moved its clock to ``time``.

    The only event the kernel itself publishes (attach a bus via
    :meth:`repro.sim.engine.EventEngine.attach_events`); higher layers
    define their own taxonomies (:mod:`repro.serving.events`).
    """

    time: float


class EventBus:
    """Synchronous publish/subscribe keyed on event type.

    ``active`` is a plain attribute (not a property) so the producer-side
    guard is a single LOAD_ATTR; it flips to ``True`` while at least one
    subscription is live.
    """

    __slots__ = ("_handlers", "_any", "active")

    def __init__(self) -> None:
        self._handlers: Dict[Type[Any], List[EventHandler]] = {}
        self._any: List[EventHandler] = []
        self.active = False

    def _refresh_active(self) -> None:
        self.active = bool(self._any) or any(self._handlers.values())

    def subscribe(self, event_type: Optional[Type[Any]],
                  handler: EventHandler) -> Callable[[], None]:
        """Add a handler for one event type (``None`` = every event).

        Returns an unsubscribe callable; calling it more than once is
        harmless.  Handlers for a base class do **not** fire for
        subclasses — dispatch is on the exact ``type(event)`` — so
        subscribe to ``None`` for taxonomy-wide observation.
        """
        bucket = self._any if event_type is None else \
            self._handlers.setdefault(event_type, [])
        bucket.append(handler)
        self.active = True
        done = False

        def unsubscribe() -> None:
            # One-shot: a second call must not remove another live
            # subscription that registered the same handler object.
            nonlocal done
            if done:
                return
            done = True
            bucket.remove(handler)
            self._refresh_active()
        return unsubscribe

    def emit(self, event: Any) -> None:
        """Deliver one event to its type's handlers, then the wildcards.

        Producers should guard with :attr:`active` *before* constructing
        the event; calling ``emit`` with no subscribers is merely cheap,
        not free.  Delivery iterates a snapshot of each handler list, so
        a handler may unsubscribe itself (one-shot triggers) — or
        subscribe new handlers — without affecting who receives the
        in-flight event.
        """
        typed = self._handlers.get(type(event))
        if typed:
            for handler in tuple(typed):
                handler(event)
        if self._any:
            for handler in tuple(self._any):
                handler(event)
