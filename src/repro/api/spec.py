"""Declarative scenario specifications — the front door's job description.

A :class:`ScenarioSpec` captures **everything** a simulation run needs —
model, system under test, hardware configuration, traffic, serving knobs
and fidelity — as one frozen, picklable dataclass.  Specs round-trip
through plain dicts (``to_dict()`` / ``from_dict()``), so they serialize
to JSON for the ``python -m repro`` CLI and ship across process
boundaries unchanged, and :meth:`ScenarioSpec.override` derives sweep
variants without touching the nested structure by hand.

The split follows the cluster-framework pattern of separating the job
*description* from its *placement*: a spec says what to simulate; the
:class:`~repro.api.session.Session` decides how to materialize and run
it.
"""

from __future__ import annotations

import dataclasses
import typing
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple, Union

from repro.core.config import NeuPimsConfig
from repro.model.spec import MODEL_REGISTRY, ModelSpec, get_model
from repro.registry import (FrozenOptions, component_names, freeze_options,
                            get_component, thaw_options)
from repro.serving.grouping import GROUPING_MODES
from repro.serving.request import InferenceRequest
from repro.serving.trace import DATASETS, DatasetTrace, get_dataset

#: The built-in systems (the full set lives in :mod:`repro.registry`;
#: specs accept any registered name).
SYSTEMS = ("neupims", "npu-pim", "npu-only", "gpu-only", "transpim")

#: The built-in traffic kinds (registry kind ``"traffic"``).
TRAFFIC_KINDS = ("warmed", "poisson", "replay", "external")

#: The built-in fidelity settings (see DESIGN.md §7 for the selection
#: rules); ``"auto"`` resolves to a registered fidelity engine.
FIDELITIES = ("analytic", "cycle", "auto")


# ----------------------------------------------------------------------
# Generic frozen-dataclass <-> dict plumbing.
# ----------------------------------------------------------------------

def _encode(value: Any) -> Any:
    """Recursively turn frozen dataclasses/tuples into dicts/lists."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _encode(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, tuple):
        return [_encode(item) for item in value]
    return value


def _decode(hint: Any, value: Any) -> Any:
    """Rebuild a value of annotated type ``hint`` from its encoding."""
    origin = typing.get_origin(hint)
    if origin is Union:
        if value is None:
            return None
        args = [a for a in typing.get_args(hint) if a is not type(None)]
        return _decode(args[0], value)
    if origin is tuple:
        args = typing.get_args(hint)
        if args and args[-1] is Ellipsis:
            return tuple(_decode(args[0], item) for item in value)
        return tuple(_decode(arg, item) for arg, item in zip(args, value))
    if dataclasses.is_dataclass(hint):
        if not isinstance(value, dict):
            raise TypeError(f"expected mapping for {hint.__name__}, "
                            f"got {type(value).__name__}")
        field_names = {f.name for f in dataclasses.fields(hint)}
        unknown = set(value) - field_names
        if unknown:
            raise ValueError(f"unknown {hint.__name__} field(s) "
                             f"{sorted(unknown)}; known: "
                             f"{sorted(field_names)}")
        hints = typing.get_type_hints(hint)
        kwargs = {f.name: _decode(hints[f.name], value[f.name])
                  for f in dataclasses.fields(hint) if f.name in value}
        return hint(**kwargs)
    return value


# ----------------------------------------------------------------------
# Traffic.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TrafficSpec:
    """Declarative description of a scenario's workload.

    Three kinds cover every simulation mode in the repo:

    * ``"warmed"`` — the paper's §8.1 measurement methodology: sampled
      warmed-up generation batches, one iteration each.  With
      ``num_batches == 1`` the batch is drawn directly with ``seed``
      (matching ``warmed_batch``); with more — or whenever
      ``sample_schedule`` is set — the multi-batch seed schedule of
      ``sample_batches`` applies (its batch ``i`` uses
      ``seed*1009 + i``).
    * ``"poisson"`` — streaming Poisson arrivals driven through the
      iteration-level scheduler (``max_requests`` optionally caps the
      arrival list).
    * ``"replay"`` — explicit ``(input_len, output_len, arrival_time)``
      triples replayed through the scheduler, for trace-exact reruns.
    * ``"external"`` — a streaming scenario with no arrivals of its own:
      the serving stack materializes empty and requests are submitted
      from outside via ``session.pool.submit``.  This is how the fleet
      :class:`~repro.cluster.router.Router` feeds per-node sessions.
    """

    kind: str = "warmed"
    #: dataset name (``"sharegpt"``/``"alpaca"``) or a full trace object
    dataset: Union[str, DatasetTrace] = "sharegpt"
    batch_size: int = 64
    num_batches: int = 1
    #: force the ``sample_batches`` seed schedule even for one batch
    sample_schedule: bool = False
    seed: int = 0
    rate_per_kcycle: float = 0.02
    horizon_cycles: float = 2e7
    max_requests: Optional[int] = None
    replay_requests: Tuple[Tuple[int, int, float], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.kind, str):
            raise ValueError(f"traffic kind must be a string, got "
                             f"{type(self.kind).__name__}; registered: "
                             f"{sorted(component_names('traffic'))}")
        # Registry lookups are case-insensitive; normalize the stored
        # kind so the downstream replay/poisson branches (and equality)
        # agree with what the registry will resolve.
        object.__setattr__(self, "kind", self.kind.lower())
        if self.kind not in component_names("traffic"):
            raise ValueError(f"unknown traffic kind {self.kind!r}; "
                             f"registered: "
                             f"{sorted(component_names('traffic'))}")
        if self.kind != "replay":
            if isinstance(self.dataset, str):
                get_dataset(self.dataset)  # validates the name
            if self.batch_size <= 0 or self.num_batches <= 0:
                raise ValueError("batch_size and num_batches must be positive")
        if self.kind == "replay" and not self.replay_requests:
            raise ValueError("replay traffic needs replay_requests")
        if self.max_requests is not None and self.max_requests <= 0:
            raise ValueError("max_requests must be positive")

    # -- constructors ---------------------------------------------------

    @classmethod
    def warmed(cls, dataset: Union[str, DatasetTrace] = "sharegpt",
               batch_size: int = 64, num_batches: int = 1,
               seed: int = 0, sample_schedule: bool = False
               ) -> "TrafficSpec":
        """Warmed-batch measurement traffic (paper §8.1)."""
        return cls(kind="warmed", dataset=dataset, batch_size=batch_size,
                   num_batches=num_batches, seed=seed,
                   sample_schedule=sample_schedule)

    @classmethod
    def poisson(cls, dataset: Union[str, DatasetTrace] = "sharegpt",
                rate_per_kcycle: float = 0.02, horizon_cycles: float = 2e7,
                seed: int = 0,
                max_requests: Optional[int] = None) -> "TrafficSpec":
        """Streaming Poisson-arrival traffic for serving scenarios."""
        return cls(kind="poisson", dataset=dataset,
                   rate_per_kcycle=rate_per_kcycle,
                   horizon_cycles=horizon_cycles, seed=seed,
                   max_requests=max_requests)

    @classmethod
    def replay(cls, requests: Iterable[Union[InferenceRequest,
                                             Sequence[float]]]
               ) -> "TrafficSpec":
        """Replay traffic from requests or (in, out, arrival) triples."""
        triples = []
        for item in requests:
            if isinstance(item, InferenceRequest):
                triples.append((item.input_len, item.output_len,
                                float(item.arrival_time)))
            else:
                input_len, output_len, arrival = item
                triples.append((int(input_len), int(output_len),
                                float(arrival)))
        return cls(kind="replay", replay_requests=tuple(triples))

    # -- resolution -----------------------------------------------------

    def resolve_dataset(self) -> DatasetTrace:
        """The concrete trace behind :attr:`dataset`."""
        if isinstance(self.dataset, DatasetTrace):
            return self.dataset
        return get_dataset(self.dataset)


# ----------------------------------------------------------------------
# Serving knobs.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ServingSpec:
    """Serving-loop knobs for streaming (poisson/replay) scenarios."""

    max_batch_size: int = 16
    #: per-channel vLLM-style paged KV allocation for admission control
    paged_kv: bool = True
    kv_capacity_bytes: int = 1 << 28
    kv_block_tokens: int = 16
    #: keep live per-channel loads for Algorithm-2 admission bin packing
    load_tracker: bool = True
    max_iterations: int = 1_000_000
    #: equivalence-class group-commit engine: ``"auto"`` groups whenever
    #: the system under test supports class plans (bit-identical records
    #: either way), ``"on"`` requires support, ``"off"`` never groups
    grouping: str = "auto"
    #: per-request deadline in cycles for *running* requests (measured
    #: from arrival, re-based after each retry); ``None`` disables
    deadline_cycles: Optional[float] = None
    #: bounded re-admissions per request after a timeout or KV failure
    max_retries: int = 0
    #: base of the exponential backoff added to retry arrival times
    retry_backoff_cycles: float = 0.0
    #: shed waiting requests never admitted within this window;
    #: ``None`` disables graceful-degradation shedding
    shed_wait_cycles: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.kv_capacity_bytes <= 0 or self.kv_block_tokens <= 0:
            raise ValueError("KV capacity and block size must be positive")
        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if self.grouping not in GROUPING_MODES:
            raise ValueError(f"unknown grouping mode {self.grouping!r}; "
                             f"known: {GROUPING_MODES}")
        if self.deadline_cycles is not None and self.deadline_cycles <= 0:
            raise ValueError("deadline_cycles must be positive when set")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff_cycles < 0:
            raise ValueError("retry_backoff_cycles must be >= 0")
        if self.shed_wait_cycles is not None and self.shed_wait_cycles <= 0:
            raise ValueError("shed_wait_cycles must be positive when set")


# ----------------------------------------------------------------------
# The scenario itself.
# ----------------------------------------------------------------------

#: Spec fields `override()` routes into the nested TrafficSpec.
_TRAFFIC_FIELDS = frozenset(f.name for f in dataclasses.fields(TrafficSpec))
#: Spec fields `override()` routes into the nested ServingSpec.
_SERVING_FIELDS = frozenset(f.name for f in dataclasses.fields(ServingSpec))
#: Feature flags `override()` routes into the NeuPimsConfig.
_CONFIG_FLAGS = frozenset((
    "dual_row_buffer", "composite_isa", "greedy_binpack",
    "sub_batch_interleaving", "adaptive_sbi",
))
#: Per-component option-dict fields (stored as canonical frozen pairs).
_OPTION_FIELDS = ("system_options", "scheduler_options",
                  "traffic_options", "kv_options", "fidelity_options",
                  "faults_options", "counters_options")
#: Component-name fields omitted from ``to_dict`` at their defaults so
#: built-in-only specs keep their pre-registry JSON shape.
_COMPONENT_DEFAULTS = (("scheduler", "iteration"), ("kv", "paged"),
                       ("faults", "none"), ("counters", "none"))
#: ServingSpec resilience fields omitted from ``to_dict`` at their
#: defaults so pre-resilience serving payloads keep their JSON shape.
_SERVING_PRUNED_DEFAULTS = (("deadline_cycles", None), ("max_retries", 0),
                            ("retry_backoff_cycles", 0.0),
                            ("shed_wait_cycles", None))


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative simulation scenario.

    Attributes
    ----------
    model:
        Registry name (``"gpt3-7b"``) or a full :class:`ModelSpec`.
    system:
        System under test; one of :data:`SYSTEMS`.
    config:
        Hardware configuration; ``None`` uses the system's default.
        For ``"npu-pim"`` the feature flags are forced to the naive
        baseline regardless of the flags carried here.
    tp:
        Tensor-parallel degree; ``None`` uses the model's Table-3 default.
    pp:
        Pipeline-parallel degree.  ``None`` (the default) runs a single
        device; any integer — including 1 — materializes a
        :class:`~repro.core.system.NeuPimsSystem` with pooled TP-group
        channels, the multi-device engine the planner uses.
    layers_resident:
        Decoder blocks resident per iteration (device engine only;
        the system engine derives it from ``pp``).
    traffic / serving:
        Workload and serving-loop knobs.
    fidelity:
        ``"analytic"`` uses closed-form Algorithm-1 latency constants;
        ``"cycle"`` calibrates them from the command-level DRAM/PIM
        simulation (memoized per hardware config); ``"auto"`` picks per
        the DESIGN.md §7 rules (cycle for device-level warmed
        measurements on PIM systems, analytic otherwise).
    scheduler / kv / faults / counters:
        Registered component names for the serving scheduler, the
        paged-KV allocator family (``kv`` applies when
        ``serving.paged_kv`` is set), the fault-injection plan
        (``"none"`` disables injection at zero overhead; ``"seeded"``
        draws a deterministic plan from ``faults_options["seed"]``)
        and the typed-counter collector (``"none"`` disables counter
        collection at zero overhead; ``"typed"`` rolls the
        :mod:`repro.counters` taxonomy into ``RunResult.counters``).
        Like ``system`` and ``traffic.kind``, these resolve through
        :mod:`repro.registry`, so a ``@register("scheduler",
        "my-policy")`` class sweeps like any built-in.
    system_options / scheduler_options / traffic_options / kv_options /
    fidelity_options / faults_options / counters_options:
        Per-component option dicts forwarded to the factories at
        materialization.  Accepted as plain dicts, stored as canonical
        frozen pairs (specs stay hashable/picklable), and JSON
        round-tripped as dicts by :meth:`to_dict` / :meth:`from_dict`.
    label:
        Optional display name for tables and sweep records.
    """

    model: Union[str, ModelSpec] = "gpt3-7b"
    system: str = "neupims"
    config: Optional[NeuPimsConfig] = None
    tp: Optional[int] = None
    pp: Optional[int] = None
    layers_resident: Optional[int] = None
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    serving: ServingSpec = field(default_factory=ServingSpec)
    fidelity: str = "auto"
    scheduler: str = "iteration"
    kv: str = "paged"
    faults: str = "none"
    counters: str = "none"
    system_options: FrozenOptions = ()
    scheduler_options: FrozenOptions = ()
    traffic_options: FrozenOptions = ()
    kv_options: FrozenOptions = ()
    fidelity_options: FrozenOptions = ()
    faults_options: FrozenOptions = ()
    counters_options: FrozenOptions = ()
    label: Optional[str] = None

    def __post_init__(self) -> None:
        # Component names normalize to lower case (registry lookups are
        # case-insensitive) so the downstream comparisons — energy
        # anchors, feature forcing, fidelity rules — see one spelling.
        for name in ("system", "scheduler", "kv", "fidelity", "faults",
                     "counters"):
            value = getattr(self, name)
            if not isinstance(value, str):
                raise ValueError(f"{name} must be a component name "
                                 f"string, got {type(value).__name__}")
            object.__setattr__(self, name, value.lower())
        get_component("system", self.system)  # raises with known names
        get_component("scheduler", self.scheduler)
        get_component("kv", self.kv)
        get_component("faults", self.faults)
        get_component("counters", self.counters)
        if self.fidelity != "auto":
            get_component("fidelity", self.fidelity)
        for name in _OPTION_FIELDS:
            object.__setattr__(self, name,
                               freeze_options(getattr(self, name)))
        if isinstance(self.model, str) and self.model.lower() not in \
                MODEL_REGISTRY:
            get_model(self.model)  # raises with the known-model list
        for name in ("tp", "pp", "layers_resident"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive")
        if self.pp is not None:
            if self.system != "neupims":
                raise ValueError("pp (system engine) requires "
                                 "system='neupims'")
            if self.layers_resident is not None:
                raise ValueError("layers_resident is derived from pp under "
                                 "the system engine; leave it None")
            if self.fidelity == "cycle":
                raise ValueError("cycle fidelity is device-level only; "
                                 "use fidelity='analytic' with pp")
            if self.counters != "none":
                raise ValueError("typed counters are device-engine only; "
                                 "use counters='none' with pp")
        # The built-in non-PIM baselines have nothing to calibrate; a
        # user-registered system decides for itself (its factory rejects
        # the estimator if unsupported, per the registration contract).
        if self.fidelity == "cycle" and self.system in (
                "npu-only", "gpu-only", "transpim"):
            raise ValueError(f"system {self.system!r} has no PIM estimator "
                             "to calibrate; cycle fidelity does not apply")

    # -- resolution -----------------------------------------------------

    def resolve_model(self) -> ModelSpec:
        """The concrete :class:`ModelSpec` behind :attr:`model`."""
        if isinstance(self.model, ModelSpec):
            return self.model
        return get_model(self.model)

    def resolve_config(self) -> NeuPimsConfig:
        """The effective hardware configuration for this scenario."""
        base = self.config if self.config is not None else NeuPimsConfig()
        if self.system == "npu-pim":
            return base.with_features(dual_row_buffer=False,
                                      composite_isa=False,
                                      greedy_binpack=False,
                                      sub_batch_interleaving=False)
        return base

    def resolve_tp(self) -> int:
        """The effective tensor-parallel degree."""
        return self.tp if self.tp is not None else \
            self.resolve_model().tensor_parallel

    def options_for(self, kind: str) -> Dict[str, Any]:
        """The plain option dict for one component kind.

        ``kind`` is one of ``"system"``, ``"scheduler"``, ``"traffic"``
        or ``"kv"``; the stored frozen pairs thaw back into the dict a
        factory call consumes.
        """
        field_name = f"{kind}_options"
        if field_name not in _OPTION_FIELDS:
            raise ValueError(f"no options for component kind {kind!r}; "
                             f"known: {[f.split('_')[0] for f in _OPTION_FIELDS]}")
        return thaw_options(getattr(self, field_name))

    def resolve_fidelity(self) -> str:
        """``"analytic"`` or ``"cycle"`` per the DESIGN.md §7 rules.

        With a refutation-derived profile shipped in
        ``fidelity_options["profile"]``, ``"auto"`` becomes
        profile-guided: the :class:`~repro.counters.profile.
        FidelityProfile` picks the tier for this spec's scenario region
        (deterministic, including its seeded audit promotions).
        Without a profile, the static rules apply: cycle for
        device-level warmed measurements on PIM systems, analytic
        otherwise.
        """
        if self.fidelity != "auto":
            return self.fidelity
        payload = self.options_for("fidelity").get("profile")
        if payload is not None:
            from repro.counters.profile import FidelityProfile
            return FidelityProfile.from_dict(payload).resolve(self)
        if (self.system in ("neupims", "npu-pim") and self.pp is None
                and self.traffic.kind == "warmed"):
            return "cycle"
        return "analytic"

    def display_name(self) -> str:
        """Label for tables: explicit label, else system @ model."""
        if self.label is not None:
            return self.label
        return f"{self.system}@{self.resolve_model().name}"

    # -- derivation -----------------------------------------------------

    def override(self, **updates: Any) -> "ScenarioSpec":
        """A copy with field overrides routed into the nested specs.

        Top-level field names change the spec itself; traffic and serving
        field names (``batch_size``, ``dataset``, ``seed``,
        ``max_batch_size``, ...) change the nested dataclasses; feature
        flag names (``dual_row_buffer``, ``greedy_binpack``, ...) change
        the hardware config (starting from the default config when none
        is set).  This is what sweeps use to derive grid variants.
        """
        spec_updates: Dict[str, Any] = {}
        traffic_updates: Dict[str, Any] = {}
        serving_updates: Dict[str, Any] = {}
        config_updates: Dict[str, Any] = {}
        spec_fields = {f.name for f in dataclasses.fields(ScenarioSpec)}
        for name, value in updates.items():
            if name in spec_fields:
                spec_updates[name] = value
            elif name in _TRAFFIC_FIELDS:
                traffic_updates[name] = value
            elif name in _SERVING_FIELDS:
                serving_updates[name] = value
            elif name in _CONFIG_FLAGS:
                config_updates[name] = value
            else:
                raise ValueError(f"unknown scenario field {name!r}")
        # Routed nested updates compose with an explicit traffic=/serving=/
        # config= passed in the same call: they apply on top of it.
        if traffic_updates:
            base_traffic = spec_updates.get("traffic", self.traffic)
            spec_updates["traffic"] = replace(base_traffic, **traffic_updates)
        if serving_updates:
            base_serving = spec_updates.get("serving", self.serving)
            spec_updates["serving"] = replace(base_serving, **serving_updates)
        if config_updates:
            base = spec_updates.get("config", self.config)
            if base is None:
                base = NeuPimsConfig()
            spec_updates["config"] = replace(base, **config_updates)
        return replace(self, **spec_updates) if spec_updates else self

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Encode as a JSON-serializable plain dict.

        Component fields at their defaults (``scheduler="iteration"``,
        ``kv="paged"``, empty option dicts) are omitted, so specs that
        use only built-in components keep the exact JSON shape they had
        before the registry existed — old payloads load unchanged and
        new payloads stay diff-clean.
        """
        data = _encode(self)
        for name in _OPTION_FIELDS:
            frozen = getattr(self, name)
            if frozen:
                data[name] = thaw_options(frozen)
            else:
                del data[name]
        for name, default in _COMPONENT_DEFAULTS:
            if data[name] == default:
                del data[name]
        serving_data = data.get("serving")
        if isinstance(serving_data, dict):
            for name, default in _SERVING_PRUNED_DEFAULTS:
                if name in serving_data and serving_data[name] == default:
                    del serving_data[name]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (round-trips)."""
        if not isinstance(data, dict):
            raise TypeError("ScenarioSpec.from_dict expects a mapping")
        field_names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - field_names
        if unknown:
            raise ValueError(f"unknown ScenarioSpec field(s) "
                             f"{sorted(unknown)}; known: "
                             f"{sorted(field_names)}")
        kwargs: Dict[str, Any] = {}
        if "model" in data:
            model = data["model"]
            kwargs["model"] = model if isinstance(model, str) \
                else _decode(ModelSpec, model)
        if "traffic" in data:
            traffic = dict(data["traffic"])
            dataset = traffic.get("dataset")
            if isinstance(dataset, dict):
                traffic["dataset"] = _decode(DatasetTrace, dataset)
            kwargs["traffic"] = _decode(TrafficSpec,
                                        {k: v for k, v in traffic.items()
                                         if k != "dataset"})
            if "dataset" in traffic:
                kwargs["traffic"] = replace(kwargs["traffic"],
                                            dataset=traffic["dataset"])
        if "serving" in data:
            kwargs["serving"] = _decode(ServingSpec, data["serving"])
        if data.get("config") is not None:
            kwargs["config"] = _decode(NeuPimsConfig, data["config"])
        elif "config" in data:
            kwargs["config"] = None
        for name in ("system", "tp", "pp", "layers_resident", "fidelity",
                     "scheduler", "kv", "faults", "counters", "label"):
            if name in data:
                kwargs[name] = data[name]
        for name in _OPTION_FIELDS:
            if name in data:
                options = data[name]
                if not isinstance(options, dict):
                    raise TypeError(f"{name} must be a mapping, got "
                                    f"{type(options).__name__}")
                kwargs[name] = options
        return cls(**kwargs)
