"""Sessions materialize scenario specs and run them to uniform results.

A :class:`Session` turns one :class:`~repro.api.spec.ScenarioSpec` into
the full simulation stack — device (or multi-device system), request
pool, per-channel paged KV allocators, iteration scheduler, channel load
tracker, latency tracker, perf-cache warmup — runs it, and returns a
:class:`RunResult` whose schema is identical across every simulation
mode: single measurements, streaming serving runs, baselines and sweep
cells all report the same latency / throughput / utilization / energy
fields plus per-iteration records.

The module-level :func:`run_scenario` is the picklable unit of work that
:func:`run_scenarios` fans across :mod:`repro.exec` backends — specs are
picklable by construction, so cross-process dispatch needs no ad-hoc
argument tuples, and parallel results are record-for-record identical to
serial ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.spec import ScenarioSpec
from repro.core.config import NeuPimsConfig
from repro.core.device import IterationResult, NeuPimsDevice
from repro.core.estimator import MhaLatencyEstimator
from repro.core.system import NeuPimsSystem, ParallelismScheme
from repro.exec.backends import ParallelSpec
from repro.exec.runner import ParallelRunner
from repro.exec.warmup import PerfCacheWarmup
from repro.model.spec import ModelSpec
from repro.serving.grouping import GroupedExecutor
from repro.serving.latency import LatencyTracker
from repro.serving.paging import PagedKvConfig, channel_allocators
from repro.serving.pool import RequestPool
from repro.serving.request import InferenceRequest
from repro.serving.scheduler import IterationScheduler
from repro.serving.trace import poisson_arrivals, sample_batches, warmed_batch

#: Table-5 per-channel average memory power (mW): the dual-row-buffer PIM
#: vs a plain HBM channel (see :mod:`repro.dram.power`).
PIM_CHANNEL_POWER_MW = 634.8
HBM_CHANNEL_POWER_MW = 364.1


@dataclass(frozen=True)
class RunResult:
    """Uniform outcome of one scenario run.

    ``kind`` is ``"measurement"`` for warmed-batch runs (one iteration
    per sampled batch; ``tokens_per_second`` is the mean of per-batch
    throughputs, the paper's §8.1 accounting) and ``"serving"`` for
    streaming scheduler runs (``tokens_per_second`` is total tokens over
    the serving makespan).  ``records`` holds one plain dict per
    iteration/batch, so results serialize to JSON via :meth:`to_dict`.
    """

    kind: str
    model: str
    system: str
    fidelity: str
    iterations: int
    total_tokens: int
    total_time_cycles: float
    tokens_per_second: float
    mean_iteration_cycles: float
    mean_batch_size: float
    max_batch_size: int
    utilization: Dict[str, float] = field(default_factory=dict)
    energy_per_token_mj: Optional[float] = None
    latency_ms: Dict[str, float] = field(default_factory=dict)
    records: Tuple[Dict[str, float], ...] = ()

    def summary_rows(self) -> List[Tuple[str, object]]:
        """(metric, value) rows for table rendering (CLI and examples)."""
        rows: List[Tuple[str, object]] = [
            ("kind", self.kind),
            ("iterations", self.iterations),
            ("tokens generated", self.total_tokens),
            ("simulated time (ms)", round(self.total_time_cycles / 1e6, 3)),
            ("throughput (tokens/s)", round(self.tokens_per_second)),
            ("mean iteration (us)",
             round(self.mean_iteration_cycles / 1e3, 2)),
            ("mean batch size", round(self.mean_batch_size, 1)),
            ("max batch size", self.max_batch_size),
        ]
        for unit in sorted(self.utilization):
            rows.append((f"{unit} utilization",
                         f"{self.utilization[unit]:.1%}"))
        if self.energy_per_token_mj is not None:
            rows.append(("energy/token (mJ)",
                         round(self.energy_per_token_mj, 3)))
        return rows

    def to_dict(self) -> Dict[str, Any]:
        """Encode as a JSON-serializable plain dict."""
        return {
            "kind": self.kind,
            "model": self.model,
            "system": self.system,
            "fidelity": self.fidelity,
            "iterations": self.iterations,
            "total_tokens": self.total_tokens,
            "total_time_cycles": self.total_time_cycles,
            "tokens_per_second": self.tokens_per_second,
            "mean_iteration_cycles": self.mean_iteration_cycles,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_size": self.max_batch_size,
            "utilization": dict(self.utilization),
            "energy_per_token_mj": self.energy_per_token_mj,
            "latency_ms": dict(self.latency_ms),
            "records": [dict(r) for r in self.records],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output (round-trips)."""
        payload = dict(data)
        payload["utilization"] = dict(payload.get("utilization", {}))
        payload["latency_ms"] = dict(payload.get("latency_ms", {}))
        payload["records"] = tuple(dict(r)
                                   for r in payload.get("records", ()))
        return cls(**payload)


class Session:
    """Materializes and runs one scenario.

    The constructor only resolves the spec (model, config, fidelity);
    :meth:`materialize` builds the stack and :meth:`run` executes it,
    caching the :class:`RunResult`.  The materialized pieces stay
    reachable (``device`` / ``system`` / ``pool`` / ``scheduler`` /
    ``allocators`` / ``load_tracker`` / ``latency_tracker``) so examples
    and tests can step the scheduler or inspect the pool mid-run; a
    subsequent :meth:`run` simply finishes the remaining iterations.
    Under the equivalence-class engine (serving spec knob ``grouping``,
    default ``"auto"``) per-request state is deferred inside steady-state
    windows — call ``scheduler.sync_grouped()`` before inspecting the
    pool or requests mid-run (``run`` itself always leaves the stack
    synchronized).
    """

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self.model_spec: ModelSpec = spec.resolve_model()
        self.config: NeuPimsConfig = spec.resolve_config()
        self.fidelity: str = spec.resolve_fidelity()
        self.tp: int = spec.resolve_tp()
        self.system: Optional[NeuPimsSystem] = None
        self.device: Any = None
        self.pool: Optional[RequestPool] = None
        self.scheduler: Optional[IterationScheduler] = None
        self.allocators = None
        self.load_tracker = None
        self.latency_tracker: Optional[LatencyTracker] = None
        self.arrivals: Tuple[InferenceRequest, ...] = ()
        self.batches: List[List[InferenceRequest]] = []
        self._materialized = False
        self._result: Optional[RunResult] = None
        # Streaming-run aggregates captured by the executor wrapper.
        self._busy: Dict[str, float] = {}
        self._latency_acc = 0.0
        self._external_bytes = 0.0

    # ------------------------------------------------------------------
    # Materialization.
    # ------------------------------------------------------------------

    def calibrated_estimator(self) -> MhaLatencyEstimator:
        """The cycle-fidelity Algorithm-1 estimator for this scenario.

        Calibrates ``L_tile`` / ``L_GWRITE`` by replaying command-level
        GEMVs through the cycle-accurate memory controller (memoized per
        hardware configuration by :mod:`repro.perf`).
        """
        from repro.perf.calibration import cached_calibrate
        latencies = cached_calibrate(self.config.timing, self.config.org,
                                     self.config.pim_timing,
                                     self.model_spec.dtype_bytes)
        return MhaLatencyEstimator(spec=self.model_spec, org=self.config.org,
                                   latencies=latencies)

    def _build_device(self) -> Any:
        """Construct the system-under-test's device model."""
        spec, config = self.model_spec, self.config
        tp, layers = self.tp, self.spec.layers_resident
        estimator = (self.calibrated_estimator()
                     if self.fidelity == "cycle" else None)
        if self.spec.system in ("neupims", "npu-pim"):
            return NeuPimsDevice(spec, config, tp=tp, layers_resident=layers,
                                 estimator=estimator)
        if self.spec.system == "npu-only":
            from repro.baselines.npu_only import NpuOnlyDevice
            return NpuOnlyDevice(spec, config, tp=tp, layers_resident=layers)
        if self.spec.system == "gpu-only":
            from repro.baselines.gpu import GpuOnlyDevice
            return GpuOnlyDevice(spec, tp=tp, layers_resident=layers)
        from repro.baselines.transpim import TransPimDevice
        return TransPimDevice(spec, config, layers_resident=layers)

    def materialize(self) -> "Session":
        """Build the full stack for this scenario (idempotent)."""
        if self._materialized:
            return self
        if self.spec.pp is not None:
            self.system = NeuPimsSystem(
                self.model_spec, ParallelismScheme(self.tp, self.spec.pp),
                config=self.config)
            self.device = self.system.device
        else:
            self.device = self._build_device()
        traffic = self.spec.traffic
        if traffic.kind == "warmed":
            trace = traffic.resolve_dataset()
            if traffic.num_batches == 1 and not traffic.sample_schedule:
                self.batches = [warmed_batch(trace, traffic.batch_size,
                                             seed=traffic.seed)]
            else:
                self.batches = sample_batches(trace, traffic.batch_size,
                                              traffic.num_batches,
                                              seed=traffic.seed)
        else:
            self._materialize_serving(traffic)
        self._materialized = True
        return self

    def _materialize_serving(self, traffic) -> None:
        """Wire the streaming serving stack (pool/allocators/scheduler)."""
        serving = self.spec.serving
        if traffic.kind == "poisson":
            arrivals = poisson_arrivals(
                traffic.resolve_dataset(), traffic.rate_per_kcycle,
                traffic.horizon_cycles, seed=traffic.seed)
            if traffic.max_requests is not None:
                arrivals = arrivals[:traffic.max_requests]
        else:
            arrivals = [
                InferenceRequest(request_id=i, input_len=inp, output_len=out,
                                 arrival_time=arrival)
                for i, (inp, out, arrival) in
                enumerate(traffic.replay_requests)
            ]
        self.arrivals = tuple(arrivals)
        self.pool = RequestPool()
        self.pool.submit_all(arrivals)
        is_neupims = isinstance(self.device, NeuPimsDevice)
        if serving.paged_kv:
            channels = self.device.channel_pool if is_neupims else 1
            layers = getattr(self.device, "layers",
                             self.model_spec.num_layers)
            self.allocators = channel_allocators(
                PagedKvConfig(block_tokens=serving.kv_block_tokens,
                              capacity_bytes=serving.kv_capacity_bytes),
                self.model_spec, channels, layers_resident=layers)
        if serving.load_tracker and is_neupims:
            self.load_tracker = self.device.attach_load_tracker()
        self.latency_tracker = LatencyTracker()
        executor = self.latency_tracker.wrap(self._wrapped_executor())
        self.scheduler = IterationScheduler(
            self.pool, executor, max_batch_size=serving.max_batch_size,
            allocators=self.allocators,
            assign_channels=(self.device.assign_channels
                             if is_neupims else None),
            load_tracker=self.load_tracker,
            grouping=serving.grouping,
            grouped=self._grouped_executor(serving.grouping),
            latency_tracker=self.latency_tracker)

    def _grouped_executor(self, grouping: str) -> Optional[GroupedExecutor]:
        """The class-grouped engine for this scenario, if applicable.

        ``"auto"`` returns ``None`` for systems without class-plan support
        (the scheduler then stays on the per-request path); ``"on"``
        insists and raises instead.  The returned runner feeds the same
        busy/byte accumulators as the per-request executor wrapper, so
        aggregates are identical between paths.
        """
        if grouping == "off":
            return None
        if self.system is not None:
            system = self.system

            def run_system_plan(plan, shift: int) -> float:
                latency = system.iteration_from_plan(plan, shift)
                self._latency_acc += latency
                return latency
            return GroupedExecutor(system.prepare_class_plan,
                                   run_system_plan)
        if isinstance(self.device, NeuPimsDevice):
            device = self.device

            def run_device_plan(plan, shift: int) -> float:
                result: IterationResult = device.iteration_from_plan(plan,
                                                                     shift)
                self._accumulate(result)
                return result.latency
            return GroupedExecutor(device.prepare_class_plan,
                                   run_device_plan)
        if grouping == "on":
            raise ValueError(
                f"system {self.spec.system!r} has no class-grouped engine; "
                "use grouping='auto' or 'off'")
        return None

    def _wrapped_executor(self):
        """An executor that also aggregates busy/byte accounting."""
        if self.system is not None:
            system = self.system

            def run_system(batch: Sequence[InferenceRequest]) -> float:
                latency = system.iteration_latency(batch)
                self._latency_acc += latency
                return latency
            return run_system
        device = self.device

        def run(batch: Sequence[InferenceRequest]) -> float:
            result: IterationResult = device.iteration(batch)
            self._accumulate(result)
            return result.latency
        return run

    def _accumulate(self, result: IterationResult) -> None:
        """Fold one iteration's busy/byte accounting into the session."""
        self._latency_acc += result.latency
        self._external_bytes += result.external_bytes
        for key, value in result.busy.items():
            self._busy[key] = self._busy.get(key, 0.0) + value

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Run the scenario to completion; the result is cached."""
        if self._result is not None:
            return self._result
        self.materialize()
        if self.spec.traffic.kind == "warmed":
            self._result = self._run_measurement()
        else:
            self._result = self._run_serving()
        return self._result

    def _utilization(self) -> Dict[str, float]:
        """Busy-fraction accounting (the paper's Table-4 methodology)."""
        latency_acc = self._latency_acc
        utilization = {
            key: min(1.0, value / latency_acc) if latency_acc > 0 else 0.0
            for key, value in self._busy.items()
        }
        if self._busy and latency_acc > 0:
            seconds = latency_acc / 1e9
            utilization["bandwidth"] = min(
                1.0, self._external_bytes
                / (self.config.org.total_bandwidth * seconds))
        return utilization

    def _energy_per_token(self, tokens: int) -> Optional[float]:
        """Estimated mJ/token from the aggregated busy profile."""
        if not self._busy or self._latency_acc <= 0 or tokens <= 0:
            return None
        from repro.analysis.energy import EnergyParams, iteration_energy
        # Table 5 gives two per-channel anchors: the dual-row-buffer PIM
        # bank and a plain HBM channel.  Systems without an in-memory
        # compute path (and PIM systems in blocked single-buffer mode,
        # as a lower-bound approximation) bill at the HBM rate.
        has_pim = self.spec.system in ("neupims", "npu-pim", "transpim")
        memory_power = (PIM_CHANNEL_POWER_MW
                        if has_pim and self.config.dual_row_buffer
                        else HBM_CHANNEL_POWER_MW)
        aggregate = IterationResult(latency=self._latency_acc,
                                    busy=dict(self._busy))
        report = iteration_energy(
            aggregate, tokens, memory_power,
            EnergyParams(channels=self.config.num_channels))
        return report.energy_per_token_mj

    def _run_measurement(self) -> RunResult:
        """One generation iteration per warmed batch (paper §8.1)."""
        records: List[Dict[str, float]] = []
        throughputs: List[float] = []
        for index, batch in enumerate(self.batches):
            if self.system is not None:
                # One pipeline_pitch() drives both numbers (the system's
                # own iteration_latency/throughput methods would each
                # re-simulate the micro-batch).
                pitch = self.system.pipeline_pitch(batch)
                latency = pitch * self.system.scheme.pp
                micro = self.system.micro_batches(batch)[0]
                throughput = len(micro) / (pitch / 1e9)
            else:
                result = self.device.iteration(batch)
                latency = result.latency
                throughput = (len(batch) / (latency / 1e9)
                              if latency > 0 else 0.0)
                self._accumulate(result)
            throughputs.append(throughput)
            records.append({
                "index": index,
                "latency": latency,
                "batch_size": len(batch),
                "tokens": len(batch),
                "tokens_per_second": throughput,
            })
        batch_sizes = [record["batch_size"] for record in records]
        total_tokens = sum(record["tokens"] for record in records)
        latency_sum = sum(record["latency"] for record in records)
        return RunResult(
            kind="measurement",
            model=self.model_spec.name,
            system=self.spec.system,
            fidelity=self.fidelity,
            iterations=len(records),
            total_tokens=int(total_tokens),
            total_time_cycles=latency_sum,
            tokens_per_second=sum(throughputs) / len(throughputs),
            mean_iteration_cycles=latency_sum / len(records),
            mean_batch_size=sum(batch_sizes) / len(batch_sizes),
            max_batch_size=int(max(batch_sizes)),
            utilization=self._utilization(),
            energy_per_token_mj=self._energy_per_token(int(total_tokens)),
            records=tuple(records),
        )

    def _run_serving(self) -> RunResult:
        """Drive the iteration-level scheduler until the pool drains."""
        stats = self.scheduler.run(
            max_iterations=self.spec.serving.max_iterations)
        records = tuple({
            "index": r.index,
            "start_time": r.start_time,
            "latency": r.latency,
            "batch_size": r.batch_size,
            "tokens": r.tokens_generated,
            "admitted": r.admitted,
            "retired": r.retired,
        } for r in stats.iterations)
        iterations = len(records)
        total_tokens = stats.total_tokens
        total_time = stats.total_time
        batch_sizes = [r.batch_size for r in stats.iterations]
        latency_summary = (self.latency_tracker.report().summary()
                           if self.latency_tracker is not None else {})
        return RunResult(
            kind="serving",
            model=self.model_spec.name,
            system=self.spec.system,
            fidelity=self.fidelity,
            iterations=iterations,
            total_tokens=total_tokens,
            total_time_cycles=total_time,
            tokens_per_second=stats.throughput_tokens_per_second(),
            mean_iteration_cycles=(self._latency_acc / iterations
                                   if iterations else 0.0),
            mean_batch_size=(sum(batch_sizes) / iterations
                             if iterations else 0.0),
            max_batch_size=int(max(batch_sizes)) if batch_sizes else 0,
            utilization=self._utilization(),
            energy_per_token_mj=self._energy_per_token(total_tokens),
            latency_ms=latency_summary,
            records=records,
        )


def run_scenario(spec: Union[ScenarioSpec, Dict[str, Any]]) -> RunResult:
    """Run one scenario to a :class:`RunResult` (picklable task unit)."""
    if isinstance(spec, dict):
        spec = ScenarioSpec.from_dict(spec)
    return Session(spec).run()


def scenario_warmup(specs: Sequence[ScenarioSpec]) -> PerfCacheWarmup:
    """A per-worker warmup covering the cycle-fidelity configs in specs.

    The calibration cache is keyed on the model's element width too, so
    the warmup carries every distinct ``dtype_bytes`` alongside the
    configs.
    """
    configs = []
    dtypes = []
    for spec in specs:
        if spec.resolve_fidelity() == "cycle":
            config = spec.resolve_config()
            if config not in configs:
                configs.append(config)
            dtype = spec.resolve_model().dtype_bytes
            if dtype not in dtypes:
                dtypes.append(dtype)
    return PerfCacheWarmup(configs=tuple(configs),
                           dtype_bytes=tuple(dtypes) or (2,))


def run_scenarios(specs: Sequence[ScenarioSpec],
                  parallel: ParallelSpec = None,
                  chunk_size: int = 1) -> List[RunResult]:
    """Fan scenarios across an execution backend, merging in order.

    Results are record-for-record identical to a serial run (the
    :mod:`repro.exec` determinism contract); ``parallel`` accepts the
    usual worker count / backend spec.  Workers pre-warm the perf caches
    for every distinct cycle-fidelity hardware config in ``specs``.
    """
    specs = list(specs)
    runner = ParallelRunner(parallel, chunk_size=chunk_size,
                            warmup=scenario_warmup(specs))
    return runner.map(run_scenario, specs)
