"""Sessions materialize scenario specs and run them to uniform results.

A :class:`Session` turns one :class:`~repro.api.spec.ScenarioSpec` into
the full simulation stack — every ingredient resolved by name through
:mod:`repro.registry` (system/device, traffic model, KV allocators,
scheduler, fidelity engine) — runs it, and returns a :class:`RunResult`
whose schema is identical across every simulation mode: single
measurements, streaming serving runs, baselines and sweep cells all
report the same latency / throughput / utilization / energy fields plus
per-iteration records.

Execution comes in two granularities sharing one stepping core:

* **batch** — :meth:`Session.run` drives the loop to completion with no
  subscribers on the event bus, so no event object is ever constructed
  (the zero-overhead contract); it is the no-observer drain of the same
  loop :meth:`Session.stream` drives.
* **streaming** — :meth:`Session.stream` yields the typed events of
  :mod:`repro.serving.events` as the loop advances;
  :meth:`Session.step` executes one iteration at a time and
  :meth:`Session.run_until` stops early on a live predicate (SLO
  monitors, admission throttles — see ``examples/slo_monitor.py``).

Records and aggregates are bit-identical between the two, and identical
to the pre-registry wiring for built-in component names (pinned in
``tests/test_api_session.py`` / ``tests/test_api_stream.py``).

The module-level :func:`run_scenario` is the picklable unit of work that
:func:`run_scenarios` fans across :mod:`repro.exec` backends — specs are
picklable by construction (component references are plain names), so
cross-process dispatch needs no ad-hoc argument tuples, and parallel
results are record-for-record identical to serial ones.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple, Union)

from repro.api.spec import ScenarioSpec
from repro.core.config import NeuPimsConfig
from repro.counters.report import CounterReport
from repro.core.device import IterationResult, NeuPimsDevice
from repro.core.estimator import MhaLatencyEstimator
from repro.core.system import NeuPimsSystem, ParallelismScheme
from repro.exec.backends import ParallelSpec
from repro.exec.runner import ParallelRunner
from repro.exec.warmup import PerfCacheWarmup, WarmupChain
from repro.faults.resilience import (ResiliencePolicy, ResilienceRuntime,
                                     resilient_executor)
from repro.model.spec import ModelSpec
from repro.registry import REGISTRY, Workload
from repro.serving.events import (CountersSampled, IterationCompleted,
                                  ServingEvent)
from repro.serving.grouping import GroupedExecutor
from repro.serving.latency import LatencyTracker
from repro.serving.pool import RequestPool
from repro.serving.preemption import PreemptingAllocatorPool
from repro.serving.request import InferenceRequest
from repro.serving.scheduler import IterationRecord, IterationScheduler
from repro.sim.events import EventBus

#: Table-5 per-channel average memory power (mW): the dual-row-buffer PIM
#: vs a plain HBM channel (see :mod:`repro.dram.power`).
PIM_CHANNEL_POWER_MW = 634.8
HBM_CHANNEL_POWER_MW = 364.1


@dataclass(frozen=True)
class RunResult:
    """Uniform outcome of one scenario run.

    ``kind`` is ``"measurement"`` for warmed-batch runs (one iteration
    per sampled batch; ``tokens_per_second`` is the mean of per-batch
    throughputs, the paper's §8.1 accounting) and ``"serving"`` for
    streaming scheduler runs (``tokens_per_second`` is total tokens over
    the serving makespan).  ``records`` holds one plain dict per
    iteration/batch, so results serialize to JSON via :meth:`to_dict`.

    ``requests`` holds one ``{"request_id", "status"}`` dict per retired
    request of a serving run (terminal statuses ``completed`` /
    ``timed_out`` / ``shed`` / ``aborted``, default ``completed``) and
    ``resilience`` the fault/retry/shed/timeout counters when a
    resilience runtime was active; both are empty — and omitted from
    :meth:`to_dict` — when not applicable, so pre-resilience payloads
    keep their exact shape.

    ``counters`` is the run's typed hardware counter rollup
    (:class:`~repro.counters.report.CounterReport`), populated when the
    scenario's ``counters`` component is not ``"none"``; like the
    resilience fields it is omitted from :meth:`to_dict` when empty so
    built-in-only payloads keep their pre-counters JSON shape.
    """

    kind: str
    model: str
    system: str
    fidelity: str
    iterations: int
    total_tokens: int
    total_time_cycles: float
    tokens_per_second: float
    mean_iteration_cycles: float
    mean_batch_size: float
    max_batch_size: int
    utilization: Dict[str, float] = field(default_factory=dict)
    energy_per_token_mj: Optional[float] = None
    latency_ms: Dict[str, float] = field(default_factory=dict)
    records: Tuple[Dict[str, float], ...] = ()
    requests: Tuple[Dict[str, Any], ...] = ()
    resilience: Dict[str, int] = field(default_factory=dict)
    counters: CounterReport = field(default_factory=CounterReport)

    def summary_rows(self) -> List[Tuple[str, object]]:
        """(metric, value) rows for table rendering (CLI and examples)."""
        rows: List[Tuple[str, object]] = [
            ("kind", self.kind),
            ("iterations", self.iterations),
            ("tokens generated", self.total_tokens),
            ("simulated time (ms)", round(self.total_time_cycles / 1e6, 3)),
            ("throughput (tokens/s)", round(self.tokens_per_second)),
            ("mean iteration (us)",
             round(self.mean_iteration_cycles / 1e3, 2)),
            ("mean batch size", round(self.mean_batch_size, 1)),
            ("max batch size", self.max_batch_size),
        ]
        for unit in sorted(self.utilization):
            rows.append((f"{unit} utilization",
                         f"{self.utilization[unit]:.1%}"))
        if self.energy_per_token_mj is not None:
            rows.append(("energy/token (mJ)",
                         round(self.energy_per_token_mj, 3)))
        return rows

    def to_dict(self) -> Dict[str, Any]:
        """Encode as a JSON-serializable plain dict.

        The resilience fields (``requests`` / ``resilience``) only
        appear when populated, so pre-resilience payloads keep their
        exact shape.
        """
        data: Dict[str, Any] = {
            "kind": self.kind,
            "model": self.model,
            "system": self.system,
            "fidelity": self.fidelity,
            "iterations": self.iterations,
            "total_tokens": self.total_tokens,
            "total_time_cycles": self.total_time_cycles,
            "tokens_per_second": self.tokens_per_second,
            "mean_iteration_cycles": self.mean_iteration_cycles,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_size": self.max_batch_size,
            "utilization": dict(self.utilization),
            "energy_per_token_mj": self.energy_per_token_mj,
            "latency_ms": dict(self.latency_ms),
            "records": [dict(r) for r in self.records],
        }
        if self.requests:
            data["requests"] = [dict(r) for r in self.requests]
        if self.resilience:
            data["resilience"] = dict(self.resilience)
        if self.counters:
            data["counters"] = self.counters.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output (round-trips)."""
        payload = dict(data)
        payload["utilization"] = dict(payload.get("utilization", {}))
        payload["latency_ms"] = dict(payload.get("latency_ms", {}))
        payload["records"] = tuple(dict(r)
                                   for r in payload.get("records", ()))
        payload["requests"] = tuple(dict(r)
                                    for r in payload.get("requests", ()))
        payload["resilience"] = dict(payload.get("resilience", {}))
        payload["counters"] = CounterReport.from_dict(
            payload.get("counters", {}))
        return cls(**payload)


class Session:
    """Materializes and runs one scenario.

    The constructor only resolves the spec (model, config, fidelity);
    :meth:`materialize` builds the stack — resolving the system, traffic
    model, KV allocators, fidelity engine and scheduler by name through
    :mod:`repro.registry` — and :meth:`run` executes it, caching the
    :class:`RunResult`.  The materialized pieces stay reachable
    (``device`` / ``system`` / ``pool`` / ``scheduler`` /
    ``allocators`` / ``load_tracker`` / ``latency_tracker`` /
    ``events``) so examples and tests can step the scheduler, subscribe
    observers or inspect the pool mid-run; a subsequent :meth:`run`
    simply finishes the remaining iterations.

    Step-wise execution: :meth:`step` runs one iteration,
    :meth:`run_until` stops on a live predicate, and :meth:`stream`
    yields typed events while the loop advances.  Under the
    equivalence-class engine (serving spec knob ``grouping``, default
    ``"auto"``) per-request state is deferred inside steady-state
    windows — call ``scheduler.sync_grouped()`` before inspecting the
    pool or requests mid-run (``run`` and ``run_until`` always leave
    the stack synchronized).
    """

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        #: Optional hook wrapping the serving batch executor *inside*
        #: the latency-tracker wrap (same composition discipline as
        #: ``resilient_executor``, so injected cycles move the latency
        #: clock).  Set before :meth:`materialize`; the fleet router
        #: uses it to apply node-degrade derates.  While set, the
        #: grouped fast path stands down (grouped windows bypass the
        #: executor), keeping the wrapper authoritative per iteration.
        #:
        #: Ordering contract: the wrapper composes *outside* any
        #: resilience wrap and *inside* the latency tracker, i.e.
        #: ``tracker(wrapper(resilient(inner)))``.  Wrappers that only
        #: observe (pure latency pass-throughs, such as
        #: :func:`repro.counters.collect.counting_executor`) must
        #: commute with latency-scaling wrappers (fleet degrades) on
        #: every simulated metric — either composition order yields
        #: bit-identical results, a contract pinned by the
        #: executor-wrapper regression tests in ``tests/test_counters``.
        self.executor_wrapper: Optional[
            Callable[[Callable[[Sequence[InferenceRequest]], float]],
                     Callable[[Sequence[InferenceRequest]], float]]] = None
        self.model_spec: ModelSpec = spec.resolve_model()
        self.config: NeuPimsConfig = spec.resolve_config()
        self.fidelity: str = spec.resolve_fidelity()
        self.tp: int = spec.resolve_tp()
        self.system: Optional[NeuPimsSystem] = None
        self.device: Any = None
        self.pool: Optional[RequestPool] = None
        self.scheduler: Optional[IterationScheduler] = None
        self.allocators = None
        self.load_tracker = None
        self.latency_tracker: Optional[LatencyTracker] = None
        #: fault injector from the ``faults`` component (``None`` off)
        self.fault_injector = None
        #: typed counter collector from the ``counters`` component
        #: (``None`` for ``counters="none"``, the zero-overhead default)
        self.counters = None
        # Every request that ever entered the pool, for build-time KV
        # page-churn accounting (the pool forgets retired requests, and
        # externally fed sessions — fleet nodes — have no arrivals).
        # Only populated while a counter collector is attached.
        self._counter_requests: Dict[int, InferenceRequest] = {}
        #: resilience runtime; only built when faults or knobs are set
        self.resilience: Optional[ResilienceRuntime] = None
        #: typed serving events (zero-overhead while unsubscribed)
        self.events = EventBus()
        self.workload: Optional[Workload] = None
        self.arrivals: Tuple[InferenceRequest, ...] = ()
        self.batches: List[List[InferenceRequest]] = []
        self._materialized = False
        self._result: Optional[RunResult] = None
        # Measurement-mode stepping state (one warmed batch per step).
        self._batch_cursor = 0
        self._measure_records: List[Dict[str, float]] = []
        self._measure_throughputs: List[float] = []
        self._measure_clock = 0.0
        # Streaming-run aggregates captured by the executor wrapper.
        self._busy: Dict[str, float] = {}
        self._latency_acc = 0.0
        self._external_bytes = 0.0

    # ------------------------------------------------------------------
    # Materialization.
    # ------------------------------------------------------------------

    def calibrated_estimator(self) -> MhaLatencyEstimator:
        """The cycle-fidelity Algorithm-1 estimator for this scenario.

        Calibrates ``L_tile`` / ``L_GWRITE`` by replaying command-level
        GEMVs through the cycle-accurate memory controller (memoized per
        hardware configuration by :mod:`repro.perf`).
        """
        from repro.perf.calibration import cached_calibrate
        latencies = cached_calibrate(self.config.timing, self.config.org,
                                     self.config.pim_timing,
                                     self.model_spec.dtype_bytes)
        return MhaLatencyEstimator(spec=self.model_spec, org=self.config.org,
                                   latencies=latencies)

    def _build_device(self) -> Any:
        """Construct the system-under-test through the registry."""
        # The *declared* fidelity name resolves the factory (so the
        # profile-guided ``auto`` component sees its ``profile`` option);
        # ``self.fidelity`` stays the resolved tier for reporting.
        estimator = REGISTRY.create("fidelity", self.spec.fidelity, self,
                                    **self.spec.options_for("fidelity"))
        return REGISTRY.create(
            "system", self.spec.system, self.model_spec, self.config,
            tp=self.tp, layers_resident=self.spec.layers_resident,
            estimator=estimator, **self.spec.options_for("system"))

    def materialize(self) -> "Session":
        """Build the full stack for this scenario (idempotent).

        Every component resolves by name through :mod:`repro.registry`:
        the system under test (unless the ``pp`` knob selects the
        multi-device :class:`~repro.core.system.NeuPimsSystem` engine),
        the traffic model (warmed batches or streaming arrivals), and —
        for streaming workloads — the KV allocator family and the
        scheduler.
        """
        if self._materialized:
            return self
        if self.spec.pp is not None:
            self.system = NeuPimsSystem(
                self.model_spec, ParallelismScheme(self.tp, self.spec.pp),
                config=self.config)
            self.device = self.system.device
        else:
            self.device = self._build_device()
        self.counters = REGISTRY.create(
            "counters", self.spec.counters, self,
            **self.spec.options_for("counters"))
        if self.counters is not None \
                and hasattr(self.device, "attach_counters"):
            self.device.attach_counters()
        traffic = self.spec.traffic
        self.workload = REGISTRY.create(
            "traffic", traffic.kind, traffic,
            **self.spec.options_for("traffic"))
        if self.workload.streaming:
            self._materialize_serving(self.workload)
        else:
            self.batches = [list(batch) for batch in self.workload.batches]
        self._materialized = True
        return self

    def _materialize_serving(self, workload: Workload) -> None:
        """Wire the streaming serving stack (pool/allocators/scheduler)."""
        serving = self.spec.serving
        self.arrivals = tuple(workload.arrivals)
        self.pool = RequestPool()
        if self.counters is not None:
            # KV page churn must charge identically whether requests
            # arrive from the traffic model or an external feeder (a
            # fleet router submitting into the pool), and the pool
            # forgets retired requests — so shadow every submission
            # session-side.  ``submit_all`` routes through ``submit``,
            # so the instance override below sees both.
            tracked = self._counter_requests
            inner_submit = self.pool.submit

            def tracking_submit(request: InferenceRequest) -> None:
                inner_submit(request)
                tracked[request.request_id] = request

            self.pool.submit = tracking_submit
        self.pool.submit_all(self.arrivals)
        is_neupims = isinstance(self.device, NeuPimsDevice)
        channels = self.device.channel_pool if is_neupims else 1
        if serving.paged_kv:
            layers = getattr(self.device, "layers",
                             self.model_spec.num_layers)
            self.allocators = REGISTRY.create(
                "kv", self.spec.kv, self.model_spec, serving, channels,
                layers_resident=layers, **self.spec.options_for("kv"))
        if serving.load_tracker and is_neupims:
            self.load_tracker = self.device.attach_load_tracker()
        self.fault_injector = REGISTRY.create(
            "faults", self.spec.faults, serving, channels,
            **self.spec.options_for("faults"))
        policy = ResiliencePolicy(
            deadline_cycles=serving.deadline_cycles,
            max_retries=serving.max_retries,
            retry_backoff_cycles=serving.retry_backoff_cycles,
            shed_wait_cycles=serving.shed_wait_cycles)
        if self.fault_injector is not None or policy.active:
            preempting = None
            if self.allocators:
                preempting = PreemptingAllocatorPool(
                    self.allocators, self.model_spec.kv_bytes_per_token())
            self.resilience = ResilienceRuntime(
                policy, injector=self.fault_injector,
                preempting=preempting)
        self.latency_tracker = LatencyTracker()
        inner = self._wrapped_executor()
        if self.resilience is not None:
            # Compose inside the tracker wrap so fault penalties and
            # restore costs move the latency clock like device cycles.
            inner = resilient_executor(self.resilience, inner)
        if self.executor_wrapper is not None:
            if serving.grouping == "on":
                raise ValueError("executor_wrapper needs per-iteration "
                                 "executor calls; use grouping='auto' or "
                                 "'off'")
            inner = self.executor_wrapper(inner)
        executor = self.latency_tracker.wrap(inner)
        if self.executor_wrapper is not None:
            grouped = None
        else:
            grouped = self._grouped_executor(serving.grouping)
        wiring: Dict[str, Any] = {}
        if self.resilience is not None:
            # Only passed when active so hand-registered schedulers
            # without the parameter keep working on the default path.
            wiring["resilience"] = self.resilience
        self.scheduler = REGISTRY.create(
            "scheduler", self.spec.scheduler,
            pool=self.pool, executor=executor,
            max_batch_size=serving.max_batch_size,
            allocators=self.allocators,
            assign_channels=(self.device.assign_channels
                             if is_neupims else None),
            load_tracker=self.load_tracker,
            grouping=serving.grouping,
            grouped=grouped,
            latency_tracker=self.latency_tracker,
            events=self.events,
            **wiring,
            **self.spec.options_for("scheduler"))

    def _grouped_executor(self, grouping: str) -> Optional[GroupedExecutor]:
        """The class-grouped engine for this scenario, if applicable.

        ``"auto"`` returns ``None`` for systems without class-plan support
        (the scheduler then stays on the per-request path); ``"on"``
        insists and raises instead.  The returned runner feeds the same
        busy/byte accumulators as the per-request executor wrapper, so
        aggregates are identical between paths.
        """
        if grouping == "off":
            return None
        if self.system is not None:
            system = self.system

            def run_system_plan(plan, shift: int) -> float:
                latency = system.iteration_from_plan(plan, shift)
                self._latency_acc += latency
                return latency
            return GroupedExecutor(system.prepare_class_plan,
                                   run_system_plan)
        if isinstance(self.device, NeuPimsDevice):
            device = self.device

            def run_device_plan(plan, shift: int) -> float:
                result: IterationResult = device.iteration_from_plan(plan,
                                                                     shift)
                self._accumulate(result)
                return result.latency
            return GroupedExecutor(device.prepare_class_plan,
                                   run_device_plan)
        if grouping == "on":
            raise ValueError(
                f"system {self.spec.system!r} has no class-grouped engine; "
                "use grouping='auto' or 'off'")
        return None

    def _wrapped_executor(self):
        """An executor that also aggregates busy/byte accounting."""
        if self.system is not None:
            system = self.system

            def run_system(batch: Sequence[InferenceRequest]) -> float:
                latency = system.iteration_latency(batch)
                self._latency_acc += latency
                return latency
            return run_system
        device = self.device

        def run(batch: Sequence[InferenceRequest]) -> float:
            result: IterationResult = device.iteration(batch)
            self._accumulate(result)
            return result.latency
        return run

    def _accumulate(self, result: IterationResult) -> None:
        """Fold one iteration's busy/byte accounting into the session."""
        self._latency_acc += result.latency
        self._external_bytes += result.external_bytes
        for key, value in result.busy.items():
            self._busy[key] = self._busy.get(key, 0.0) + value
        if self.counters is not None and result.counters:
            self.counters.charge(result.counters)
            events = self.events
            if events.active:
                events.emit(CountersSampled(
                    time=self._latency_acc,
                    counters=tuple(sorted(result.counters.items()))))

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def _iterations_done(self) -> int:
        """Iterations executed so far (either execution mode)."""
        if self.workload is not None and self.workload.streaming:
            return len(self.scheduler.stats.iterations)
        return self._batch_cursor

    def _iteration_limit(self, max_iterations: Optional[int] = None) -> int:
        """The stop bound for the stepping loop."""
        if max_iterations is not None:
            return max_iterations
        if self.workload is not None and self.workload.streaming:
            return self.spec.serving.max_iterations
        return len(self.batches)

    def step(self, max_steps: int = 1) -> Optional[IterationRecord]:
        """Execute one iteration; ``None`` when nothing is runnable.

        Measurement scenarios run the next warmed batch; serving
        scenarios advance the iteration scheduler (under grouping, up to
        ``max_steps`` steady-state iterations may group-commit in one
        call, exactly as inside :meth:`run`).  Returns the last executed
        :class:`~repro.serving.scheduler.IterationRecord`.  Mid-run
        state may be deferred under grouping — call
        ``scheduler.sync_grouped()`` before inspecting the pool.
        """
        self.materialize()
        if self.workload.streaming:
            return self.scheduler.run_iteration(max_steps=max_steps)
        return self._measure_step()

    def run_until(self, predicate: Callable[["Session"], bool],
                  max_iterations: Optional[int] = None) -> RunResult:
        """Step until ``predicate(session)`` holds or the run drains.

        The predicate is evaluated after every iteration with the stack
        synchronized (grouped windows flushed), so it can inspect the
        pool, the latency tracker or the last records — the hook for
        early stop and live-policy experiments.  Returns the result of
        the iterations executed so far *without* caching it: a later
        :meth:`run` resumes and finishes the remaining work.
        """
        self.materialize()
        limit = self._iteration_limit(max_iterations)
        while self._iterations_done() < limit:
            if self.step() is None:
                break
            if self.scheduler is not None:
                self.scheduler.sync_grouped()
            if predicate(self):
                break
        return self._build_result()

    def stream(self, max_iterations: Optional[int] = None
               ) -> Iterator[ServingEvent]:
        """Drive the run, yielding typed events as they occur.

        Subscribes to :attr:`events` for the duration of the generator
        and yields every :mod:`repro.serving.events` event the loop
        publishes — ``IterationCompleted`` per iteration (both paths),
        admission/retirement, KV pressure, grouped-window commits.  The
        iteration schedule is identical to :meth:`run` (same group-commit
        budgets), so records and aggregates are bit-identical to a batch
        run; after exhaustion :meth:`result` returns them.
        """
        self.materialize()
        buffer: "deque[ServingEvent]" = deque()
        unsubscribe = self.events.subscribe(None, buffer.append)
        try:
            limit = self._iteration_limit(max_iterations)
            while self._iterations_done() < limit:
                record = self.step(max_steps=limit - self._iterations_done())
                while buffer:
                    yield buffer.popleft()
                if record is None:
                    break
            if self.scheduler is not None:
                self.scheduler.sync_grouped()
                while buffer:
                    yield buffer.popleft()
        finally:
            unsubscribe()

    def result(self) -> RunResult:
        """The result of the iterations executed so far (uncached)."""
        self.materialize()
        return self._build_result()

    def run(self) -> RunResult:
        """Run the scenario to completion; the result is cached.

        This is the batch mode: the no-subscriber drain of the same
        stepping loop :meth:`stream` drives.  With nothing subscribed to
        :attr:`events` no event object is constructed (the zero-overhead
        observer contract, gated by the perf-regression bench).
        """
        if self._result is not None:
            return self._result
        self.materialize()
        limit = self._iteration_limit()
        while self._iterations_done() < limit:
            if self.step(max_steps=limit - self._iterations_done()) is None:
                break
        if self.scheduler is not None:
            self.scheduler.sync_grouped()
        self._result = self._build_result()
        return self._result

    def _build_result(self) -> RunResult:
        """Assemble the uniform result from the executed iterations."""
        if self.workload is not None and self.workload.streaming:
            return self._build_serving_result()
        return self._build_measurement_result()

    def _utilization(self) -> Dict[str, float]:
        """Busy-fraction accounting (the paper's Table-4 methodology)."""
        latency_acc = self._latency_acc
        utilization = {
            key: min(1.0, value / latency_acc) if latency_acc > 0 else 0.0
            for key, value in self._busy.items()
        }
        if self._busy and latency_acc > 0:
            seconds = latency_acc / 1e9
            utilization["bandwidth"] = min(
                1.0, self._external_bytes
                / (self.config.org.total_bandwidth * seconds))
        return utilization

    def _kv_page_churn(self) -> float:
        """KV pages (paged-allocator blocks) turned over by the run.

        Defined as the blocks needed to hold each pool request's final
        context (:meth:`~repro.serving.paging.PagedKvAllocator.blocks_for`
        over ``input_len + generated``), summed over every request that
        ever entered the pool — a pure function of terminal request
        state, so the charge is bit-identical across grouping modes,
        stream-vs-batch consumption, and external (fleet-router) feeds.
        """
        if not self.allocators or not self._counter_requests:
            return 0.0
        allocator = self.allocators[0]
        return float(sum(
            allocator.blocks_for(req.input_len + req.generated)
            for req in self._counter_requests.values()))

    def _counter_report(self) -> CounterReport:
        """Freeze the run's typed counters (empty when disabled).

        Built afresh at result-build time — the iteration charges live
        in the collector and the KV churn is a pure function of request
        state, so calling this (or :meth:`result`) repeatedly never
        double-charges.
        """
        if self.counters is None:
            return CounterReport()
        totals = self.counters.snapshot()
        churn = self._kv_page_churn()
        if churn:
            totals["kv.page_churn"] = totals.get("kv.page_churn",
                                                 0.0) + churn
        return CounterReport.from_mapping(totals)

    def _energy_per_token(self, tokens: int) -> Optional[float]:
        """Estimated mJ/token from the aggregated busy profile."""
        if not self._busy or self._latency_acc <= 0 or tokens <= 0:
            return None
        from repro.analysis.energy import EnergyParams, iteration_energy
        # Table 5 gives two per-channel anchors: the dual-row-buffer PIM
        # bank and a plain HBM channel.  Systems without an in-memory
        # compute path (and PIM systems in blocked single-buffer mode,
        # as a lower-bound approximation) bill at the HBM rate.
        has_pim = self.spec.system in ("neupims", "npu-pim", "transpim")
        memory_power = (PIM_CHANNEL_POWER_MW
                        if has_pim and self.config.dual_row_buffer
                        else HBM_CHANNEL_POWER_MW)
        aggregate = IterationResult(latency=self._latency_acc,
                                    busy=dict(self._busy))
        report = iteration_energy(
            aggregate, tokens, memory_power,
            EnergyParams(channels=self.config.num_channels))
        return report.energy_per_token_mj

    def _measure_step(self) -> Optional[IterationRecord]:
        """Run the next warmed batch (one generation iteration, §8.1)."""
        if self._batch_cursor >= len(self.batches):
            return None
        index = self._batch_cursor
        batch = self.batches[index]
        if self.system is not None:
            # One pipeline_pitch() drives both numbers (the system's
            # own iteration_latency/throughput methods would each
            # re-simulate the micro-batch).
            pitch = self.system.pipeline_pitch(batch)
            latency = pitch * self.system.scheme.pp
            micro = self.system.micro_batches(batch)[0]
            throughput = len(micro) / (pitch / 1e9)
        else:
            result = self.device.iteration(batch)
            latency = result.latency
            throughput = (len(batch) / (latency / 1e9)
                          if latency > 0 else 0.0)
            self._accumulate(result)
        self._measure_throughputs.append(throughput)
        self._measure_records.append({
            "index": index,
            "latency": latency,
            "batch_size": len(batch),
            "tokens": len(batch),
            "tokens_per_second": throughput,
        })
        self._batch_cursor += 1
        record = IterationRecord(
            index=index, start_time=self._measure_clock, latency=latency,
            batch_size=len(batch), tokens_generated=len(batch),
            admitted=0, retired=0)
        self._measure_clock += latency
        events = self.events
        if events.active:
            events.emit(IterationCompleted(time=record.end_time,
                                           record=record))
        return record

    def _build_measurement_result(self) -> RunResult:
        """Assemble the per-batch measurement aggregates (paper §8.1)."""
        records = list(self._measure_records)
        throughputs = self._measure_throughputs
        batch_sizes = [record["batch_size"] for record in records]
        total_tokens = sum(record["tokens"] for record in records)
        latency_sum = sum(record["latency"] for record in records)
        count = len(records)
        return RunResult(
            kind="measurement",
            model=self.model_spec.name,
            system=self.spec.system,
            fidelity=self.fidelity,
            iterations=count,
            total_tokens=int(total_tokens),
            total_time_cycles=latency_sum,
            tokens_per_second=(sum(throughputs) / count if count else 0.0),
            mean_iteration_cycles=(latency_sum / count if count else 0.0),
            mean_batch_size=(sum(batch_sizes) / count if count else 0.0),
            max_batch_size=int(max(batch_sizes)) if batch_sizes else 0,
            utilization=self._utilization(),
            energy_per_token_mj=self._energy_per_token(int(total_tokens)),
            records=tuple(records),
            counters=self._counter_report(),
        )

    def _build_serving_result(self) -> RunResult:
        """Assemble aggregates over the scheduler's executed iterations."""
        stats = self.scheduler.stats
        records = tuple({
            "index": r.index,
            "start_time": r.start_time,
            "latency": r.latency,
            "batch_size": r.batch_size,
            "tokens": r.tokens_generated,
            "admitted": r.admitted,
            "retired": r.retired,
        } for r in stats.iterations)
        iterations = len(records)
        total_tokens = stats.total_tokens
        total_time = stats.total_time
        batch_sizes = [r.batch_size for r in stats.iterations]
        latency_summary = (self.latency_tracker.report().summary()
                           if self.latency_tracker is not None else {})
        outcomes = getattr(self.scheduler, "outcomes", {})
        request_records = tuple(
            {"request_id": rid, "status": outcomes[rid]}
            for rid in sorted(outcomes))
        resilience_summary: Dict[str, int] = {}
        if self.resilience is not None:
            resilience_summary = {
                key: self.resilience.counters[key]
                for key in sorted(self.resilience.counters)}
            resilience_summary["completed"] = sum(
                1 for status in outcomes.values() if status == "completed")
        return RunResult(
            kind="serving",
            model=self.model_spec.name,
            system=self.spec.system,
            fidelity=self.fidelity,
            iterations=iterations,
            total_tokens=total_tokens,
            total_time_cycles=total_time,
            tokens_per_second=stats.throughput_tokens_per_second(),
            mean_iteration_cycles=(self._latency_acc / iterations
                                   if iterations else 0.0),
            mean_batch_size=(sum(batch_sizes) / iterations
                             if iterations else 0.0),
            max_batch_size=int(max(batch_sizes)) if batch_sizes else 0,
            utilization=self._utilization(),
            energy_per_token_mj=self._energy_per_token(total_tokens),
            latency_ms=latency_summary,
            records=records,
            requests=request_records,
            resilience=resilience_summary,
            counters=self._counter_report(),
        )


def run_scenario(spec: Union[ScenarioSpec, Dict[str, Any]]) -> RunResult:
    """Run one scenario to a :class:`RunResult` (picklable task unit)."""
    if isinstance(spec, dict):
        spec = ScenarioSpec.from_dict(spec)
    return Session(spec).run()


def aggregate_resilience(results: Iterable[RunResult]) -> Dict[str, int]:
    """Sum ``RunResult.resilience`` counters across results.

    The fleet-consistent rollup for fanned-out runs: each
    :mod:`repro.exec` worker returns per-cell counter fragments, and a
    sweep (or a fleet merge) needs their totals — retries, timeouts,
    shed and aborted counts summed over every cell.  Pure integer
    addition over per-result dicts, so the rollup is identical whether
    the results came from a serial loop or any
    :class:`~repro.exec.runner.ParallelRunner` worker count (the
    determinism contract :mod:`repro.exec` pins for records extends to
    the resilience counters).  Results without counters contribute
    nothing; an all-empty input returns ``{}``.
    """
    totals: Dict[str, int] = {}
    for result in results:
        for key, value in result.resilience.items():
            totals[key] = totals.get(key, 0) + value
    return totals


def scenario_warmup(specs: Sequence[ScenarioSpec]) -> PerfCacheWarmup:
    """A per-worker warmup covering the cycle-fidelity configs in specs.

    The calibration cache is keyed on the model's element width too, so
    the warmup carries every distinct ``dtype_bytes`` alongside the
    configs.
    """
    configs = []
    dtypes = []
    for spec in specs:
        if spec.resolve_fidelity() == "cycle":
            config = spec.resolve_config()
            if config not in configs:
                configs.append(config)
            dtype = spec.resolve_model().dtype_bytes
            if dtype not in dtypes:
                dtypes.append(dtype)
    return PerfCacheWarmup(configs=tuple(configs),
                           dtype_bytes=tuple(dtypes) or (2,))


def run_scenarios(specs: Sequence[ScenarioSpec],
                  parallel: ParallelSpec = None,
                  chunk_size: int = 1,
                  start_method: Optional[str] = None,
                  warmup: Optional[Callable[[], None]] = None
                  ) -> List[RunResult]:
    """Fan scenarios across an execution backend, merging in order.

    Results are record-for-record identical to a serial run (the
    :mod:`repro.exec` determinism contract); ``parallel`` accepts the
    usual worker count / backend spec.  Workers pre-warm the perf caches
    for every distinct cycle-fidelity hardware config in ``specs``;
    ``warmup`` chains an extra per-worker initializer — pass a
    :class:`~repro.exec.warmup.RegistryWarmup` when specs name
    user-registered components and the pool may use the ``spawn`` start
    method (fork workers inherit the parent's registry for free).
    A backend *instance* passed as ``parallel`` keeps its own warmup.
    """
    specs = list(specs)
    initializer: Callable[[], None] = scenario_warmup(specs)
    if warmup is not None:
        initializer = WarmupChain((warmup, initializer))
    runner = ParallelRunner(parallel, chunk_size=chunk_size,
                            start_method=start_method, warmup=initializer)
    return runner.map(run_scenario, specs)
