"""The declarative scenario/session API — one front door for every mode.

Every way of running a NeuPIMs experiment — a single warmed-batch
measurement, a streaming serving simulation, a baseline comparison, a
design-space sweep cell — is described by one frozen, picklable
:class:`ScenarioSpec` and executed by one :class:`Session`, returning a
uniform :class:`RunResult`:

    from repro.api import ScenarioSpec, Session, TrafficSpec

    spec = ScenarioSpec(model="gpt3-7b", system="neupims",
                        traffic=TrafficSpec.warmed(batch_size=256))
    result = Session(spec).run()
    print(result.tokens_per_second)

Scenario ingredients are **registered components** (see
:mod:`repro.registry`): ``system``, ``scheduler``, ``traffic.kind``,
``kv`` and ``fidelity`` are plain names resolved at materialization,
each with an optional JSON-round-tripping option dict
(``system_options`` etc.) — so a ``@register``-ed user policy sweeps
like any built-in.  Sessions also **stream**: ``Session.stream()``
yields typed events (:mod:`repro.serving.events`) from the serving
loop, ``Session.step()`` / ``Session.run_until(pred)`` give step-wise
execution and early stop, and the batch ``run()`` is the no-subscriber
drain of the same loop (records bit-identical, zero observer overhead).

Lists of specs fan across :mod:`repro.exec` backends with
:func:`run_scenarios` (specs are picklable by construction), and the
same objects power the ``python -m repro`` CLI — including
``python -m repro components``, which prints the registry.  See
DESIGN.md §7–§8.
"""

from repro.api.bench import run_serving_bench, serving_bench_spec
from repro.api.session import (RunResult, Session, aggregate_resilience,
                               run_scenario, run_scenarios, scenario_warmup)
from repro.api.spec import (FIDELITIES, GROUPING_MODES, SYSTEMS,
                            TRAFFIC_KINDS, ScenarioSpec, ServingSpec,
                            TrafficSpec)

__all__ = [
    "FIDELITIES",
    "GROUPING_MODES",
    "RunResult",
    "SYSTEMS",
    "ScenarioSpec",
    "ServingSpec",
    "Session",
    "TRAFFIC_KINDS",
    "TrafficSpec",
    "aggregate_resilience",
    "run_scenario",
    "run_scenarios",
    "run_serving_bench",
    "scenario_warmup",
    "serving_bench_spec",
]
