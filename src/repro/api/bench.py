"""The large-batch serving benchmark behind ``python -m repro bench``.

One benchmark, three consumers:

* the CLI subcommand prints the ``BENCH`` JSON line and can compare the
  run against a committed baseline (CI fails on a >20% speedup
  regression);
* ``benchmarks/test_perf_regression.py`` asserts the grouped engine's
  speedup and record identity as part of the perf-regression suite;
* the JSON payload is uploaded as a CI artifact to seed the serving-scale
  perf trajectory.

The workload is a class-friendly replay trace: a large decode batch
whose input/output lengths cluster into a few buckets (production
traffic binned by prompt template / length bucket), so the batch
collapses into a handful of ``(channel, seq_len, remaining)``
equivalence classes.  Wall-clock numbers compare ``grouping="off"``
(per-request iterations) against ``grouping="auto"`` (group-commit
windows); the *simulated* metrics are required to be bit-identical, so
only the wall-clock ratio is machine-dependent.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.api.session import RunResult, Session
from repro.api.spec import ScenarioSpec, ServingSpec, TrafficSpec

#: Length buckets of the benchmark trace (tokens).  Few buckets keep the
#: class count far below the request count, which is the regime the
#: grouped engine targets: the batch collapses into at most
#: ``len(INPUT_BUCKETS) x num_channels`` MHA classes however large it is.
INPUT_BUCKETS = (128, 320)
OUTPUT_BUCKETS = (64, 96)


def bucketed_replay_triples(num_requests: int,
                            input_buckets=INPUT_BUCKETS,
                            output_buckets=OUTPUT_BUCKETS,
                            seed: int = 0) -> List[tuple]:
    """Deterministic ``(input_len, output_len, arrival)`` triples.

    Lengths cycle through the bucket grid in a seeded, interleaved order
    (no RNG dependency); all requests arrive at time zero, modelling a
    drained admission queue in front of a saturated decode batch.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    triples = []
    n_in, n_out = len(input_buckets), len(output_buckets)
    for index in range(num_requests):
        mixed = index * 2654435761 + seed * 97  # Knuth hash, deterministic
        input_len = input_buckets[mixed % n_in]
        output_len = output_buckets[(mixed // n_in) % n_out]
        triples.append((input_len, output_len, 0.0))
    return triples


def serving_bench_spec(num_requests: int = 1024,
                       grouping: str = "auto",
                       max_iterations: int = 1_000_000) -> ScenarioSpec:
    """The benchmark scenario at one grouping mode."""
    return ScenarioSpec(
        model="gpt3-7b",
        system="neupims",
        layers_resident=4,
        fidelity="analytic",
        traffic=TrafficSpec.replay(
            bucketed_replay_triples(num_requests)),
        serving=ServingSpec(max_batch_size=num_requests,
                            kv_capacity_bytes=1 << 30,
                            max_iterations=max_iterations,
                            grouping=grouping),
        label=f"serving-bench-{grouping}",
    )


def _run_mode(num_requests: int, grouping: str,
              max_iterations: int) -> tuple:
    session = Session(serving_bench_spec(num_requests, grouping,
                                         max_iterations))
    start = time.perf_counter()
    result = session.run()
    return result, time.perf_counter() - start


def run_serving_bench(num_requests: int = 1024,
                      repeats: int = 3,
                      max_iterations: int = 1_000_000) -> Dict[str, Any]:
    """Run the benchmark; raises ``RuntimeError`` if records diverge.

    Both sides take best-of runs (the grouped side ``repeats``, the
    per-request side two) — single wall-clock samples on shared runners
    are noise-prone and the speedup ratio below is gated in CI.
    """
    baseline_result: Optional[RunResult] = None
    off_seconds = float("inf")
    for _ in range(2):
        baseline_result, seconds = _run_mode(num_requests, "off",
                                             max_iterations)
        off_seconds = min(off_seconds, seconds)
    grouped_result: Optional[RunResult] = None
    auto_seconds = float("inf")
    for _ in range(max(1, repeats)):
        candidate, seconds = _run_mode(num_requests, "auto", max_iterations)
        auto_seconds = min(auto_seconds, seconds)
        grouped_result = candidate
    if grouped_result.to_dict() != baseline_result.to_dict():
        raise RuntimeError(
            "grouped serving run diverged from the per-request run "
            "(records or aggregates are not bit-identical)")
    iterations = baseline_result.iterations
    tokens = baseline_result.total_tokens
    speedup = off_seconds / max(auto_seconds, 1e-9)
    return {
        "bench": "grouped_serving",
        "requests": num_requests,
        "iterations": iterations,
        "tokens": tokens,
        "sim_tokens_per_s": round(baseline_result.tokens_per_second, 3),
        "sim_time_ms": round(baseline_result.total_time_cycles / 1e6, 3),
        "wall_off_s": round(off_seconds, 3),
        "wall_auto_s": round(auto_seconds, 3),
        "us_per_iteration_off": round(off_seconds * 1e6
                                      / max(iterations, 1), 1),
        "us_per_iteration_auto": round(auto_seconds * 1e6
                                       / max(iterations, 1), 1),
        "speedup": round(speedup, 2),
        "records_identical": True,
    }


def compare_to_baseline(payload: Dict[str, Any],
                        baseline: Dict[str, Any],
                        tolerance: float = 0.2) -> List[str]:
    """Regression check against a committed baseline payload.

    Simulated metrics are deterministic and must match almost exactly;
    the wall-clock ``speedup`` is a same-machine ratio, comparable across
    runners, and may not regress by more than ``tolerance`` (default
    20%).  Returns a list of human-readable problems (empty = pass).
    """
    problems: List[str] = []
    for key in ("requests", "iterations", "tokens"):
        if key in baseline and payload.get(key) != baseline[key]:
            problems.append(f"{key}: expected {baseline[key]}, "
                            f"got {payload.get(key)}")
    for key in ("sim_tokens_per_s", "sim_time_ms"):
        if key in baseline:
            expected = float(baseline[key])
            actual = float(payload.get(key, 0.0))
            if abs(actual - expected) > 1e-6 * max(1.0, abs(expected)):
                problems.append(f"{key}: expected {expected}, got {actual}")
    if "speedup" in baseline:
        floor = float(baseline["speedup"]) * (1.0 - tolerance)
        if float(payload.get("speedup", 0.0)) < floor:
            problems.append(
                f"speedup regression: {payload.get('speedup')} < "
                f"{floor:.2f} ({(1 - tolerance):.0%} of baseline "
                f"{baseline['speedup']})")
    return problems
