"""The ``python -m repro`` command line over the scenario API.

Seven subcommands share one scenario vocabulary:

* ``run`` — execute a single :class:`~repro.api.ScenarioSpec` (built
  from flags or loaded from a JSON file) and print its summary;
* ``sweep`` — fan axis overrides of a base spec across workers through
  :func:`~repro.analysis.sweep.scenario_sweep` (records identical to a
  serial run for any ``--workers``);
* ``compare`` — run several systems on the same workload side by side;
* ``bench`` — the large-batch grouped-serving benchmark, with optional
  comparison against a committed baseline (the CI regression gate);
* ``chaos`` — seeded fault sweeps through the serving stack with hard
  conservation/determinism invariants (the CI chaos-smoke gate; see
  :mod:`repro.faults.chaos`); ``--fleet`` targets the cluster tier
  instead (seeded node kills against a routed fleet);
* ``refute`` — the cross-fidelity counter refutation harness
  (:mod:`repro.counters.refute`): sweep a scenario grid across both
  fidelity tiers, diff their typed counter vectors against per-counter
  tolerance bounds and print the worst-offending cells (the CI
  ``refute-smoke`` gate); the emitted profile drives
  ``fidelity="auto"``;
* ``components`` — list the :mod:`repro.registry` component table
  (systems, schedulers, traffic models, KV allocators, fidelity
  engines, fault plans, counter collectors), including anything user
  code registered before invoking the CLI programmatically.

``--system`` and ``--scheduler`` accept any *registered* name — not
just the built-ins — so a module that ``@register``\\ s a policy and
then calls :func:`main` gets CLI sweeps over it for free.

Every subcommand accepts ``--json PATH`` to dump the uniform
result/record payloads for artifact pipelines (see the CI
examples-smoke and serving-bench jobs).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.api.spec import (FIDELITIES, SYSTEMS, ScenarioSpec, ServingSpec,
                            TrafficSpec)


def _parse_axis_value(text: str) -> Any:
    """Parse one axis value: bool, int, float, or bare string."""
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text.strip()


def parse_axis(argument: str) -> Dict[str, List[Any]]:
    """Parse one ``--axis name=v1,v2,...`` argument."""
    if "=" not in argument:
        raise argparse.ArgumentTypeError(
            f"axis {argument!r} is not of the form name=v1,v2,...")
    name, _, values = argument.partition("=")
    parsed = [_parse_axis_value(v) for v in values.split(",") if v.strip()]
    if not name.strip() or not parsed:
        raise argparse.ArgumentTypeError(
            f"axis {argument!r} needs a name and at least one value")
    return {name.strip(): parsed}


def _add_scenario_flags(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every subcommand that builds a base spec."""
    parser.add_argument("--spec", metavar="FILE", default=None,
                        help="load the base ScenarioSpec from a JSON file "
                             "(flags below override its fields)")
    parser.add_argument("--model", default=None, help="model registry name")
    parser.add_argument("--system", default=None,
                        help="registered system name "
                             f"(built-ins: {', '.join(SYSTEMS)})")
    parser.add_argument("--scheduler", default=None,
                        help="registered scheduler name "
                             "(default: iteration)")
    parser.add_argument("--traffic", default=None,
                        help="registered traffic kind (built-ins: warmed, "
                             "poisson; replay is JSON-spec only)")
    parser.add_argument("--dataset", default=None,
                        help="dataset trace name (sharegpt/alpaca)")
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument("--num-batches", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--rate", type=float, default=None,
                        help="poisson arrivals per kilocycle")
    parser.add_argument("--horizon", type=float, default=None,
                        help="poisson horizon in cycles")
    parser.add_argument("--max-requests", type=int, default=None)
    parser.add_argument("--max-batch-size", type=int, default=None,
                        help="serving-loop batch cap")
    parser.add_argument("--grouping", default=None,
                        choices=("auto", "on", "off"),
                        help="equivalence-class group-commit engine for "
                             "serving runs (default auto)")
    parser.add_argument("--faults", default=None,
                        help="registered fault-plan component for serving "
                             "runs (built-ins: none, seeded)")
    parser.add_argument("--fault-seed", type=int, default=None,
                        dest="fault_seed",
                        help="seed for the fault plan (implies --faults "
                             "seeded when no component is named)")
    parser.add_argument("--tp", type=int, default=None)
    parser.add_argument("--pp", type=int, default=None)
    parser.add_argument("--layers-resident", type=int, default=None)
    parser.add_argument("--fidelity", default=None, choices=FIDELITIES)
    parser.add_argument("--json", metavar="FILE", default=None,
                        dest="json_path",
                        help="also dump the result payload as JSON")


def build_spec(args: argparse.Namespace) -> ScenarioSpec:
    """Materialize the base ScenarioSpec from CLI flags (and --spec)."""
    if args.spec is not None:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = ScenarioSpec.from_dict(json.load(handle))
    else:
        spec = ScenarioSpec()
    overrides: Dict[str, Any] = {}
    for flag, field_name in (("model", "model"), ("system", "system"),
                             ("scheduler", "scheduler"),
                             ("tp", "tp"), ("pp", "pp"),
                             ("layers_resident", "layers_resident"),
                             ("fidelity", "fidelity")):
        value = getattr(args, flag)
        if value is not None:
            overrides[field_name] = value
    traffic = spec.traffic
    if args.traffic is not None and args.traffic != traffic.kind:
        if args.traffic == "warmed":
            traffic = TrafficSpec.warmed(dataset=traffic.dataset)
        elif args.traffic == "poisson":
            traffic = TrafficSpec.poisson(dataset=traffic.dataset)
        else:
            # Any other registered traffic kind (the spec layer
            # validates the name and lists alternatives on a miss).
            traffic = TrafficSpec(kind=args.traffic,
                                  dataset=traffic.dataset)
    traffic_updates: Dict[str, Any] = {}
    for flag, field_name in (("dataset", "dataset"),
                             ("batch_size", "batch_size"),
                             ("num_batches", "num_batches"),
                             ("seed", "seed"),
                             ("rate", "rate_per_kcycle"),
                             ("horizon", "horizon_cycles"),
                             ("max_requests", "max_requests")):
        value = getattr(args, flag)
        if value is not None:
            traffic_updates[field_name] = value
    if traffic_updates or traffic is not spec.traffic:
        from dataclasses import replace
        overrides["traffic"] = replace(traffic, **traffic_updates)
    serving_updates: Dict[str, Any] = {}
    if args.max_batch_size is not None:
        serving_updates["max_batch_size"] = args.max_batch_size
    if args.grouping is not None:
        serving_updates["grouping"] = args.grouping
    if serving_updates:
        from dataclasses import replace
        overrides["serving"] = replace(spec.serving, **serving_updates)
    if args.faults is not None:
        overrides["faults"] = args.faults
    if args.fault_seed is not None:
        if args.faults is None and spec.faults == "none":
            # A bare --fault-seed means "inject the seeded plan".
            overrides["faults"] = "seeded"
        overrides["faults_options"] = {**spec.options_for("faults"),
                                       "seed": args.fault_seed}
    return spec.override(**overrides) if overrides else spec


def _dump_json(path: Optional[str], payload: Any) -> None:
    if path is None:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def cmd_run(args: argparse.Namespace) -> int:
    """``repro run``: one scenario -> one RunResult summary."""
    from repro.api.session import Session
    spec = build_spec(args)
    result = Session(spec).run()
    print(format_table(["metric", "value"], result.summary_rows(),
                       title=f"{spec.display_name()} "
                             f"[{result.kind}, {result.fidelity}]"))
    _dump_json(args.json_path, {"spec": spec.to_dict(),
                                "result": result.to_dict()})
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """``repro sweep``: axis overrides fanned across workers."""
    from repro.analysis.sweep import SweepAxis, scenario_sweep
    base = build_spec(args)
    axes_map: Dict[str, List[Any]] = {}
    for axis in args.axis or []:
        axes_map.update(axis)
    if not axes_map:
        axes_map = {"batch_size": [base.traffic.batch_size]}
    axes = [SweepAxis(name, values) for name, values in axes_map.items()]
    sweep = scenario_sweep(
        base, axes, parallel=args.workers if args.workers > 1 else None)
    columns = sweep.axes + [m for m in sweep.records[0]
                            if m not in sweep.axes] if sweep.records else \
        sweep.axes
    print(format_table(columns, sweep.as_rows(columns),
                       title=f"scenario sweep over {base.display_name()} "
                             f"({args.workers} worker(s))"))
    _dump_json(args.json_path, {"spec": base.to_dict(), "axes": sweep.axes,
                                "records": sweep.records})
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """``repro compare``: several systems on one workload."""
    from repro.api.session import run_scenarios
    if args.system is not None:
        raise ValueError("compare selects systems via --systems "
                         "(comma-separated); --system does not apply")
    base = build_spec(args)
    if base.fidelity == "auto":
        # "auto" resolves per system (cycle for PIM systems, analytic for
        # the rest); a side-by-side table must measure every system at
        # ONE fidelity, so pin the common denominator.
        base = base.override(fidelity="analytic")
    systems = [s.strip() for s in args.systems.split(",") if s.strip()]
    specs = [base.override(system=system) for system in systems]
    results = run_scenarios(
        specs, parallel=args.workers if args.workers > 1 else None)
    rows = []
    for system, result in zip(systems, results):
        rows.append((
            system,
            round(result.tokens_per_second),
            round(result.mean_iteration_cycles / 1e3, 1),
            f"{result.utilization.get('npu', 0.0):.1%}",
            f"{result.utilization.get('pim', 0.0):.1%}",
        ))
    print(format_table(
        ["system", "tokens/s", "iteration (us)", "NPU util", "PIM util"],
        rows, title=f"system comparison on {base.resolve_model().name}"))
    _dump_json(args.json_path, {
        "spec": base.to_dict(),
        "results": {system: result.to_dict()
                    for system, result in zip(systems, results)},
    })
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench``: the large-batch grouped-serving benchmark.

    Prints one BENCH JSON line (the perf-trajectory seed format); with
    ``--baseline`` the run is compared against a committed payload and a
    >``--tolerance`` speedup regression (or any simulated-metric drift)
    fails the command — the CI contract.
    """
    from repro.api.bench import compare_to_baseline, run_serving_bench
    payload = run_serving_bench(num_requests=args.requests,
                                repeats=args.repeats)
    print(f"BENCH {json.dumps(payload, sort_keys=True)}")
    _dump_json(args.json_path, payload)
    if args.baseline is not None:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        problems = compare_to_baseline(payload, baseline,
                                       tolerance=args.tolerance)
        if problems:
            for problem in problems:
                print(f"bench regression: {problem}", file=sys.stderr)
            return 1
        print(f"bench within {args.tolerance:.0%} of baseline "
              f"{args.baseline}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """``repro chaos``: seeded fault sweeps with hard invariants.

    Runs the chaos harness (:mod:`repro.faults.chaos`): every fault seed
    is swept across grouping ``auto | off`` and ``batch | stream``
    consumption, conservation/monotonicity invariants are checked on
    each cell, and the four result payloads must be bit-identical.  Any
    violation prints to stderr and fails the command — the CI
    ``chaos-smoke`` contract.

    With ``--fleet`` the sweep targets the cluster tier instead
    (:func:`~repro.faults.chaos.run_fleet_chaos`): seeded node-kill
    schedules against a routed fleet, asserting no request is lost
    across failovers, payload identity across batch and step-chunked
    stepping, and the single-node ≡ plain-Session anchor.
    """
    if args.fleet:
        from repro.faults.chaos import run_fleet_chaos
        report = run_fleet_chaos(seeds=args.seeds, nodes=args.fleet_nodes,
                                 requests=args.requests,
                                 faults=args.fleet_faults)
        rows = [(cell["fault_seed"], cell["policy"], cell["mode"],
                 cell["requests"], cell["completed"], cell["timed_out"],
                 cell["shed"], cell["aborted"], cell["failed_over"])
                for cell in report["cells"]]
        print(format_table(
            ["seed", "policy", "mode", "requests", "completed",
             "timed_out", "shed", "aborted", "failed_over"],
            rows, title=f"fleet chaos harness ({args.fleet_nodes} nodes, "
                        f"{args.fleet_faults})"))
    else:
        from repro.faults.chaos import run_chaos
        report = run_chaos(seeds=args.seeds, requests=args.requests)
        rows = [(cell["fault_seed"], cell["grouping"], cell["mode"],
                 cell["requests"], cell["completed"], cell["timed_out"],
                 cell["shed"], cell["aborted"], cell["retries"],
                 cell["faults"]) for cell in report["cells"]]
        print(format_table(
            ["seed", "grouping", "mode", "requests", "completed",
             "timed_out", "shed", "aborted", "retries", "faults"],
            rows, title="chaos harness (seeded fault sweeps)"))
    _dump_json(args.json_path, report)
    if report["violations"]:
        for violation in report["violations"]:
            print(f"invariant violation: {violation}", file=sys.stderr)
        return 1
    print(f"chaos: {len(report['cells'])} cells across {args.seeds} "
          f"seed(s); all invariants hold")
    return 0


def cmd_refute(args: argparse.Namespace) -> int:
    """``repro refute``: cross-fidelity counter refutation.

    Sweeps the hardware-region x sequence-length grid through both
    fidelity tiers (:func:`repro.counters.refute.run_refute`), prints
    the per-counter worst-offending cells and every tolerance-bound
    violation; any violation fails the command — the CI
    ``refute-smoke`` contract.  The report (``--json``) embeds the
    :class:`~repro.counters.profile.FidelityProfile` the sweep implies,
    ready to feed ``fidelity="auto"`` via ``fidelity_options``.
    """
    from repro.counters.refute import run_refute
    seq_lens = None
    if args.seq_lens:
        seq_lens = tuple(int(s) for s in args.seq_lens.split(",")
                         if s.strip())
    report = run_refute(model=args.model or "gpt3-7b", seq_lens=seq_lens,
                        audit_fraction=args.audit_fraction,
                        seed=args.seed)
    rows = [(name, f"{entry['drift']:.3f}",
             f"{report['bounds'][name]:.3f}", entry["region"],
             entry["seq_len"], entry["op"])
            for name, entry in report["worst"].items()]
    print(format_table(
        ["counter", "worst drift", "bound", "region", "seq_len", "op"],
        rows, title=f"cross-fidelity refutation ({report['model']}, "
                    f"{len(report['cells'])} cells)"))
    _dump_json(args.json_path, report)
    if report["violations"]:
        for violation in report["violations"]:
            print(f"refuted: {violation['counter']} drift "
                  f"{violation['drift']:.3f} > bound "
                  f"{violation['bound']:.3f} at {violation['region']} "
                  f"seq_len={violation['seq_len']} {violation['op']}",
                  file=sys.stderr)
        return 1
    print(f"refute: {len(report['cells'])} cells within bounds; "
          f"profile default "
          f"{report['profile'].get('default', 'analytic')}")
    return 0


def cmd_components(args: argparse.Namespace) -> int:
    """``repro components``: the registered component table."""
    from repro.registry import describe_components
    components = describe_components(args.kind)  # raises on bad kind
    rows = [(c.kind, c.name,
             ",".join(c.option_names) if c.option_names else "-",
             c.description) for c in components]
    print(format_table(["kind", "name", "options", "description"], rows,
                       title="registered components (repro.registry)"))
    _dump_json(args.json_path, [
        {"kind": c.kind, "name": c.name, "description": c.description,
         "options": list(c.option_names)} for c in components])
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Declarative NeuPIMs scenario runner (see repro.api).")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run one scenario and print its RunResult summary")
    _add_scenario_flags(run_parser)
    run_parser.set_defaults(handler=cmd_run)

    sweep_parser = subparsers.add_parser(
        "sweep", help="sweep axis overrides of a base scenario")
    _add_scenario_flags(sweep_parser)
    sweep_parser.add_argument("--axis", action="append", type=parse_axis,
                              metavar="NAME=V1,V2,...",
                              help="sweep axis (repeatable)")
    sweep_parser.add_argument("--workers", type=int, default=1,
                              help="process-pool workers (records are "
                                   "identical to serial for any count)")
    sweep_parser.set_defaults(handler=cmd_sweep)

    compare_parser = subparsers.add_parser(
        "compare", help="compare systems on the same workload")
    _add_scenario_flags(compare_parser)
    compare_parser.add_argument(
        "--systems", default="gpu-only,npu-only,npu-pim,neupims",
        help="comma-separated system list")
    compare_parser.add_argument("--workers", type=int, default=1)
    compare_parser.set_defaults(handler=cmd_compare)

    bench_parser = subparsers.add_parser(
        "bench", help="run the large-batch grouped-serving benchmark")
    bench_parser.add_argument("--requests", type=int, default=1024,
                              help="decode batch size (default 1024)")
    bench_parser.add_argument("--repeats", type=int, default=3,
                              help="best-of repeats for the grouped side")
    bench_parser.add_argument("--baseline", metavar="FILE", default=None,
                              help="committed baseline payload to compare "
                                   "against (non-zero exit on regression)")
    bench_parser.add_argument("--tolerance", type=float, default=0.2,
                              help="allowed fractional speedup regression "
                                   "vs the baseline (default 0.2)")
    bench_parser.add_argument("--json", metavar="FILE", default=None,
                              dest="json_path",
                              help="also dump the BENCH payload as JSON")
    bench_parser.set_defaults(handler=cmd_bench)

    chaos_parser = subparsers.add_parser(
        "chaos", help="sweep seeded fault scenarios and check "
                      "conservation invariants")
    chaos_parser.add_argument("--seeds", type=int, default=3,
                              help="fault seeds to sweep (default 3)")
    chaos_parser.add_argument("--requests", type=int, default=16,
                              help="requests per chaos cell (default 16)")
    chaos_parser.add_argument("--fleet", action="store_true",
                              help="sweep the cluster tier instead: "
                                   "seeded node-kill schedules against a "
                                   "routed fleet (repro.cluster)")
    chaos_parser.add_argument("--fleet-nodes", type=int, default=3,
                              dest="fleet_nodes",
                              help="fleet size for --fleet (default 3)")
    chaos_parser.add_argument("--fleet-faults", default="node-kill",
                              dest="fleet_faults",
                              choices=("node-kill", "none"),
                              help="fleet fault mode for --fleet "
                                   "(default node-kill)")
    chaos_parser.add_argument("--json", metavar="FILE", default=None,
                              dest="json_path",
                              help="also dump the invariant report as "
                                   "JSON")
    chaos_parser.set_defaults(handler=cmd_chaos)

    refute_parser = subparsers.add_parser(
        "refute", help="diff the fidelity tiers' typed counters against "
                       "tolerance bounds")
    refute_parser.add_argument("--model", default=None,
                               help="model registry name "
                                    "(default gpt3-7b)")
    refute_parser.add_argument("--seq-lens", default=None,
                               dest="seq_lens",
                               help="comma-separated sequence-length "
                                    "grid (default 128,512,1536)")
    refute_parser.add_argument("--audit-fraction", type=float, default=0.0,
                               dest="audit_fraction",
                               help="fraction of analytic regions the "
                                    "emitted profile re-checks at cycle "
                                    "fidelity (default 0)")
    refute_parser.add_argument("--seed", type=int, default=0,
                               help="seed for the profile's audit draws")
    refute_parser.add_argument("--json", metavar="FILE", default=None,
                               dest="json_path",
                               help="also dump the refutation report "
                                    "(with its FidelityProfile) as JSON")
    refute_parser.set_defaults(handler=cmd_refute)

    components_parser = subparsers.add_parser(
        "components", help="list the registered scenario components")
    components_parser.add_argument("--kind", default=None,
                                   help="restrict to one component kind "
                                        "(system/scheduler/traffic/kv/"
                                        "fidelity/faults/counters)")
    components_parser.add_argument("--json", metavar="FILE", default=None,
                                   dest="json_path",
                                   help="also dump the table as JSON")
    components_parser.set_defaults(handler=cmd_components)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except (ValueError, KeyError, TypeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
