"""Sensitivity of the headline result to the calibration knobs.

This reproduction had to choose several calibration parameters
(aggregate bus width, PIM MAC pacing, blocked-mode overhead, bandwidth
derate; see DESIGN.md).  This module perturbs each knob across a plausible
range and re-measures the NeuPIMs-vs-baseline speedups, answering the
reviewer question: *do the paper's conclusions survive the calibration
uncertainty?*  The associated bench prints a tornado-style table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import NeuPimsConfig
from repro.exec.backends import ParallelSpec
from repro.model.spec import GPT3_7B, ModelSpec
from repro.serving.trace import DatasetTrace, SHAREGPT


@dataclass(frozen=True)
class KnobRange:
    """One calibration knob and the variants to evaluate."""

    name: str
    #: maps a scale factor to a perturbed NeuPimsConfig
    apply: Callable[[NeuPimsConfig, float], NeuPimsConfig]
    scales: Sequence[float] = (0.5, 1.0, 2.0)


def _scale_bus(config: NeuPimsConfig, scale: float) -> NeuPimsConfig:
    org = config.org
    width = max(8, int(org.bus_bytes_per_cycle * scale))
    return replace(config, org=replace(org, bus_bytes_per_cycle=width))


def _scale_mac(config: NeuPimsConfig, scale: float) -> NeuPimsConfig:
    pim = config.pim_timing
    cycles = max(1, int(round(pim.dotprod_cycles_per_chunk * scale)))
    return replace(config,
                   pim_timing=replace(pim, dotprod_cycles_per_chunk=cycles))


def _scale_blocked(config: NeuPimsConfig, scale: float) -> NeuPimsConfig:
    return replace(config,
                   blocked_mode_overhead=config.blocked_mode_overhead * scale)


def _scale_derate(config: NeuPimsConfig, scale: float) -> NeuPimsConfig:
    derate = min(1.0, max(0.1, config.bandwidth_derate * scale))
    return replace(config, bandwidth_derate=derate)


DEFAULT_KNOBS: List[KnobRange] = [
    KnobRange("bus_bytes_per_cycle", _scale_bus),
    KnobRange("dotprod_cycles_per_chunk", _scale_mac),
    KnobRange("blocked_mode_overhead", _scale_blocked),
    KnobRange("bandwidth_derate", _scale_derate, scales=(0.75, 1.0, 1.25)),
]


@dataclass
class SensitivityPoint:
    """Speedup measurement under one knob setting."""

    knob: str
    scale: float
    speedup_vs_naive: float


def speedup_scenarios(config: NeuPimsConfig, spec: ModelSpec,
                      trace: DatasetTrace, batch_size: int,
                      tp: int, layers: int, seed: int = 0):
    """The (NeuPIMs, naive) :class:`~repro.api.ScenarioSpec` pair for one
    knob setting — both systems measure the same warmed batch."""
    from repro.api import ScenarioSpec, TrafficSpec
    base = ScenarioSpec(
        model=spec, config=config, tp=tp, layers_resident=layers,
        fidelity="analytic",
        traffic=TrafficSpec.warmed(dataset=trace, batch_size=batch_size,
                                   seed=seed))
    return base.override(system="neupims"), base.override(system="npu-pim")


def measure_speedup(config: NeuPimsConfig, spec: ModelSpec,
                    trace: DatasetTrace, batch_size: int,
                    tp: int, layers: int, seed: int = 0) -> float:
    """NeuPIMs-over-naive speedup under one configuration."""
    from repro.api import run_scenario
    neu_spec, naive_spec = speedup_scenarios(config, spec, trace, batch_size,
                                             tp, layers, seed=seed)
    t_neu = run_scenario(neu_spec).tokens_per_second
    t_naive = run_scenario(naive_spec).tokens_per_second
    return t_neu / t_naive


def sensitivity_sweep(spec: ModelSpec = GPT3_7B,
                      trace: DatasetTrace = SHAREGPT,
                      batch_size: int = 256, tp: int = 4, layers: int = 4,
                      knobs: Optional[List[KnobRange]] = None,
                      base_config: Optional[NeuPimsConfig] = None,
                      parallel: ParallelSpec = None
                      ) -> List[SensitivityPoint]:
    """Perturb each knob independently; return speedups per setting.

    ``parallel`` shards the per-setting scenario runs across a
    :mod:`repro.exec` backend.  Knob ``apply`` functions run in the
    parent; each setting becomes a (NeuPIMs, naive) pair of declarative
    :class:`~repro.api.ScenarioSpec` objects fanned through
    :func:`~repro.api.run_scenarios` (specs are picklable by
    construction), so point order matches the serial loop exactly.
    """
    from repro.api import run_scenarios
    knobs = knobs if knobs is not None else DEFAULT_KNOBS
    base = base_config or NeuPimsConfig()
    settings = [(knob.name, scale, knob.apply(base, scale))
                for knob in knobs for scale in knob.scales]
    specs = []
    for _, _, config in settings:
        specs.extend(speedup_scenarios(config, spec, trace, batch_size,
                                       tp, layers))
    results = run_scenarios(specs, parallel=parallel)
    speedups = [neu.tokens_per_second / naive.tokens_per_second
                for neu, naive in zip(results[::2], results[1::2])]
    return [SensitivityPoint(knob=name, scale=scale, speedup_vs_naive=speedup)
            for (name, scale, _), speedup in zip(settings, speedups)]


def conclusion_robust(points: Sequence[SensitivityPoint],
                      threshold: float = 1.0) -> bool:
    """Does 'NeuPIMs beats the naive integration' hold at every setting?"""
    return all(p.speedup_vs_naive > threshold for p in points)


def tornado_table(points: Sequence[SensitivityPoint]) -> Dict[str, Dict[float, float]]:
    """Group points by knob for table rendering."""
    table: Dict[str, Dict[float, float]] = {}
    for point in points:
        table.setdefault(point.knob, {})[point.scale] = point.speedup_vs_naive
    return table
