"""Sensitivity of the headline result to the calibration knobs.

DESIGN.md §6 lists the fidelity parameters this reproduction had to
choose (aggregate bus width, PIM MAC pacing, blocked-mode overhead,
bandwidth derate).  This module perturbs each knob across a plausible
range and re-measures the NeuPIMs-vs-baseline speedups, answering the
reviewer question: *do the paper's conclusions survive the calibration
uncertainty?*  The associated bench prints a tornado-style table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.metrics import iteration_throughput
from repro.baselines.npu_pim import naive_npu_pim_device
from repro.core.config import NeuPimsConfig
from repro.core.device import NeuPimsDevice
from repro.exec.backends import ParallelSpec, resolve_backend
from repro.model.spec import GPT3_7B, ModelSpec
from repro.serving.trace import DatasetTrace, SHAREGPT, warmed_batch


@dataclass(frozen=True)
class KnobRange:
    """One calibration knob and the variants to evaluate."""

    name: str
    #: maps a scale factor to a perturbed NeuPimsConfig
    apply: Callable[[NeuPimsConfig, float], NeuPimsConfig]
    scales: Sequence[float] = (0.5, 1.0, 2.0)


def _scale_bus(config: NeuPimsConfig, scale: float) -> NeuPimsConfig:
    org = config.org
    width = max(8, int(org.bus_bytes_per_cycle * scale))
    return replace(config, org=replace(org, bus_bytes_per_cycle=width))


def _scale_mac(config: NeuPimsConfig, scale: float) -> NeuPimsConfig:
    pim = config.pim_timing
    cycles = max(1, int(round(pim.dotprod_cycles_per_chunk * scale)))
    return replace(config,
                   pim_timing=replace(pim, dotprod_cycles_per_chunk=cycles))


def _scale_blocked(config: NeuPimsConfig, scale: float) -> NeuPimsConfig:
    return replace(config,
                   blocked_mode_overhead=config.blocked_mode_overhead * scale)


def _scale_derate(config: NeuPimsConfig, scale: float) -> NeuPimsConfig:
    derate = min(1.0, max(0.1, config.bandwidth_derate * scale))
    return replace(config, bandwidth_derate=derate)


DEFAULT_KNOBS: List[KnobRange] = [
    KnobRange("bus_bytes_per_cycle", _scale_bus),
    KnobRange("dotprod_cycles_per_chunk", _scale_mac),
    KnobRange("blocked_mode_overhead", _scale_blocked),
    KnobRange("bandwidth_derate", _scale_derate, scales=(0.75, 1.0, 1.25)),
]


@dataclass
class SensitivityPoint:
    """Speedup measurement under one knob setting."""

    knob: str
    scale: float
    speedup_vs_naive: float


def measure_speedup(config: NeuPimsConfig, spec: ModelSpec,
                    trace: DatasetTrace, batch_size: int,
                    tp: int, layers: int, seed: int = 0) -> float:
    """NeuPIMs-over-naive speedup under one configuration."""
    neupims = NeuPimsDevice(spec, config, tp=tp, layers_resident=layers)
    naive = naive_npu_pim_device(spec, tp=tp, layers_resident=layers,
                                 config=config)
    batch_a = warmed_batch(trace, batch_size, seed=seed)
    batch_b = warmed_batch(trace, batch_size, seed=seed)
    t_neu = iteration_throughput(neupims.iteration(batch_a), batch_size)
    t_naive = iteration_throughput(naive.iteration(batch_b), batch_size)
    return t_neu / t_naive


def sensitivity_sweep(spec: ModelSpec = GPT3_7B,
                      trace: DatasetTrace = SHAREGPT,
                      batch_size: int = 256, tp: int = 4, layers: int = 4,
                      knobs: Optional[List[KnobRange]] = None,
                      base_config: Optional[NeuPimsConfig] = None,
                      parallel: ParallelSpec = None
                      ) -> List[SensitivityPoint]:
    """Perturb each knob independently; return speedups per setting.

    ``parallel`` shards the (knob, scale) measurements across a
    :mod:`repro.exec` backend.  Knob ``apply`` functions run in the
    parent, so only picklable configuration dataclasses cross the
    process boundary; point order matches the serial loop exactly.
    """
    knobs = knobs if knobs is not None else DEFAULT_KNOBS
    base = base_config or NeuPimsConfig()
    settings = [(knob.name, scale, knob.apply(base, scale))
                for knob in knobs for scale in knob.scales]
    backend = resolve_backend(parallel)
    speedups = backend.starmap(
        measure_speedup,
        ((config, spec, trace, batch_size, tp, layers)
         for _, _, config in settings))
    return [SensitivityPoint(knob=name, scale=scale, speedup_vs_naive=speedup)
            for (name, scale, _), speedup in zip(settings, speedups)]


def conclusion_robust(points: Sequence[SensitivityPoint],
                      threshold: float = 1.0) -> bool:
    """Does 'NeuPIMs beats the naive integration' hold at every setting?"""
    return all(p.speedup_vs_naive > threshold for p in points)


def tornado_table(points: Sequence[SensitivityPoint]) -> Dict[str, Dict[float, float]]:
    """Group points by knob for table rendering."""
    table: Dict[str, Dict[float, float]] = {}
    for point in points:
        table.setdefault(point.knob, {})[point.scale] = point.speedup_vs_naive
    return table
