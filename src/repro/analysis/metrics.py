"""End-to-end measurement harness shared by examples and benchmarks.

Implements the paper's workload methodology (§8.1): for each
(model, dataset, batch size) point, sample ``num_batches`` warmed-up
batches, run one generation iteration per batch on every system under
test, and report mean throughput (tokens/second).  The harness is what
the Figure 12/13/14/15 and Table 4 benchmarks call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import NeuPimsConfig
from repro.core.device import IterationResult, NeuPimsDevice
from repro.model.spec import ModelSpec
from repro.serving.request import InferenceRequest
from repro.serving.trace import DatasetTrace, sample_batches

#: A device under test: maps a batch to an IterationResult.
DeviceRunner = Callable[[Sequence[InferenceRequest]], IterationResult]


@dataclass
class ThroughputMeasurement:
    """Throughput of one system on one workload point."""

    system: str
    model: str
    dataset: str
    batch_size: int
    tokens_per_second: float
    utilization: Dict[str, float] = field(default_factory=dict)

    def speedup_over(self, other: "ThroughputMeasurement") -> float:
        """Throughput ratio of this system over ``other``."""
        if other.tokens_per_second <= 0:
            return float("inf")
        return self.tokens_per_second / other.tokens_per_second


def iteration_throughput(result: IterationResult, batch_size: int,
                         clock_hz: float = 1e9) -> float:
    """Tokens/second of one iteration result (one token per request)."""
    if result.latency <= 0:
        return 0.0
    return batch_size / (result.latency / clock_hz)


def measure_device(
    name: str,
    runner: DeviceRunner,
    spec: ModelSpec,
    trace: DatasetTrace,
    batch_size: int,
    num_batches: int = 10,
    seed: int = 0,
    config: Optional[NeuPimsConfig] = None,
    clock_hz: float = 1e9,
) -> ThroughputMeasurement:
    """Measure mean throughput and utilization over sampled batches."""
    batches = sample_batches(trace, batch_size, num_batches, seed=seed)
    throughputs: List[float] = []
    busy_acc: Dict[str, float] = {}
    latency_acc = 0.0
    bytes_acc = 0.0
    for batch in batches:
        result = runner(batch)
        throughputs.append(iteration_throughput(result, len(batch), clock_hz))
        latency_acc += result.latency
        bytes_acc += result.external_bytes
        for key, value in result.busy.items():
            busy_acc[key] = busy_acc.get(key, 0.0) + value
    utilization = {
        key: min(1.0, value / latency_acc) if latency_acc > 0 else 0.0
        for key, value in busy_acc.items()
    }
    if config is not None and latency_acc > 0:
        # Bandwidth utilization is reported against *peak* external
        # bandwidth, matching the paper's Table 4 accounting.
        seconds = latency_acc / clock_hz
        utilization["bandwidth"] = min(
            1.0, bytes_acc / (config.org.total_bandwidth * seconds))
    return ThroughputMeasurement(
        system=name,
        model=spec.name,
        dataset=trace.name,
        batch_size=batch_size,
        tokens_per_second=sum(throughputs) / len(throughputs),
        utilization=utilization,
    )


def build_standard_devices(spec: ModelSpec, tp: int = 1,
                           layers_resident: Optional[int] = None
                           ) -> Dict[str, DeviceRunner]:
    """The four systems of Figure 12, as runners over one device shard."""
    from repro.baselines.gpu import GpuOnlyDevice
    from repro.baselines.npu_only import NpuOnlyDevice
    from repro.baselines.npu_pim import naive_npu_pim_device

    gpu = GpuOnlyDevice(spec, tp=tp, layers_resident=layers_resident)
    npu = NpuOnlyDevice(spec, tp=tp, layers_resident=layers_resident)
    naive = naive_npu_pim_device(spec, tp=tp, layers_resident=layers_resident)
    neupims = NeuPimsDevice(spec, NeuPimsConfig.neupims(), tp=tp,
                            layers_resident=layers_resident)
    return {
        "GPU-only": gpu.iteration,
        "NPU-only": npu.iteration,
        "NPU+PIM": naive.iteration,
        "NeuPIMs": neupims.iteration,
    }


#: Figure-12 display names and their scenario ``system`` values.
STANDARD_SYSTEMS = (
    ("GPU-only", "gpu-only"),
    ("NPU-only", "npu-only"),
    ("NPU+PIM", "npu-pim"),
    ("NeuPIMs", "neupims"),
)


def measurement_from_result(result, dataset: str = "",
                            batch_size: Optional[int] = None
                            ) -> ThroughputMeasurement:
    """Bridge a measurement-kind ``RunResult`` to the Figure-12 schema.

    ``RunResult`` does not carry the workload's dataset name, and for
    serving runs its ``max_batch_size`` is the scheduler cap rather
    than the workload batch — pass both explicitly when known.
    """
    display = {key: name for name, key in STANDARD_SYSTEMS}
    return ThroughputMeasurement(
        system=display.get(result.system, result.system),
        model=result.model,
        dataset=dataset,
        batch_size=int(result.max_batch_size if batch_size is None
                       else batch_size),
        tokens_per_second=result.tokens_per_second,
        utilization=dict(result.utilization),
    )


def compare_systems(
    spec: ModelSpec,
    trace: DatasetTrace,
    batch_size: int,
    tp: int = 1,
    layers_resident: Optional[int] = None,
    num_batches: int = 10,
    seed: int = 0,
    parallel=None,
) -> Dict[str, ThroughputMeasurement]:
    """Run the Figure 12 comparison for one workload point.

    The four systems are declared as :class:`~repro.api.ScenarioSpec`
    variants of one base scenario and fanned through
    :func:`~repro.api.run_scenarios` (``parallel`` shards them across a
    :mod:`repro.exec` backend); the measurements are identical to the
    legacy hand-wired ``measure_device`` loop.
    """
    from repro.api import ScenarioSpec, TrafficSpec, run_scenarios
    base = ScenarioSpec(
        model=spec, tp=tp, layers_resident=layers_resident,
        fidelity="analytic",
        # sample_schedule keeps the measure_device batches for any
        # num_batches, including 1.
        traffic=TrafficSpec.warmed(dataset=trace, batch_size=batch_size,
                                   num_batches=num_batches, seed=seed,
                                   sample_schedule=True))
    specs = [base.override(system=system) for _, system in STANDARD_SYSTEMS]
    results = run_scenarios(specs, parallel=parallel)
    return {
        name: measurement_from_result(result, dataset=trace.name,
                                      batch_size=batch_size)
        for (name, _), result in zip(STANDARD_SYSTEMS, results)
    }
