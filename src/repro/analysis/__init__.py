"""Analysis: measurement harness, area model, report formatting."""

from repro.analysis.ablation import (
    ablation_axes,
    ablation_scenario,
    evaluate_ablation_cell,
    run_ablation_grid,
)
from repro.analysis.area import (
    BankAreaModel,
    dual_row_buffer_area_overhead,
)
from repro.analysis.metrics import (
    STANDARD_SYSTEMS,
    ThroughputMeasurement,
    build_standard_devices,
    compare_systems,
    iteration_throughput,
    measure_device,
    measurement_from_result,
)
from repro.analysis.report import format_series, format_table, geomean, normalize

from repro.analysis.energy import EnergyParams, EnergyReport, iteration_energy
from repro.analysis.sweep import (SweepAxis, SweepResult, iter_points,
                                  pareto_front, run_sweep, scenario_sweep)
from repro.analysis.training import (
    inference_vs_training_pim_value,
    profile_training_step,
)

from repro.analysis.validate import CheckResult, validate, validate_all

__all__ = [
    "BankAreaModel",
    "STANDARD_SYSTEMS",
    "ablation_axes",
    "ablation_scenario",
    "evaluate_ablation_cell",
    "run_ablation_grid",
    "dual_row_buffer_area_overhead",
    "ThroughputMeasurement",
    "build_standard_devices",
    "compare_systems",
    "iteration_throughput",
    "measure_device",
    "measurement_from_result",
    "format_series",
    "format_table",
    "geomean",
    "normalize",
    "EnergyParams",
    "EnergyReport",
    "iteration_energy",
    "SweepAxis",
    "SweepResult",
    "iter_points",
    "pareto_front",
    "run_sweep",
    "scenario_sweep",
    "inference_vs_training_pim_value",
    "profile_training_step",
    "CheckResult",
    "validate",
    "validate_all",
]
