"""Parameter-sweep utilities for design-space exploration.

Generic cartesian-product sweeps with labelled axes, used by the extra
ablation benches and the design-space example.  Results collect into a
flat record list that :func:`repro.analysis.report.format_table` renders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import (Any, Callable, Dict, Iterable, List, Mapping,
                    Optional, Sequence)


@dataclass(frozen=True)
class SweepAxis:
    """One swept parameter."""

    name: str
    values: Sequence[Any]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("axis needs a name")
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")


@dataclass
class SweepResult:
    """Outcome records of a sweep."""

    axes: List[str]
    records: List[Dict[str, Any]] = field(default_factory=list)

    def column(self, name: str) -> List[Any]:
        """One column (axis or metric) across all records."""
        return [record[name] for record in self.records]

    def filter(self, **conditions: Any) -> "SweepResult":
        """Records matching all given axis values."""
        kept = [r for r in self.records
                if all(r.get(k) == v for k, v in conditions.items())]
        return SweepResult(axes=self.axes, records=kept)

    def best(self, metric: str, maximize: bool = True) -> Dict[str, Any]:
        """The record optimizing ``metric``."""
        if not self.records:
            raise ValueError("empty sweep")
        key = lambda r: r[metric]  # noqa: E731
        return max(self.records, key=key) if maximize \
            else min(self.records, key=key)

    def as_rows(self, columns: Sequence[str]) -> List[List[Any]]:
        """Records projected onto ``columns`` (for table rendering)."""
        return [[record[c] for c in columns] for record in self.records]


def run_sweep(axes: Iterable[SweepAxis],
              evaluate: Callable[..., Mapping[str, Any]],
              skip: Optional[Callable[..., bool]] = None
              ) -> SweepResult:
    """Evaluate ``evaluate(**point)`` over the cartesian product of axes.

    ``evaluate`` returns a mapping of metric name to value, merged with
    the axis values into one record.  ``skip`` filters invalid points
    (e.g. head counts not divisible by TP).
    """
    axes = list(axes)
    names = [axis.name for axis in axes]
    if len(set(names)) != len(names):
        raise ValueError("duplicate axis names")
    result = SweepResult(axes=names)
    for combo in product(*(axis.values for axis in axes)):
        point = dict(zip(names, combo))
        if skip is not None and skip(**point):
            continue
        metrics = evaluate(**point)
        overlap = set(point) & set(metrics)
        if overlap:
            raise ValueError(f"metrics shadow axes: {sorted(overlap)}")
        record = dict(point)
        record.update(metrics)
        result.records.append(record)
    return result


def pareto_front(result: SweepResult, objectives: Sequence[str],
                 maximize: Optional[Sequence[bool]] = None
                 ) -> List[Dict[str, Any]]:
    """Non-dominated records under the given objectives."""
    if maximize is None:
        maximize = [True] * len(objectives)
    if len(maximize) != len(objectives):
        raise ValueError("maximize flags must match objectives")

    def dominates(a: Mapping[str, Any], b: Mapping[str, Any]) -> bool:
        at_least_as_good = all(
            (a[o] >= b[o]) if up else (a[o] <= b[o])
            for o, up in zip(objectives, maximize))
        strictly_better = any(
            (a[o] > b[o]) if up else (a[o] < b[o])
            for o, up in zip(objectives, maximize))
        return at_least_as_good and strictly_better

    front = []
    for candidate in result.records:
        if not any(dominates(other, candidate)
                   for other in result.records if other is not candidate):
            front.append(candidate)
    return front
