"""Parameter-sweep utilities for design-space exploration.

Generic cartesian-product sweeps with labelled axes, used by the extra
ablation benches and the design-space example.  Results collect into a
flat record list that :func:`repro.analysis.report.format_table` renders.

Sweeps shard across workers through :mod:`repro.exec`: pass
``parallel=4`` (or any :data:`~repro.exec.backends.ParallelSpec`) to
:func:`run_sweep` and the grid is consumed lazily, dispatched in chunks
to a process pool, and merged deterministically — the records come back
in cartesian-product order either way.  For process backends the
``evaluate`` callable must be picklable (a module-level function or a
:func:`functools.partial` over one); ``skip`` runs in the parent and may
be any callable.

:func:`scenario_sweep` is the declarative variant: the grid derives
:class:`~repro.api.ScenarioSpec` overrides from a base spec and fans
them through :func:`~repro.api.run_scenarios`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Mapping,
                    Optional, Sequence)

from repro.exec.backends import ParallelSpec, resolve_backend
from repro.exec.task import TaskSpec


@dataclass(frozen=True)
class SweepAxis:
    """One swept parameter."""

    name: str
    values: Sequence[Any]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("axis needs a name")
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")


@dataclass
class SweepResult:
    """Outcome records of a sweep."""

    axes: List[str]
    records: List[Dict[str, Any]] = field(default_factory=list)

    def column(self, name: str) -> List[Any]:
        """One column (axis or metric) across all records."""
        return [record[name] for record in self.records]

    def filter(self, **conditions: Any) -> "SweepResult":
        """Records matching all given axis values.

        A record lacking a conditioned key does not match — absence is
        not the same as holding the value ``None``.
        """
        kept = [r for r in self.records
                if all(k in r and r[k] == v for k, v in conditions.items())]
        return SweepResult(axes=self.axes, records=kept)

    def best(self, metric: str, maximize: bool = True) -> Dict[str, Any]:
        """The record optimizing ``metric``."""
        if not self.records:
            raise ValueError("empty sweep")
        key = lambda r: r[metric]  # noqa: E731
        return max(self.records, key=key) if maximize \
            else min(self.records, key=key)

    def as_rows(self, columns: Sequence[str]) -> List[List[Any]]:
        """Records projected onto ``columns`` (for table rendering)."""
        return [[record[c] for c in columns] for record in self.records]


def iter_points(axes: Sequence[SweepAxis],
                skip: Optional[Callable[..., bool]] = None
                ) -> Iterator[Dict[str, Any]]:
    """Lazily yield the (unskipped) cartesian-product points of ``axes``."""
    names = [axis.name for axis in axes]
    for combo in product(*(axis.values for axis in axes)):
        point = dict(zip(names, combo))
        if skip is not None and skip(**point):
            continue
        yield point


def _sweep_task(evaluate: Callable[..., Mapping[str, Any]],
                point: Dict[str, Any]) -> Dict[str, Any]:
    """Evaluate one sweep point into a merged record (runs in workers)."""
    metrics = evaluate(**point)
    overlap = set(point) & set(metrics)
    if overlap:
        raise ValueError(f"metrics shadow axes: {sorted(overlap)}")
    record = dict(point)
    record.update(metrics)
    return record


def run_sweep(axes: Iterable[SweepAxis],
              evaluate: Callable[..., Mapping[str, Any]],
              skip: Optional[Callable[..., bool]] = None,
              parallel: ParallelSpec = None,
              chunk_size: int = 1,
              warmup: Optional[Callable[[], None]] = None
              ) -> SweepResult:
    """Evaluate ``evaluate(**point)`` over the cartesian product of axes.

    ``evaluate`` returns a mapping of metric name to value, merged with
    the axis values into one record.  ``skip`` filters invalid points
    (e.g. head counts not divisible by TP).  ``parallel`` selects an
    execution backend (worker count, spec string, or instance — see
    :func:`repro.exec.resolve_backend`); the grid streams lazily into
    the backend and records keep cartesian-product order regardless of
    which worker finished first.
    """
    axes = list(axes)
    names = [axis.name for axis in axes]
    if len(set(names)) != len(names):
        raise ValueError("duplicate axis names")
    backend = resolve_backend(parallel, chunk_size=chunk_size, warmup=warmup)
    tasks = (TaskSpec(_sweep_task, (evaluate, point))
             for point in iter_points(axes, skip))
    return SweepResult(axes=names, records=backend.run(tasks))


#: RunResult scalar fields scenario sweeps record by default.
DEFAULT_SCENARIO_METRICS = ("tokens_per_second", "mean_iteration_cycles")


def scenario_sweep(base: Any, axes: Iterable[SweepAxis],
                   metrics: Sequence[str] = DEFAULT_SCENARIO_METRICS,
                   skip: Optional[Callable[..., bool]] = None,
                   parallel: ParallelSpec = None,
                   chunk_size: int = 1) -> SweepResult:
    """Sweep :class:`~repro.api.ScenarioSpec` overrides over a grid.

    Each grid point is applied to ``base`` with
    :meth:`~repro.api.ScenarioSpec.override` (axis names may address
    top-level spec fields, traffic/serving fields, or feature flags),
    and the resulting specs fan across :func:`~repro.api.run_scenarios`
    — picklable by construction, so no ad-hoc task tuples.  ``metrics``
    names the scalar :class:`~repro.api.RunResult` fields merged into
    each record; records keep cartesian-product order under any
    backend.
    """
    from repro.api import run_scenarios
    axes = list(axes)
    names = [axis.name for axis in axes]
    if len(set(names)) != len(names):
        raise ValueError("duplicate axis names")
    overlap = set(names) & set(metrics)
    if overlap:
        raise ValueError(f"metrics shadow axes: {sorted(overlap)}")
    points = list(iter_points(axes, skip))
    specs = [base.override(**point) for point in points]
    results = run_scenarios(specs, parallel=parallel, chunk_size=chunk_size)
    records = []
    for point, result in zip(points, results):
        record = dict(point)
        record.update({name: getattr(result, name) for name in metrics})
        records.append(record)
    return SweepResult(axes=names, records=records)


def pareto_front(result: SweepResult, objectives: Sequence[str],
                 maximize: Optional[Sequence[bool]] = None
                 ) -> List[Dict[str, Any]]:
    """Non-dominated records under the given objectives."""
    if maximize is None:
        maximize = [True] * len(objectives)
    if len(maximize) != len(objectives):
        raise ValueError("maximize flags must match objectives")

    def dominates(a: Mapping[str, Any], b: Mapping[str, Any]) -> bool:
        at_least_as_good = all(
            (a[o] >= b[o]) if up else (a[o] <= b[o])
            for o, up in zip(objectives, maximize))
        strictly_better = any(
            (a[o] > b[o]) if up else (a[o] < b[o])
            for o, up in zip(objectives, maximize))
        return at_least_as_good and strictly_better

    front = []
    for candidate in result.records:
        if not any(dominates(other, candidate)
                   for other in result.records if other is not candidate):
            front.append(candidate)
    return front
