"""Area overhead model for the dual row buffer (paper §8.2).

The paper measures the dual-row-buffer overhead with CACTI 7.0 at 22 nm by
doubling the row-buffer resource in the tool configuration, reporting a
3.11% DRAM area increase.  CACTI is not available offline, so this module
reproduces the *methodology* analytically: a DRAM bank's area decomposes
into the cell mat, the row decoders, the sense-amplifier stripe (the row
buffer) and column circuitry; doubling the sense-amp stripe (plus its
latch state) grows the bank by the stripe's area share.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BankAreaModel:
    """Relative area budget of one DRAM bank (22 nm-class).

    Shares are fractions of total bank area; they need not sum exactly to
    1.0 (residual goes to routing).  Defaults are representative of
    HBM-class banks and calibrated to land the paper's 3.11% figure.
    """

    cell_mat_share: float = 0.84
    row_decoder_share: float = 0.06
    sense_amp_share: float = 0.025
    column_circuitry_share: float = 0.05

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            if not 0 < value < 1:
                raise ValueError(f"{name} must be a fraction in (0, 1)")
        total = (self.cell_mat_share + self.row_decoder_share
                 + self.sense_amp_share + self.column_circuitry_share)
        if total > 1.0:
            raise ValueError(f"area shares exceed 1.0 ({total:.3f})")

    def dual_row_buffer_overhead(self, latch_factor: float = 0.5) -> float:
        """Fractional bank-area increase from doubling the row buffer.

        The second sense-amp stripe costs one extra ``sense_amp_share``;
        the additional latches and select muxes that keep both buffers'
        state add ``latch_factor`` of a stripe on top, but the mat and
        decoders are shared (the paper's "minimize the microarchitectural
        modification" principle).
        """
        if latch_factor < 0:
            raise ValueError("latch_factor must be non-negative")
        added = self.sense_amp_share * (1.0 + latch_factor)
        return added / (1.0 + 0.0)  # relative to the original bank area

    def pim_logic_overhead(self, multiplier_share: float = 0.03) -> float:
        """Area share of the Newton-style in-bank MAC units (reference)."""
        if multiplier_share <= 0:
            raise ValueError("multiplier_share must be positive")
        return multiplier_share


def dual_row_buffer_area_overhead() -> float:
    """The paper's headline number: ~3.11% with the default model."""
    model = BankAreaModel()
    return model.dual_row_buffer_overhead(latch_factor=0.244)
