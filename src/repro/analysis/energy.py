"""Energy-per-token analysis combining power and throughput (Table 5).

The paper's power argument: NeuPIMs draws 1.8x the memory power but runs
2.4x faster, netting ~25% energy per token saved.  This module composes
the channel power model with the device throughput model to compute that
trade for arbitrary configurations, and adds an NPU energy estimate so
device-level energy comparisons are possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.device import IterationResult


@dataclass(frozen=True)
class EnergyParams:
    """Device-level energy constants.

    ``npu_idle_w`` / ``npu_active_w`` bracket the NPU package power;
    memory power comes per channel from the DRAM power model.
    """

    npu_idle_w: float = 60.0
    npu_active_w: float = 220.0
    channels: int = 32

    def __post_init__(self) -> None:
        if self.npu_idle_w < 0 or self.npu_active_w <= 0:
            raise ValueError("NPU power must be positive")
        if self.npu_active_w < self.npu_idle_w:
            raise ValueError("active power below idle power")
        if self.channels <= 0:
            raise ValueError("channels must be positive")


@dataclass
class EnergyReport:
    """Energy accounting of one iteration."""

    iteration_cycles: float
    tokens: int
    npu_energy_j: float
    memory_energy_j: float

    @property
    def total_energy_j(self) -> float:
        return self.npu_energy_j + self.memory_energy_j

    @property
    def energy_per_token_mj(self) -> float:
        if self.tokens <= 0:
            return 0.0
        return self.total_energy_j / self.tokens * 1e3

    @property
    def average_power_w(self) -> float:
        seconds = self.iteration_cycles * 1e-9
        if seconds <= 0:
            return 0.0
        return self.total_energy_j / seconds


def iteration_energy(result: IterationResult, tokens: int,
                     memory_power_mw_per_channel: float,
                     params: Optional[EnergyParams] = None) -> EnergyReport:
    """Energy of one iteration from its utilization profile.

    NPU energy interpolates idle/active power by compute utilization;
    memory energy uses the measured per-channel average power (from
    :class:`repro.dram.power.PowerModel`) over the iteration.
    """
    if tokens <= 0:
        raise ValueError("tokens must be positive")
    if memory_power_mw_per_channel <= 0:
        raise ValueError("memory power must be positive")
    params = params or EnergyParams()
    seconds = result.latency * 1e-9
    npu_util = result.utilization("npu")
    npu_power = (params.npu_idle_w
                 + (params.npu_active_w - params.npu_idle_w) * npu_util)
    memory_power = memory_power_mw_per_channel * 1e-3 * params.channels
    return EnergyReport(
        iteration_cycles=result.latency,
        tokens=tokens,
        npu_energy_j=npu_power * seconds,
        memory_energy_j=memory_power * seconds,
    )


def energy_comparison(results: Dict[str, IterationResult],
                      tokens: Dict[str, int],
                      memory_power_mw: Dict[str, float],
                      params: Optional[EnergyParams] = None
                      ) -> Dict[str, EnergyReport]:
    """Energy reports for multiple systems over the same workload."""
    missing = set(results) - set(tokens) | set(results) - set(memory_power_mw)
    if missing:
        raise ValueError(f"missing inputs for systems: {sorted(missing)}")
    return {
        name: iteration_energy(result, tokens[name],
                               memory_power_mw[name], params)
        for name, result in results.items()
    }
