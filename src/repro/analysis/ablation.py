"""The extra-ablation grid: feature-flag crosses beyond Figure 13.

Figure 13 ablates one NeuPIMs technique at a time; this grid crosses the
three technique flags with batch size, which exposes their interactions
(e.g. sub-batch interleaving buys little in blocked mode, greedy bin
packing matters more at large batch).  The grid doubles as the canonical
workload for the sharded execution subsystem: every cell is a pure
function of picklable axis values, so :func:`run_ablation_grid` shards
record-for-record identically across :mod:`repro.exec` backends
(``benchmarks/test_perf_regression.py`` pins the parallel-vs-serial
equality and tracks the worker scaling).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.sweep import SweepAxis, SweepResult, run_sweep
from repro.core.config import NeuPimsConfig
from repro.exec.backends import ParallelSpec
from repro.model.spec import (GPT3_7B, GPT3_13B, GPT3_30B, GPT3_175B,
                              ModelSpec)

#: Specs addressable by axis value (axis values stay plain strings so
#: sweep records print/compare cleanly and pickle small).
SPECS: Dict[str, ModelSpec] = {
    spec.name: spec for spec in (GPT3_7B, GPT3_13B, GPT3_30B, GPT3_175B)
}


def ablation_axes(batch_sizes=(64, 256),
                  datasets=("sharegpt",)) -> List[SweepAxis]:
    """The default extra-ablation grid axes."""
    return [
        SweepAxis("dual_row_buffer", [False, True]),
        SweepAxis("sub_batch_interleaving", [False, True]),
        SweepAxis("greedy_binpack", [False, True]),
        SweepAxis("batch_size", list(batch_sizes)),
        SweepAxis("dataset", list(datasets)),
    ]


def ablation_scenario(dual_row_buffer: bool,
                      sub_batch_interleaving: bool,
                      greedy_binpack: bool,
                      batch_size: int,
                      dataset: str = "sharegpt",
                      spec_name: str = "gpt3-7b",
                      tp: int = 4,
                      layers_resident: int = 8,
                      num_batches: int = 3,
                      seed: int = 0):
    """The :class:`~repro.api.ScenarioSpec` describing one grid cell."""
    from repro.api import ScenarioSpec, TrafficSpec
    config = NeuPimsConfig.ablation(
        dual_row_buffer=dual_row_buffer,
        sub_batch_interleaving=sub_batch_interleaving,
        greedy_binpack=greedy_binpack,
    )
    # sample_schedule keeps the grid's `sample_batches` seed schedule
    # for any num_batches, so every cell stays bit-identical to the
    # legacy loop.
    return ScenarioSpec(
        model=spec_name, system="neupims", config=config, tp=tp,
        layers_resident=layers_resident, fidelity="analytic",
        traffic=TrafficSpec.warmed(dataset=dataset, batch_size=batch_size,
                                   num_batches=num_batches, seed=seed,
                                   sample_schedule=True))


def evaluate_ablation_cell(dual_row_buffer: bool,
                           sub_batch_interleaving: bool,
                           greedy_binpack: bool,
                           batch_size: int,
                           dataset: str = "sharegpt",
                           spec_name: str = "gpt3-7b",
                           tp: int = 4,
                           layers_resident: int = 8,
                           num_batches: int = 3,
                           seed: int = 0) -> Dict[str, float]:
    """One grid cell: mean iteration throughput under the flag setting.

    Module-level and driven entirely by picklable arguments, so it can be
    dispatched to process-pool workers (including under ``spawn``).  The
    cell is declared as a :func:`ablation_scenario` spec and executed by
    a :class:`~repro.api.Session`; the numbers are identical to the
    legacy hand-wired device loop.
    """
    from repro.api import run_scenario
    result = run_scenario(ablation_scenario(
        dual_row_buffer, sub_batch_interleaving, greedy_binpack, batch_size,
        dataset=dataset, spec_name=spec_name, tp=tp,
        layers_resident=layers_resident, num_batches=num_batches, seed=seed))
    return {
        "tokens_per_second": result.tokens_per_second,
        "iteration_cycles": result.mean_iteration_cycles,
    }


def run_ablation_grid(axes: Optional[List[SweepAxis]] = None,
                      parallel: ParallelSpec = None,
                      num_batches: int = 3,
                      seed: int = 0) -> SweepResult:
    """Sweep the extra-ablation grid, optionally sharded across workers."""
    import functools
    evaluate = functools.partial(evaluate_ablation_cell,
                                 num_batches=num_batches, seed=seed)
    return run_sweep(axes if axes is not None else ablation_axes(),
                     evaluate, parallel=parallel)
