"""The extra-ablation grid: feature-flag crosses beyond Figure 13.

Figure 13 ablates one NeuPIMs technique at a time; this grid crosses the
three technique flags with batch size, which exposes their interactions
(e.g. sub-batch interleaving buys little in blocked mode, greedy bin
packing matters more at large batch).  The grid doubles as the canonical
workload for the sharded execution subsystem: every cell is a pure
function of picklable axis values, so :func:`run_ablation_grid` shards
record-for-record identically across :mod:`repro.exec` backends
(``benchmarks/test_perf_regression.py`` pins the parallel-vs-serial
equality and tracks the worker scaling).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.metrics import iteration_throughput
from repro.analysis.sweep import SweepAxis, SweepResult, run_sweep
from repro.core.config import NeuPimsConfig
from repro.core.device import NeuPimsDevice
from repro.exec.backends import ParallelSpec
from repro.model.spec import (GPT3_7B, GPT3_13B, GPT3_30B, GPT3_175B,
                              ModelSpec)
from repro.serving.trace import get_dataset, sample_batches

#: Specs addressable by axis value (axis values stay plain strings so
#: sweep records print/compare cleanly and pickle small).
SPECS: Dict[str, ModelSpec] = {
    spec.name: spec for spec in (GPT3_7B, GPT3_13B, GPT3_30B, GPT3_175B)
}


def ablation_axes(batch_sizes=(64, 256),
                  datasets=("sharegpt",)) -> List[SweepAxis]:
    """The default extra-ablation grid axes."""
    return [
        SweepAxis("dual_row_buffer", [False, True]),
        SweepAxis("sub_batch_interleaving", [False, True]),
        SweepAxis("greedy_binpack", [False, True]),
        SweepAxis("batch_size", list(batch_sizes)),
        SweepAxis("dataset", list(datasets)),
    ]


def evaluate_ablation_cell(dual_row_buffer: bool,
                           sub_batch_interleaving: bool,
                           greedy_binpack: bool,
                           batch_size: int,
                           dataset: str = "sharegpt",
                           spec_name: str = "gpt3-7b",
                           tp: int = 4,
                           layers_resident: int = 8,
                           num_batches: int = 3,
                           seed: int = 0) -> Dict[str, float]:
    """One grid cell: mean iteration throughput under the flag setting.

    Module-level and driven entirely by picklable arguments, so it can be
    dispatched to process-pool workers (including under ``spawn``).
    """
    spec = SPECS[spec_name]
    config = NeuPimsConfig(
        dual_row_buffer=dual_row_buffer,
        # The composite ISA needs the NeuPIMs bank; the paper enables the
        # two together, and so does this grid.
        composite_isa=dual_row_buffer,
        sub_batch_interleaving=sub_batch_interleaving,
        greedy_binpack=greedy_binpack,
    )
    device = NeuPimsDevice(spec, config, tp=tp,
                           layers_resident=layers_resident)
    trace = get_dataset(dataset)
    batches = sample_batches(trace, batch_size, num_batches, seed=seed)
    throughputs = []
    latencies = []
    for batch in batches:
        result = device.iteration(batch)
        throughputs.append(iteration_throughput(result, len(batch)))
        latencies.append(result.latency)
    return {
        "tokens_per_second": sum(throughputs) / len(throughputs),
        "iteration_cycles": sum(latencies) / len(latencies),
    }


def run_ablation_grid(axes: Optional[List[SweepAxis]] = None,
                      parallel: ParallelSpec = None,
                      num_batches: int = 3,
                      seed: int = 0) -> SweepResult:
    """Sweep the extra-ablation grid, optionally sharded across workers."""
    import functools
    evaluate = functools.partial(evaluate_ablation_cell,
                                 num_batches=num_batches, seed=seed)
    return run_sweep(axes if axes is not None else ablation_axes(),
                     evaluate, parallel=parallel)
