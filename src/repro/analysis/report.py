"""Plain-text table/series formatting for experiment outputs.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that formatting consistent and easy to
diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned plain-text table.

    An empty ``rows`` iterable renders the header and rule only — a
    filtered-out sweep or an empty pool is a legitimate table, not an
    error.  Rows whose width differs from the headers still raise.
    """
    if not headers:
        raise ValueError("format_table needs at least one header")
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def format_series(name: str, points: Mapping[object, float],
                  unit: str = "") -> str:
    """Render a named series (one figure line) as ``x -> y`` pairs."""
    parts = [f"{name}:"]
    for x, y in points.items():
        suffix = f" {unit}" if unit else ""
        parts.append(f"  {x} -> {_fmt(y)}{suffix}")
    return "\n".join(parts)


def normalize(points: Mapping[object, float],
              baseline_key: object) -> Dict[object, float]:
    """Normalize a series to one of its entries (speedup plots)."""
    base = points[baseline_key]
    if base == 0:
        raise ValueError("baseline value is zero")
    return {k: v / base for k, v in points.items()}


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (speedup aggregation)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))
