"""Training-efficiency analysis (paper §9 discussion).

The paper argues NeuPIMs is a poor fit for training: training uses
fixed-length sequences, so *everything* is GEMM-shaped — there are no
bandwidth-bound GEMVs for the PIM to accelerate, and the PIM silicon
idles.  This module quantifies that: the PIM-attributable fraction of a
training step's work, and the speedup ceiling NeuPIMs has over an
NPU-only device for training (which Amdahl's law pins near 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import NeuPimsConfig
from repro.model.layers import decoder_block_operators
from repro.model.spec import ModelSpec
from repro.npu.chip import NpuChip


@dataclass(frozen=True)
class TrainingStepProfile:
    """Work decomposition of one training step (forward + backward)."""

    gemm_flops: float
    gemv_flops: float
    total_cycles_npu_only: float
    pim_accelerable_cycles: float

    @property
    def gemv_fraction(self) -> float:
        total = self.gemm_flops + self.gemv_flops
        return self.gemv_flops / total if total else 0.0

    @property
    def neupims_speedup_ceiling(self) -> float:
        """Amdahl bound: even free GEMVs barely help a GEMM-only step."""
        if self.total_cycles_npu_only <= 0:
            return 1.0
        remaining = self.total_cycles_npu_only - self.pim_accelerable_cycles
        return self.total_cycles_npu_only / max(remaining, 1e-9)


def profile_training_step(spec: ModelSpec, batch_size: int, seq_len: int,
                          tp: int = 1,
                          config: Optional[NeuPimsConfig] = None
                          ) -> TrainingStepProfile:
    """Profile one training step of ``batch_size`` fixed-length sequences.

    Training processes whole sequences like the summarization phase
    (attention between full matrices -> GEMM), and the backward pass
    roughly doubles the forward work (2x for dgrad + wgrad combined is
    modelled as a 3x total-of-forward multiplier, the standard estimate).
    """
    if batch_size <= 0 or seq_len <= 0:
        raise ValueError("batch_size and seq_len must be positive")
    config = config or NeuPimsConfig()
    npu = NpuChip(config.npu, config.org, config.bandwidth_derate)

    ops = decoder_block_operators(spec, [seq_len] * batch_size, tp=tp,
                                  phase="summarization")
    backward_multiplier = 3.0
    gemm_flops = sum(op.flops for op in ops) * backward_multiplier \
        * spec.num_layers
    # No GEMVs in training: fixed-shape attention is matrix-matrix.
    gemv_flops = 0.0

    total_cycles = 0.0
    for op in ops:
        compute = op.flops / (2 * npu.config.systolic.macs_per_cycle
                              * npu.config.num_systolic_arrays)
        memory = npu._bytes_cycles(op.bytes_moved)
        total_cycles += max(compute, memory)
    total_cycles *= backward_multiplier * spec.num_layers

    return TrainingStepProfile(
        gemm_flops=gemm_flops,
        gemv_flops=gemv_flops,
        total_cycles_npu_only=total_cycles,
        pim_accelerable_cycles=0.0,
    )


def inference_vs_training_pim_value(spec: ModelSpec, batch_size: int,
                                    seq_len: int,
                                    config: Optional[NeuPimsConfig] = None
                                    ) -> dict:
    """Contrast the PIM-accelerable share of inference vs training.

    Returns the fraction of NPU-only execution time attributable to
    bandwidth-bound MHA GEMVs in each regime — large for generation-phase
    inference, zero for training (§9's argument in numbers).
    """
    config = config or NeuPimsConfig()
    npu = NpuChip(config.npu, config.org, config.bandwidth_derate)

    gen_ops = decoder_block_operators(spec, [seq_len] * batch_size,
                                      phase="generation")
    gemv_cycles = 0.0
    total = 0.0
    for op in gen_ops:
        compute = op.flops / (2 * npu.config.systolic.macs_per_cycle
                              * npu.config.num_systolic_arrays)
        memory = npu._bytes_cycles(op.bytes_moved)
        cycles = max(compute, memory)
        total += cycles
        if op.name.startswith(("logit", "attend")):
            gemv_cycles += cycles
    inference_share = gemv_cycles / total if total else 0.0

    training = profile_training_step(spec, batch_size, seq_len,
                                     config=config)
    return {
        "inference_gemv_time_share": inference_share,
        "training_gemv_time_share": training.gemv_fraction,
        "training_speedup_ceiling": training.neupims_speedup_ceiling,
    }
