"""Fast shape validation of every reproduced claim.

A lightweight mirror of the benchmark harness: each check evaluates one
paper claim at reduced scale and returns pass/fail plus the measured
value, so `examples/reproduce_paper.py` (and CI) can confirm the whole
reproduction in seconds without pytest-benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.analysis.area import dual_row_buffer_area_overhead
from repro.analysis.metrics import compare_systems
from repro.api import ScenarioSpec, TrafficSpec, run_scenario
from repro.core.config import NeuPimsConfig
from repro.core.overlap import HeadPipelineModel
from repro.model.roofline import roofline_points
from repro.model.spec import GPT3_7B, GPT3_13B
from repro.pim.gemv import GemvOp, command_count
from repro.dram.timing import HbmOrganization
from repro.serving.trace import SHAREGPT


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one claim validation."""

    name: str
    claim: str
    measured: str
    passed: bool


def _check_fig4() -> CheckResult:
    points = roofline_points(GPT3_13B, 64, 256)
    mha = next(p for p in points
               if p.phase == "generation" and "Logit" in p.label)
    gemm = next(p for p in points
                if p.phase == "summarization" and "QKV" in p.label)
    ok = mha.bound == "memory" and gemm.bound == "compute"
    return CheckResult(
        "fig4", "generation MHA memory-bound, summarization compute-bound",
        f"MHA {mha.arithmetic_intensity:.1f} FLOP/B ({mha.bound}), "
        f"GEMM {gemm.arithmetic_intensity:.0f} FLOP/B ({gemm.bound})", ok)


def _check_fig9() -> CheckResult:
    op = GemvOp(rows=384 * 32, cols=128)
    org = HbmOrganization()
    fine = command_count(op, org, composite=False)
    comp = command_count(op, org, composite=True)
    return CheckResult(
        "fig9", "composite ISA slashes C/A command count",
        f"{fine} -> {comp} commands", comp * 20 < fine)


def _check_fig12() -> CheckResult:
    results = compare_systems(GPT3_7B, SHAREGPT, 256, tp=4,
                              layers_resident=2, num_batches=2)
    neupims = results["NeuPIMs"].tokens_per_second
    naive = results["NPU+PIM"].tokens_per_second
    npu = results["NPU-only"].tokens_per_second
    ok = neupims > naive > 0.9 * npu
    return CheckResult(
        "fig12", "NeuPIMs > NPU+PIM >= NPU-only",
        f"{neupims / npu:.2f}x / {naive / npu:.2f}x / 1.00x", ok)


def _check_tab4() -> CheckResult:
    results = compare_systems(GPT3_7B, SHAREGPT, 256, tp=4,
                              layers_resident=2, num_batches=2)
    ok = (results["NPU-only"].utilization["npu"]
          < results["NPU+PIM"].utilization["npu"]
          < results["NeuPIMs"].utilization["npu"])
    chain = " < ".join(
        f"{results[s].utilization['npu']:.0%}"
        for s in ("NPU-only", "NPU+PIM", "NeuPIMs"))
    return CheckResult("tab4", "NPU utilization rises per technique",
                       chain, ok)


def _check_fig13() -> CheckResult:
    base_spec = ScenarioSpec(
        model="gpt3-7b", tp=4, layers_resident=2, fidelity="analytic",
        traffic=TrafficSpec.warmed(batch_size=256, num_batches=2, seed=0))

    def throughput(**flags):
        # Figure 13 stacks techniques from the naive starting point.
        spec = base_spec.override(config=NeuPimsConfig.ablation(**flags))
        return run_scenario(spec).tokens_per_second
    base = throughput()
    drb = throughput(dual_row_buffer=True)
    full = throughput(dual_row_buffer=True, greedy_binpack=True,
                      sub_batch_interleaving=True)
    ok = drb > base and full > drb
    return CheckResult("fig13", "DRB then SBI stack gains at B=256",
                       f"1.00 -> {drb / base:.2f} -> {full / base:.2f}", ok)


def _check_fig14() -> CheckResult:
    base = ScenarioSpec(model="gpt3-7b", fidelity="analytic",
                        traffic=TrafficSpec.warmed(batch_size=256, seed=0))
    t_tp = run_scenario(base.override(tp=4, pp=1)).tokens_per_second
    t_pp = run_scenario(base.override(tp=2, pp=2)).tokens_per_second
    return CheckResult("fig14", "TP-heavy beats PP-heavy at 4 devices",
                       f"{t_tp / t_pp:.2f}x", t_tp > t_pp)


def _check_fig15() -> CheckResult:
    base = ScenarioSpec(model="gpt3-7b", tp=1, layers_resident=2,
                        fidelity="analytic",
                        traffic=TrafficSpec.warmed(batch_size=128, seed=0))
    neupims = run_scenario(base.override(system="neupims"))
    transpim = run_scenario(base.override(system="transpim"))
    speedup = transpim.mean_iteration_cycles / neupims.mean_iteration_cycles
    return CheckResult("fig15", "order-of-magnitude gap over TransPIM",
                       f"{speedup:.0f}x", speedup > 30)


def _check_fig10() -> CheckResult:
    speedup = HeadPipelineModel(GPT3_7B).overlap_speedup(512)
    return CheckResult("fig10", "head-granularity overlap speeds up MHA",
                       f"{speedup:.2f}x", speedup > 1.1)


def _check_area() -> CheckResult:
    overhead = dual_row_buffer_area_overhead()
    return CheckResult("area", "dual row buffer ~3.11% bank area",
                       f"{overhead:.2%}", 0.02 < overhead < 0.05)


_CHECKS: Dict[str, Callable[[], CheckResult]] = {
    "fig4": _check_fig4,
    "fig9": _check_fig9,
    "fig10": _check_fig10,
    "fig12": _check_fig12,
    "tab4": _check_tab4,
    "fig13": _check_fig13,
    "fig14": _check_fig14,
    "fig15": _check_fig15,
    "area": _check_area,
}


def validate_all() -> List[CheckResult]:
    """Run every claim check; returns the results in a stable order."""
    return [check() for _, check in sorted(_CHECKS.items())]


def validate(name: str) -> CheckResult:
    """Run one claim check by name."""
    if name not in _CHECKS:
        raise KeyError(f"unknown check {name!r}; known: {sorted(_CHECKS)}")
    return _CHECKS[name]()
