"""Functional (numerical) simulation of the Newton-style PIM GEMV.

The timing models elsewhere in :mod:`repro.pim` answer *how long* a GEMV
takes; this module answers *what it computes*, executing the in-bank
dataflow element-for-element:

1. the operand vector is staged into the channel's global vector buffer
   page by page (``GWRITE``);
2. matrix rows are interleaved row-wise across the channel's banks
   (§6.3's key-cache layout);
3. each dot-product wave opens one page per bank and MACs it against the
   matching slice of the global buffer, accumulating per bank;
4. ``RDRESULT`` drains the per-bank accumulators in row order.

The functional model mirrors the wave/tile structure used by the latency
models (same bank interleaving, same page granularity), so the test suite
can assert that the dataflow the paper schedules actually computes the
GEMV — including fp16 storage effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import List, Optional

import numpy as np

from repro.dram.timing import HbmOrganization


@dataclass
class FunctionalBank:
    """One bank's slice of the matrix operand plus its accumulators."""

    index: int
    #: rows assigned to this bank, in assignment order: (row_index, data)
    rows: List = field(default_factory=list)

    def add_row(self, row_index: int, data: np.ndarray) -> None:
        """Append one matrix row (in assignment order) to this bank."""
        self.rows.append((row_index, data))


class FunctionalPimChannel:
    """Numerically executes GEMVs with the Newton bank dataflow.

    Parameters
    ----------
    org:
        HBM organization (bank count and page size drive the layout).
    dtype:
        Storage dtype inside the banks; fp16 by default, matching the
        paper's KV-cache precision.  Accumulation is fp32, as in Newton's
        adder tree.
    """

    def __init__(self, org: Optional[HbmOrganization] = None,
                 dtype: np.dtype = np.float16) -> None:
        self.org = org or HbmOrganization()
        self.dtype = np.dtype(dtype)
        self.elements_per_page = self.org.elements_per_page(
            self.dtype.itemsize)
        self.banks = [FunctionalBank(i)
                      for i in range(self.org.banks_per_channel)]
        self.global_buffer: Optional[np.ndarray] = None
        self.wave_count = 0

    # ------------------------------------------------------------------

    def load_matrix(self, matrix: np.ndarray) -> None:
        """Interleave matrix rows across banks (row i -> bank i % banks)."""
        if matrix.ndim != 2:
            raise ValueError("matrix must be 2-D")
        for bank in self.banks:
            bank.rows.clear()
        stored = matrix.astype(self.dtype)
        for row_index in range(stored.shape[0]):
            bank = self.banks[row_index % len(self.banks)]
            bank.add_row(row_index, stored[row_index])

    def gwrite(self, vector: np.ndarray) -> int:
        """Stage the operand vector; returns the number of GWRITE pages."""
        if vector.ndim != 1:
            raise ValueError("vector must be 1-D")
        self.global_buffer = vector.astype(self.dtype)
        return ceil(vector.shape[0] / self.elements_per_page)

    def gemv(self, matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
        """Execute a full GEMV through the bank dataflow.

        Returns the result in row order, accumulated in fp32.
        """
        if matrix.shape[1] != vector.shape[0]:
            raise ValueError(
                f"shape mismatch: {matrix.shape} x {vector.shape}")
        self.load_matrix(matrix)
        self.gwrite(vector)
        assert self.global_buffer is not None
        self.wave_count = 0

        results = np.zeros(matrix.shape[0], dtype=np.float32)
        cols = matrix.shape[1]
        col_pages = ceil(cols / self.elements_per_page)
        max_rows_per_bank = max(len(b.rows) for b in self.banks)

        for row_round in range(max_rows_per_bank):
            for page in range(col_pages):
                lo = page * self.elements_per_page
                hi = min(cols, lo + self.elements_per_page)
                vec_slice = self.global_buffer[lo:hi].astype(np.float32)
                # One wave: every bank MACs its open page in parallel.
                self.wave_count += 1
                for bank in self.banks:
                    if row_round >= len(bank.rows):
                        continue
                    row_index, data = bank.rows[row_round]
                    page_slice = data[lo:hi].astype(np.float32)
                    results[row_index] += float(page_slice @ vec_slice)
        return results

    # ------------------------------------------------------------------

    def mha_logit(self, keys: np.ndarray, query: np.ndarray) -> np.ndarray:
        """Logit GEMV: ``K q`` with K cached ``[seq, head_dim]`` per head."""
        return self.gemv(keys, query)

    def mha_attend(self, values: np.ndarray,
                   probs: np.ndarray) -> np.ndarray:
        """Attend GEMV: ``V^T p`` with V cached ``[seq, head_dim]``."""
        return self.gemv(values.T.copy(), probs)


def reference_attention(keys: np.ndarray, values: np.ndarray,
                        query: np.ndarray,
                        scale: Optional[float] = None
                        ) -> np.ndarray:
    """Single-head attention reference in fp32 (for validation)."""
    if scale is None:
        scale = 1.0 / np.sqrt(query.shape[0])
    logits = keys.astype(np.float32) @ query.astype(np.float32) * scale
    probs = np.exp(logits - logits.max())
    probs /= probs.sum()
    return values.astype(np.float32).T @ probs


def pim_attention(keys: np.ndarray, values: np.ndarray, query: np.ndarray,
                  org: Optional[HbmOrganization] = None,
                  scale: Optional[float] = None
                  ) -> np.ndarray:
    """Single-head attention through the PIM dataflow + NPU softmax.

    The logit and attend GEMVs run in the (functional) PIM channel; the
    softmax runs at fp32 on the host side, matching the paper's split
    (GEMVs on PIM, softmax on the NPU vector units).
    """
    channel = FunctionalPimChannel(org)
    if scale is None:
        scale = 1.0 / np.sqrt(query.shape[0])
    logits = channel.mha_logit(keys, query) * scale
    probs = np.exp(logits - logits.max())
    probs /= probs.sum()
    return channel.mha_attend(values, probs)
