"""GEMV operation descriptors and PIM command-stream builders.

Two command encodings are produced for the same logical GEMV, matching
Figure 9 of the paper:

* :func:`fine_grained_stream` — the baseline Newton encoding: one
  ``PIM_GWRITE``, then per wave a ``PIM_ACTIVATION`` per 4-bank group, one
  ``PIM_DOTPRODUCT``, and a trailing ``PIM_RDRESULT`` — heavy C/A traffic.
* :func:`composite_stream` — the NeuPIMs encoding: ``PIM_HEADER`` +
  ``PIM_GWRITE`` + one ``PIM_GEMV(k)`` + ``PIM_PRECHARGE`` — constant
  command count regardless of ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import List, Tuple

from repro.dram.commands import Command, CommandType, ca_bus_cycles
from repro.dram.timing import HbmOrganization


@dataclass(frozen=True)
class GemvOp:
    """One GEMV to run on a PIM channel.

    Attributes
    ----------
    rows:
        Matrix rows (dot products to perform).
    cols:
        Matrix columns (elements per dot product).
    tag:
        Operation label for stats (e.g. ``"logit[3]"``).
    """

    rows: int
    cols: int
    tag: str = ""

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError(f"GEMV dims must be positive: {self}")

    def waves(self, org: HbmOrganization, dtype_bytes: int = 2) -> int:
        """All-bank dot-product waves needed for this GEMV.

        Each wave MACs one open page per bank: ``banks`` rows at a time,
        ``page`` elements of the column dimension at a time.
        """
        elements_per_page = org.elements_per_page(dtype_bytes)
        row_rounds = ceil(self.rows / org.banks_per_channel)
        col_rounds = ceil(self.cols / elements_per_page)
        return row_rounds * col_rounds

    def gwrites(self, org: HbmOrganization, dtype_bytes: int = 2) -> int:
        """GWRITE commands to stage the operand vector."""
        return ceil(self.cols / org.elements_per_page(dtype_bytes))


def fine_grained_stream(op: GemvOp, org: HbmOrganization,
                        dtype_bytes: int = 2, base_row: int = 0) -> List[Command]:
    """Baseline Newton command stream for one GEMV.

    Returns the full ``GWRITE / (ACT4* DOTPRODUCT)* / RDRESULT`` sequence.
    Row addresses cycle through ``base_row + wave`` — the actual addresses
    do not affect timing provided they differ per wave (row misses).
    """
    commands: List[Command] = [
        Command(CommandType.PIM_GWRITE, bank=0, row=base_row + 10_000, meta=op.tag)
        for _ in range(op.gwrites(org, dtype_bytes))
    ]
    groups = [
        tuple(range(g * org.banks_per_group, (g + 1) * org.banks_per_group))
        for g in range(org.bank_groups)
    ]
    for wave in range(op.waves(org, dtype_bytes)):
        row = base_row + wave
        for group in groups:
            commands.append(
                Command(CommandType.PIM_ACTIVATION, banks=group, row=row,
                        meta=op.tag)
            )
        commands.append(Command(CommandType.PIM_DOTPRODUCT, meta=op.tag))
        commands.append(Command(CommandType.PIM_PRECHARGE, meta=op.tag))
    commands.append(Command(CommandType.PIM_RDRESULT, meta=op.tag))
    return commands


def composite_stream(op: GemvOp, org: HbmOrganization,
                     dtype_bytes: int = 2, base_row: int = 0) -> List[Command]:
    """NeuPIMs composite command stream for one GEMV.

    ``PIM_HEADER`` announces the dimensionality (wave count) so the memory
    controller can schedule around refresh; ``PIM_GEMV`` performs all waves
    and the result readout; ``PIM_PRECHARGE`` releases the PIM row buffers.
    """
    waves = op.waves(org, dtype_bytes)
    commands: List[Command] = [
        Command(CommandType.PIM_HEADER, k=waves, meta=op.tag)
    ]
    commands.extend(
        Command(CommandType.PIM_GWRITE, bank=0, row=base_row + 10_000, meta=op.tag)
        for _ in range(op.gwrites(org, dtype_bytes))
    )
    commands.append(Command(CommandType.PIM_GEMV, k=waves, meta=op.tag))
    commands.append(Command(CommandType.PIM_PRECHARGE, meta=op.tag))
    return commands


def command_count(op: GemvOp, org: HbmOrganization, composite: bool,
                  dtype_bytes: int = 2) -> int:
    """Number of C/A-bus commands for the chosen encoding (Figure 9)."""
    if composite:
        return len(composite_stream(op, org, dtype_bytes))
    return len(fine_grained_stream(op, org, dtype_bytes))


def ca_bus_cost(op: GemvOp, org: HbmOrganization, composite: bool,
                dtype_bytes: int = 2) -> int:
    """Total C/A-bus busy cycles of one GEMV, computed arithmetically.

    Prices the exact command composition of the two stream builders
    through :func:`repro.dram.commands.ca_bus_cycles` without
    materializing the streams — the analytic tier's prediction for the
    ``dram.ca_busy_cycles`` counter (refresh-driven ``REF`` commands and
    activation replays are deliberately excluded; they are the genuine
    cross-tier drift the refutation harness measures).
    """
    waves = op.waves(org, dtype_bytes)
    gwrites = op.gwrites(org, dtype_bytes)
    cost = gwrites * ca_bus_cycles(CommandType.PIM_GWRITE)
    if composite:
        return cost + (ca_bus_cycles(CommandType.PIM_HEADER)
                       + ca_bus_cycles(CommandType.PIM_GEMV)
                       + ca_bus_cycles(CommandType.PIM_PRECHARGE))
    per_wave = (org.bank_groups * ca_bus_cycles(CommandType.PIM_ACTIVATION)
                + ca_bus_cycles(CommandType.PIM_DOTPRODUCT)
                + ca_bus_cycles(CommandType.PIM_PRECHARGE))
    return cost + waves * per_wave + ca_bus_cycles(CommandType.PIM_RDRESULT)


def mha_gemv_ops(num_heads: int, head_dim: int, seq_len: int,
                 tag: str = "") -> Tuple[GemvOp, GemvOp]:
    """The logit and attend GEMVs of one request's MHA (§6.3 layout).

    Single source of the MHA GEMV geometry: the cycle tier
    (:meth:`repro.pim.engine.PimChannelEngine.mha_ops`), Algorithm 1's
    estimator (:meth:`repro.core.estimator.MhaLatencyEstimator.mha_gemv_ops`)
    and the analytic counter model all lower a request's attention to
    these two shapes, so cross-tier counter comparisons diff the same
    operations.
    """
    if seq_len <= 0:
        raise ValueError("seq_len must be positive")
    logit = GemvOp(rows=seq_len * num_heads, cols=head_dim,
                   tag=f"logit{tag}")
    attend = GemvOp(rows=head_dim * num_heads, cols=seq_len,
                    tag=f"attend{tag}")
    return logit, attend
