"""PIM substrate: Newton-style GEMV engine, NeuPIMs ISA, KV layout."""

from repro.pim.engine import (
    CalibratedLatencies,
    MhaExecution,
    PimChannelEngine,
    calibrate,
    measure_gemv_latency,
)
from repro.pim.gemv import (
    GemvOp,
    command_count,
    composite_stream,
    fine_grained_stream,
)
from repro.pim.layout import KvLayout

from repro.pim.functional import (
    FunctionalPimChannel,
    pim_attention,
    reference_attention,
)
from repro.pim.kvstore import ChannelKvStore, KvStoreError, RequestPlacement

__all__ = [
    "CalibratedLatencies",
    "MhaExecution",
    "PimChannelEngine",
    "calibrate",
    "measure_gemv_latency",
    "GemvOp",
    "command_count",
    "composite_stream",
    "fine_grained_stream",
    "KvLayout",
    "FunctionalPimChannel",
    "pim_attention",
    "reference_attention",
    "ChannelKvStore",
    "KvStoreError",
    "RequestPlacement",
]
