"""KV-cache store: paged allocation mapped onto PIM channel addresses.

Ties three substrates together the way the real system does:

* the **paged allocator** (vLLM-style, :mod:`repro.serving.paging`)
  decides *how many* blocks a request owns;
* the **bank-interleaved address map** (:mod:`repro.dram.address`) decides
  *where* each block's pages live so dot-product waves engage every bank;
* the **KV layout** (:mod:`repro.pim.layout`) derives Algorithm 1's tile
  counts from the same geometry.

The store tracks, per request, the DRAM rows its K and V pages occupy on
its assigned channel, and can emit the PIM_ACTIVATION row lists a GEMV
over that request would touch — which the tests cross-check against the
tile counts the latency estimator charges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Dict, List, Optional, Set, Tuple

from repro.dram.address import BankInterleaved, Coordinates
from repro.dram.timing import HbmOrganization
from repro.model.spec import ModelSpec


class KvStoreError(RuntimeError):
    """Raised on placement failures (capacity, unknown request...)."""


@dataclass
class RequestPlacement:
    """Where one request's KV cache lives on its channel."""

    request_id: int
    channel: int
    #: pages as (bank, row) per cached token row, keys then values
    key_pages: List[Tuple[int, int]] = field(default_factory=list)
    value_pages: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def tokens(self) -> int:
        """Cached context length (keys define it)."""
        return len(self.key_pages)

    def banks_touched(self) -> Set[int]:
        """Banks holding any of this request's K or V pages."""
        return {bank for bank, _ in self.key_pages + self.value_pages}

    def rows_touched(self) -> Set[Tuple[int, int]]:
        """All (bank, row) pages this request occupies."""
        return set(self.key_pages) | set(self.value_pages)


class ChannelKvStore:
    """KV-cache placement for one PIM channel.

    One "token row" per cached token for K and for V: a key row holds the
    token's full-``E`` key vector (padded to whole pages), interleaved
    across banks token-by-token (§6.3: same row/column across banks =
    same layer/head, differing sequence index).

    Parameters
    ----------
    spec:
        Model (shard) whose per-token KV footprint sizes the rows.
    channel:
        Channel index this store manages.
    reserved_rows:
        Rows per bank reserved for weights/activations (not KV).
    """

    def __init__(self, spec: ModelSpec, channel: int,
                 org: Optional[HbmOrganization] = None,
                 reserved_rows: int = 0) -> None:
        self.spec = spec
        self.channel = channel
        self.org = org or HbmOrganization()
        self.mapper = BankInterleaved(channel=channel, org=self.org,
                                      base_row=reserved_rows)
        self._placements: Dict[int, RequestPlacement] = {}
        bank_rows = self.org.rows_per_bank() - reserved_rows
        if bank_rows <= 0:
            raise ValueError("reserved_rows leaves no KV capacity")
        self._total_pages = bank_rows * self.org.banks_per_channel
        # Keys grow from the bottom of the region and values from the top:
        # keeping each side contiguous preserves the bank-cyclic striping
        # (§6.3) for both operands independently.
        self._next_key_page = 0
        self._next_value_page = self._total_pages - 1
        self._free_key_pages: List[int] = []
        self._free_value_pages: List[int] = []

    # ------------------------------------------------------------------

    @property
    def pages_per_token(self) -> int:
        """Pages one token's key (or value) vector occupies."""
        row_bytes = self.spec.d_model * self.spec.dtype_bytes
        return ceil(row_bytes / self.org.page_bytes)

    @property
    def used_pages(self) -> int:
        key_used = self._next_key_page - len(self._free_key_pages)
        value_used = (self._total_pages - 1 - self._next_value_page
                      - len(self._free_value_pages))
        return key_used + value_used

    @property
    def free_pages(self) -> int:
        return self._total_pages - self.used_pages

    def _exhausted(self) -> bool:
        return self._next_key_page > self._next_value_page

    def _allocate_page(self, for_keys: bool) -> Tuple[int, int]:
        free = self._free_key_pages if for_keys else self._free_value_pages
        if free:
            page = free.pop()
        elif self._exhausted():
            raise KvStoreError(f"channel {self.channel}: out of KV pages")
        elif for_keys:
            page = self._next_key_page
            self._next_key_page += 1
        else:
            page = self._next_value_page
            self._next_value_page -= 1
        coords = self.mapper.decode(page * self.org.page_bytes)
        return coords.bank, coords.row

    # ------------------------------------------------------------------

    def register(self, request_id: int) -> RequestPlacement:
        """Create an empty placement for a new request."""
        if request_id in self._placements:
            raise KvStoreError(f"request {request_id} already registered")
        placement = RequestPlacement(request_id=request_id,
                                     channel=self.channel)
        self._placements[request_id] = placement
        return placement

    def append_token(self, request_id: int) -> None:
        """Store one new token's K and V vectors (one generation step)."""
        placement = self._placements.get(request_id)
        if placement is None:
            raise KvStoreError(f"unknown request {request_id}")
        for _ in range(self.pages_per_token):
            placement.key_pages.append(self._allocate_page(for_keys=True))
        for _ in range(self.pages_per_token):
            placement.value_pages.append(self._allocate_page(for_keys=False))

    def append_context(self, request_id: int, tokens: int) -> None:
        """Bulk-store a prefilled context (prompt handoff, Figure 7)."""
        if tokens <= 0:
            raise ValueError("tokens must be positive")
        for _ in range(tokens):
            self.append_token(request_id)

    def release(self, request_id: int) -> int:
        """Free a finished request's pages; returns pages freed."""
        placement = self._placements.pop(request_id, None)
        if placement is None:
            return 0
        freed = 0
        for pages, pool in ((placement.key_pages, self._free_key_pages),
                            (placement.value_pages, self._free_value_pages)):
            for bank, row in pages:
                address = self.mapper.encode(Coordinates(
                    channel=self.channel, bank=bank, row=row, column=0))
                pool.append(address // self.org.page_bytes)
                freed += 1
        return freed

    def placement(self, request_id: int) -> RequestPlacement:
        """The placement record of a registered request."""
        placement = self._placements.get(request_id)
        if placement is None:
            raise KvStoreError(f"unknown request {request_id}")
        return placement

    # ------------------------------------------------------------------

    def logit_wave_rows(self, request_id: int) -> List[List[Tuple[int, int]]]:
        """Per-wave (bank, row) activation lists for the logit GEMV.

        Each wave opens at most one row per bank; keys spread across banks
        so a wave covers up to ``banks_per_channel`` token rows.
        """
        placement = self.placement(request_id)
        waves: List[List[Tuple[int, int]]] = []
        current: Dict[int, int] = {}
        for bank, row in placement.key_pages:
            if bank in current:
                waves.append(sorted(current.items()))
                current = {}
            current[bank] = row
        if current:
            waves.append(sorted(current.items()))
        return waves

    def wave_count_logit(self, request_id: int) -> int:
        """Waves the logit GEMV needs (cross-checked vs Algorithm 1)."""
        return len(self.logit_wave_rows(request_id))
