"""KV-cache memory layout on PIM banks (paper §6.3).

The GEMV matrix operand is interleaved row-wise across a channel's banks so
all banks contribute to a dot-product wave in parallel:

* **Key cache** (for logit = K^T q): keys at the same DRAM row/column across
  banks share the same layer and head, with *differing sequence indices* —
  a wave covers ``banks_per_channel`` sequence positions of one head slice.
* **Value cache** (for attend = logits V): values at the same row/column
  share layer, head *and* sequence index, with the head embedding
  interleaved across banks — a wave covers ``banks_per_channel`` embedding
  elements.

Algorithm 1's tile counts follow directly from this layout, which is what
the latency estimator in :mod:`repro.core.estimator` computes.  This module
provides the exact tile enumeration so the estimator can be validated
against it (and against the command-level simulation).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.dram.timing import HbmOrganization
from repro.model.spec import ModelSpec


@dataclass(frozen=True)
class KvLayout:
    """Placement parameters for one model on one PIM channel."""

    org: HbmOrganization
    dtype_bytes: int = 2

    @property
    def elements_per_page(self) -> int:
        """Algorithm 1's ``P_DRAM`` in elements."""
        return self.org.elements_per_page(self.dtype_bytes)

    @property
    def banks(self) -> int:
        """Algorithm 1's ``B_chnl``."""
        return self.org.banks_per_channel

    # ------------------------------------------------------------------
    # Logit (K^T x q): K is [seq_len, E] for the request's channel shard.
    # ------------------------------------------------------------------

    def key_tiles(self, spec: ModelSpec, seq_len: int) -> int:
        """Dot-product waves needed for the logit GEMV of one request.

        Rows of K (one per cached token) are spread across banks, so
        ``seq_len / banks`` wave-rounds, each covering ``E / P_DRAM``
        pages of the embedding dimension.
        """
        if seq_len <= 0:
            raise ValueError("seq_len must be positive")
        seq_rounds = ceil(seq_len / self.banks)
        pages_per_row = ceil(spec.d_model / self.elements_per_page)
        return seq_rounds * pages_per_row

    def key_gwrites(self, spec: ModelSpec) -> int:
        """GWRITE commands to stage the query vector (E elements)."""
        return ceil(spec.d_model / self.elements_per_page)

    # ------------------------------------------------------------------
    # Attend (logits x V): V is [seq_len, head_dim] per head.
    # ------------------------------------------------------------------

    def value_tiles(self, spec: ModelSpec, seq_len: int) -> int:
        """Dot-product waves for the attend GEMV of one request.

        The head embedding (head_dim elements) is interleaved across
        banks; each head's logit vector spans ``seq_len / P_DRAM`` pages,
        repeated per head.
        """
        if seq_len <= 0:
            raise ValueError("seq_len must be positive")
        emb_rounds = ceil(spec.head_dim / self.banks)
        pages_per_head = ceil(seq_len / self.elements_per_page)
        return emb_rounds * pages_per_head * spec.num_heads

    def value_gwrites(self, spec: ModelSpec, seq_len: int) -> int:
        """GWRITE commands to stage the logit vectors (seq_len per head)."""
        return ceil(seq_len / self.elements_per_page) * spec.num_heads

    # ------------------------------------------------------------------

    def kv_rows_for_request(self, spec: ModelSpec, seq_len: int) -> int:
        """DRAM rows the request's KV cache occupies per bank (capacity)."""
        bytes_total = 2 * seq_len * spec.d_model * self.dtype_bytes
        per_bank = ceil(bytes_total / self.banks)
        return ceil(per_bank / self.org.page_bytes)

    def fits(self, spec: ModelSpec, total_tokens: int,
             reserved_rows: int = 0) -> bool:
        """Whether ``total_tokens`` of KV cache fit in the channel."""
        rows_needed = self.kv_rows_for_request(spec, max(1, total_tokens))
        return rows_needed + reserved_rows <= self.org.rows_per_bank()
