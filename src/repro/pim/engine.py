"""PIM channel execution engine and latency calibration.

Bridges the command-level DRAM simulation and the device-level pipeline
model: MHA GEMVs are lowered to PIM command streams, replayed through a
:class:`~repro.dram.controller.MemoryController`, and timed.  The measured
per-wave (``L_tile``) and per-GWRITE (``L_GWRITE``) latencies calibrate
Algorithm 1's estimator, which the scheduler then uses without paying the
cost of command-level simulation on every iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.dram.channel import Channel
from repro.dram.controller import ControllerConfig, MemoryController
from repro.dram.timing import HbmOrganization, PimTiming, TimingParams
from repro.model.spec import ModelSpec
from repro.pim.gemv import (GemvOp, composite_stream, fine_grained_stream,
                            mha_gemv_ops)
from repro.pim.layout import KvLayout


@dataclass(frozen=True)
class CalibratedLatencies:
    """Algorithm 1's hardware constants, measured from the command level.

    ``l_tile`` is the effective cycles per dot-product wave (a "PIM tile");
    ``l_gwrite`` is the cycles to stage one page of the operand vector.
    """

    l_tile: float
    l_gwrite: float

    def __post_init__(self) -> None:
        if self.l_tile <= 0 or self.l_gwrite <= 0:
            raise ValueError("calibrated latencies must be positive")


def _fresh_controller(
    dual_row_buffer: bool,
    composite: bool,
    timing: Optional[TimingParams] = None,
    org: Optional[HbmOrganization] = None,
    pim_timing: Optional[PimTiming] = None,
    refresh: bool = True,
) -> MemoryController:
    channel = Channel(0, timing=timing, org=org, pim_timing=pim_timing,
                      dual_row_buffer=dual_row_buffer)
    config = ControllerConfig(pim_priority=True,
                              header_aware_refresh=composite,
                              refresh_enabled=refresh)
    return MemoryController(channel, config)


def measure_gemv_latency(
    op: GemvOp,
    dual_row_buffer: bool = True,
    composite: bool = True,
    timing: Optional[TimingParams] = None,
    org: Optional[HbmOrganization] = None,
    pim_timing: Optional[PimTiming] = None,
    dtype_bytes: int = 2,
    refresh: bool = True,
    fast: bool = False,
) -> Tuple[float, MemoryController]:
    """Simulate one GEMV and return (latency_cycles, controller).

    The controller is returned so callers can inspect issue records,
    command counts and C/A-bus occupancy (Figure 9 does exactly this).
    ``fast=True`` drains through the batch-replay path
    (:meth:`~repro.dram.controller.MemoryController.drain_fast`): finish
    time and stats are identical, but per-command records are abridged —
    use it when only the latency or aggregate stats matter.
    """
    from repro.perf.streams import interned_stream

    controller = _fresh_controller(dual_row_buffer, composite,
                                   timing, org, pim_timing, refresh)
    org = controller.channel.org
    controller.enqueue_pim(interned_stream(op, org, composite=composite,
                                           dtype_bytes=dtype_bytes))
    if fast:
        controller.drain_fast()
    else:
        controller.drain()
    return controller.finish_time, controller


def calibrate(
    timing: Optional[TimingParams] = None,
    org: Optional[HbmOrganization] = None,
    pim_timing: Optional[PimTiming] = None,
    dtype_bytes: int = 2,
) -> CalibratedLatencies:
    """Measure ``L_tile`` and ``L_GWRITE`` from the command-level model.

    Runs two GEMVs that differ by a known number of waves and solves for
    the per-wave latency; GWRITE cost is measured from the GWRITE-count
    difference of two column widths.
    """
    org = org or HbmOrganization()
    elements = org.elements_per_page(dtype_bytes)
    banks = org.banks_per_channel

    # Wave cost: same single GWRITE, different wave counts.
    small = GemvOp(rows=banks, cols=elements, tag="cal-small")
    large = GemvOp(rows=banks * 9, cols=elements, tag="cal-large")
    t_small, _ = measure_gemv_latency(small, timing=timing, org=org,
                                      pim_timing=pim_timing,
                                      dtype_bytes=dtype_bytes, refresh=False,
                                      fast=True)
    t_large, _ = measure_gemv_latency(large, timing=timing, org=org,
                                      pim_timing=pim_timing,
                                      dtype_bytes=dtype_bytes, refresh=False,
                                      fast=True)
    waves_small = small.waves(org, dtype_bytes)
    waves_large = large.waves(org, dtype_bytes)
    l_tile = (t_large - t_small) / (waves_large - waves_small)

    # GWRITE cost: same wave count, different operand-vector widths means
    # more GWRITEs.  Use rows == banks so row_rounds stays 1.
    wide = GemvOp(rows=banks, cols=elements * 4, tag="cal-wide")
    t_wide, _ = measure_gemv_latency(wide, timing=timing, org=org,
                                     pim_timing=pim_timing,
                                     dtype_bytes=dtype_bytes, refresh=False,
                                     fast=True)
    waves_wide = wide.waves(org, dtype_bytes)
    # t_wide = fixed + 3 extra gwrites + (waves_wide - waves_small) tiles
    extra_tiles = (waves_wide - waves_small) * l_tile
    l_gwrite = max(1.0, (t_wide - t_small - extra_tiles) / 3.0)
    return CalibratedLatencies(l_tile=l_tile, l_gwrite=l_gwrite)


@dataclass
class MhaExecution:
    """Timing of one request's MHA on a PIM channel."""

    request_tag: str
    logit_cycles: float
    attend_cycles: float

    @property
    def total_cycles(self) -> float:
        return self.logit_cycles + self.attend_cycles


class PimChannelEngine:
    """Executes the MHA GEMVs of the requests mapped to one channel.

    Requests on a channel run sequentially (they share the channel's banks);
    each request's MHA is a logit GEMV followed by softmax (on the NPU
    vector units, outside this engine) and an attend GEMV.  The engine
    lowers both GEMVs per the KV layout and replays the command streams.
    """

    def __init__(self, spec: ModelSpec,
                 org: Optional[HbmOrganization] = None,
                 timing: Optional[TimingParams] = None,
                 pim_timing: Optional[PimTiming] = None,
                 dual_row_buffer: bool = True,
                 composite: bool = True) -> None:
        self.spec = spec
        self.org = org or HbmOrganization()
        self.timing = timing
        self.pim_timing = pim_timing
        self.dual_row_buffer = dual_row_buffer
        self.composite = composite
        self.layout = KvLayout(self.org, dtype_bytes=spec.dtype_bytes)

    def mha_ops(self, seq_len: int, tag: str = "") -> Tuple[GemvOp, GemvOp]:
        """The logit and attend GEMVs of one request."""
        return mha_gemv_ops(self.spec.num_heads, self.spec.head_dim,
                            seq_len, tag=tag)

    def run_requests(self, seq_lens: Sequence[int]) -> Tuple[float, List[MhaExecution]]:
        """Simulate the channel's MHA work; returns (total_cycles, per-request)."""
        controller = _fresh_controller(self.dual_row_buffer, self.composite,
                                       self.timing, self.org, self.pim_timing)
        builder = composite_stream if self.composite else fine_grained_stream
        for idx, seq_len in enumerate(seq_lens):
            logit, attend = self.mha_ops(seq_len, tag=f"[{idx}]")
            for op in (logit, attend):
                controller.enqueue_pim(builder(op, self.org,
                                               self.spec.dtype_bytes))
        records = controller.drain()

        spans: dict = {}
        for record in records:
            tag = record.command.meta
            if not tag:
                continue
            start, end = spans.get(tag, (record.issue_time, record.complete_time))
            spans[tag] = (min(start, record.issue_time),
                          max(end, record.complete_time))
        executions = [
            MhaExecution(
                request_tag=f"[{idx}]",
                logit_cycles=self._span_cycles(spans, f"logit[{idx}]"),
                attend_cycles=self._span_cycles(spans, f"attend[{idx}]"),
            )
            for idx in range(len(seq_lens))
        ]
        return controller.finish_time, executions

    @staticmethod
    def _span_cycles(spans: dict, tag: str) -> float:
        interval = spans.get(tag)
        return (interval[1] - interval[0]) if interval else 0.0
