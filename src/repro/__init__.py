"""NeuPIMs reproduction: NPU-PIM heterogeneous acceleration for batched
LLM inferencing (Heo et al., ASPLOS 2024).

The scenario API (start here)
-----------------------------
:mod:`repro.api` is the declarative front door for every simulation
mode.  Describe an experiment as a :class:`ScenarioSpec` — model, system
under test, hardware config, traffic (warmed batch / Poisson stream /
trace replay), serving knobs, and fidelity (``analytic`` closed-form
constants vs ``cycle`` command-level calibration) — then let a
:class:`Session` materialize the full stack and return a uniform
:class:`RunResult`::

    from repro import ScenarioSpec, Session, TrafficSpec

    spec = ScenarioSpec(model="gpt3-7b",
                        traffic=TrafficSpec.warmed(batch_size=256))
    result = Session(spec).run()

Specs are picklable and JSON round-trippable (``to_dict`` /
``from_dict``); :func:`run_scenarios` fans spec lists across the
:mod:`repro.exec` process-pool backends with deterministic merges, and
``python -m repro run|sweep|compare|components`` exposes the same
objects on the command line.

Scenario ingredients are pluggable: :mod:`repro.registry` maps
component names (system, scheduler, traffic, KV allocator, fidelity
engine) to factories, and :func:`register` adds your own — a custom
scheduler policy then sweeps like any built-in.  Sessions stream too:
``Session.stream()`` yields typed serving events
(:mod:`repro.serving.events`), and ``Session.step()`` /
``Session.run_until()`` drive step-wise execution and early stop for
live-policy experiments (``examples/slo_monitor.py``).

Layer map
---------
* :class:`repro.core.NeuPimsDevice` / :class:`repro.core.NeuPimsSystem` —
  the paper's accelerator and its multi-device scaling.
* :class:`repro.core.NeuPimsConfig` — hardware parameters + the DRB /
  GMLBP / SBI feature flags of the ablation study.
* :mod:`repro.baselines` — GPU-only, NPU-only, naive NPU+PIM, TransPIM.
* :mod:`repro.serving` — Orca-style iteration scheduling, vLLM-style
  paged KV cache, ShareGPT/Alpaca traces.
* :mod:`repro.analysis` — the Figure 12 harness (`compare_systems`),
  sweeps, sensitivity, ablation grids, claim validation.
* :mod:`repro.exec` — sharded parallel execution backends.
* :mod:`repro.faults` — deterministic fault injection, resilience
  policies, and the ``python -m repro chaos`` invariant harness.
* :mod:`repro.cluster` — the fleet tier: a health-checked router
  dispatching one traffic stream across N node sessions with pluggable
  routing policies, seeded node kills, and request failover
  (``python -m repro chaos --fleet``).
* :mod:`repro.dram` / :mod:`repro.pim` — the command-level ground truth
  behind ``fidelity="cycle"``.
"""

from repro.api import (
    RunResult,
    ScenarioSpec,
    ServingSpec,
    Session,
    TrafficSpec,
    run_scenario,
    run_scenarios,
)
from repro.registry import register
from repro.core import (
    MhaLatencyEstimator,
    NeuPimsConfig,
    NeuPimsDevice,
    NeuPimsSystem,
    ParallelismScheme,
)
from repro.model import ModelSpec, get_model
from repro.serving import InferenceRequest, get_dataset, warmed_batch

__version__ = "1.1.0"

__all__ = [
    "RunResult",
    "ScenarioSpec",
    "ServingSpec",
    "Session",
    "TrafficSpec",
    "run_scenario",
    "run_scenarios",
    "register",
    "MhaLatencyEstimator",
    "NeuPimsConfig",
    "NeuPimsDevice",
    "NeuPimsSystem",
    "ParallelismScheme",
    "ModelSpec",
    "get_model",
    "InferenceRequest",
    "get_dataset",
    "warmed_batch",
    "__version__",
]
