"""NeuPIMs reproduction: NPU-PIM heterogeneous acceleration for batched
LLM inferencing (Heo et al., ASPLOS 2024).

Public API highlights
---------------------
* :class:`repro.core.NeuPimsDevice` / :class:`repro.core.NeuPimsSystem` —
  the paper's accelerator and its multi-device scaling.
* :class:`repro.core.NeuPimsConfig` — hardware parameters + the DRB /
  GMLBP / SBI feature flags of the ablation study.
* :mod:`repro.baselines` — GPU-only, NPU-only, naive NPU+PIM, TransPIM.
* :mod:`repro.serving` — Orca-style iteration scheduling, vLLM-style
  paged KV cache, ShareGPT/Alpaca traces.
* :func:`repro.analysis.compare_systems` — the Figure 12 harness.
"""

from repro.core import (
    MhaLatencyEstimator,
    NeuPimsConfig,
    NeuPimsDevice,
    NeuPimsSystem,
    ParallelismScheme,
)
from repro.model import ModelSpec, get_model
from repro.serving import InferenceRequest, get_dataset, warmed_batch

__version__ = "1.0.0"

__all__ = [
    "MhaLatencyEstimator",
    "NeuPimsConfig",
    "NeuPimsDevice",
    "NeuPimsSystem",
    "ParallelismScheme",
    "ModelSpec",
    "get_model",
    "InferenceRequest",
    "get_dataset",
    "warmed_batch",
    "__version__",
]
