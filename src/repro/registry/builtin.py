"""Built-in component registrations (systems, schedulers, traffic, KV).

Importing :mod:`repro.registry` loads this module once, populating the
process-wide :data:`~repro.registry.REGISTRY` with every component the
repository ships.  All heavyweight imports happen *inside* the factory
bodies, so registering is cheap and the spec layer can validate names
without dragging in device models.

Factory calling conventions (the registration contract, DESIGN.md §8):

* ``system``: ``factory(model_spec, config, *, tp, layers_resident,
  estimator, **options) -> device`` — the device exposes
  ``iteration(batch) -> IterationResult`` plus the optional NeuPIMs
  surface (``assign_channels`` / ``attach_load_tracker`` /
  ``channel_pool`` / ``prepare_class_plan``) the serving stack probes
  for.  ``estimator`` is the cycle-fidelity Algorithm-1 estimator or
  ``None``; factories for systems without a PIM estimator reject a
  non-``None`` value.
* ``traffic``: ``factory(traffic_spec, **options) -> Workload`` — either
  warmed measurement ``batches`` or streaming ``arrivals``.
* ``kv``: ``factory(model_spec, serving_spec, channels, *,
  layers_resident, **options) -> list of per-channel allocators``.
* ``scheduler``: ``factory(**wiring, **options) -> scheduler`` where the
  wiring kwargs are exactly :class:`~repro.serving.scheduler.
  IterationScheduler`'s constructor parameters (pool, executor,
  max_batch_size, allocators, assign_channels, load_tracker, grouping,
  grouped, latency_tracker, events); custom policies usually subclass
  ``IterationScheduler`` and accept extra options.
* ``fidelity``: ``factory(session, **options) -> estimator or None`` —
  ``None`` means the device's closed-form constants.
* ``faults``: ``factory(serving_spec, channels, **options) ->
  FaultInjector or None`` — ``None`` (the ``"none"`` builtin) means no
  fault injection and the session skips the resilience runtime
  entirely; ``channels`` is the target system's PIM/DRAM channel count
  so seeded plans draw valid fault channels.
* ``router``: ``factory(num_nodes, **options) -> RoutingPolicy`` — the
  fleet dispatch policy of the cluster tier (:mod:`repro.cluster`);
  ``num_nodes`` is the fleet size.
* ``counters``: ``factory(session, **options) -> CounterCollector or
  None`` — ``None`` (the ``"none"`` builtin) means no counter
  collection and every producer skips its charging branch entirely,
  the same zero-overhead-when-disabled discipline as the faults and
  event layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from repro.registry.core import ComponentRegistry

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.serving.request import InferenceRequest


@dataclass(frozen=True)
class Workload:
    """Materialized traffic: warmed batches *or* streaming arrivals.

    Exactly one of the two fields is populated.  ``batches`` drives the
    measurement loop (one generation iteration per batch, paper §8.1);
    ``arrivals`` feeds the request pool of the iteration-level serving
    scheduler.
    """

    batches: Tuple[Tuple["InferenceRequest", ...], ...] = ()
    arrivals: Tuple["InferenceRequest", ...] = ()

    @property
    def streaming(self) -> bool:
        """Whether this workload drives the serving scheduler."""
        return not self.batches


def register_builtins(registry: ComponentRegistry) -> None:
    """Populate ``registry`` with every component the repo ships."""
    _register_systems(registry)
    _register_traffic(registry)
    _register_kv(registry)
    _register_schedulers(registry)
    _register_fidelity(registry)
    _register_faults(registry)
    _register_routers(registry)
    _register_counters(registry)


# ----------------------------------------------------------------------
# Systems.
# ----------------------------------------------------------------------

def _reject_estimator(system: str, estimator: Any) -> None:
    if estimator is not None:
        raise ValueError(f"system {system!r} has no PIM estimator to "
                         "calibrate; use fidelity='analytic'")


def _register_systems(registry: ComponentRegistry) -> None:
    def neupims(model_spec, config, *, tp, layers_resident=None,
                estimator=None, **options):
        """The paper's NPU+PIM accelerator with all NeuPIMs features."""
        from repro.core.device import NeuPimsDevice
        return NeuPimsDevice(model_spec, config, tp=tp,
                             layers_resident=layers_resident,
                             estimator=estimator, **options)

    def npu_only(model_spec, config, *, tp, layers_resident=None,
                 estimator=None, **options):
        """NPU-only baseline: MHA GEMVs on the systolic/vector units."""
        from repro.baselines.npu_only import NpuOnlyDevice
        _reject_estimator("npu-only", estimator)
        return NpuOnlyDevice(model_spec, config, tp=tp,
                             layers_resident=layers_resident, **options)

    def gpu_only(model_spec, config, *, tp, layers_resident=None,
                 estimator=None, **options):
        """GPU roofline baseline (A100-class; ignores the PIM config)."""
        from repro.baselines.gpu import GpuOnlyDevice
        _reject_estimator("gpu-only", estimator)
        return GpuOnlyDevice(model_spec, tp=tp,
                             layers_resident=layers_resident, **options)

    def transpim(model_spec, config, *, tp, layers_resident=None,
                 estimator=None, **options):
        """TransPIM-style all-in-memory baseline (TP degree fixed at 1)."""
        from repro.baselines.transpim import TransPimDevice
        _reject_estimator("transpim", estimator)
        return TransPimDevice(model_spec, config,
                              layers_resident=layers_resident, **options)

    registry.register("system", "neupims", neupims,
                      description="NeuPIMs NPU+PIM accelerator "
                                  "(all features)")
    registry.register("system", "npu-pim", neupims,
                      description="naive NPU+PIM baseline (features "
                                  "forced off by the spec)")
    registry.register("system", "npu-only", npu_only,
                      description="NPU-only baseline")
    registry.register("system", "gpu-only", gpu_only,
                      description="GPU roofline baseline (A100-class)")
    registry.register("system", "transpim", transpim,
                      description="TransPIM all-in-memory baseline")


# ----------------------------------------------------------------------
# Traffic models.
# ----------------------------------------------------------------------

def _register_traffic(registry: ComponentRegistry) -> None:
    def warmed(traffic, **options):
        """Warmed-batch measurement traffic (paper §8.1 methodology)."""
        from repro.serving.trace import sample_batches, warmed_batch
        if options:
            # sample_batches owns its per-batch start ids, so warmed
            # traffic has no tunables beyond the TrafficSpec fields.
            raise ValueError(f"unknown warmed traffic option(s) "
                             f"{sorted(options)}")
        trace = traffic.resolve_dataset()
        if traffic.num_batches == 1 and not traffic.sample_schedule:
            batches = [warmed_batch(trace, traffic.batch_size,
                                    seed=traffic.seed)]
        else:
            batches = sample_batches(trace, traffic.batch_size,
                                     traffic.num_batches,
                                     seed=traffic.seed)
        return Workload(batches=tuple(tuple(b) for b in batches))

    def poisson(traffic, **options):
        """Streaming Poisson arrivals over a fixed horizon."""
        from repro.serving.trace import poisson_arrivals
        arrivals = poisson_arrivals(
            traffic.resolve_dataset(), traffic.rate_per_kcycle,
            traffic.horizon_cycles, seed=traffic.seed, **options)
        if traffic.max_requests is not None:
            arrivals = arrivals[:traffic.max_requests]
        return Workload(arrivals=tuple(arrivals))

    def replay(traffic, **options):
        """Trace replay from explicit (input, output, arrival) triples."""
        from repro.serving.request import InferenceRequest
        start_id = int(options.pop("start_id", 0))
        if options:
            raise ValueError(f"unknown replay traffic option(s) "
                             f"{sorted(options)}")
        arrivals = tuple(
            InferenceRequest(request_id=start_id + i, input_len=inp,
                             output_len=out, arrival_time=arrival)
            for i, (inp, out, arrival) in
            enumerate(traffic.replay_requests))
        return Workload(arrivals=arrivals)

    def external(traffic, **options):
        """Streaming traffic with no arrivals of its own (router-fed)."""
        if options:
            raise ValueError(f"unknown external traffic option(s) "
                             f"{sorted(options)}")
        return Workload(arrivals=())

    registry.register("traffic", "warmed", warmed,
                      description="sampled warmed generation batches "
                                  "(measurement)")
    registry.register("traffic", "poisson", poisson,
                      option_names=("start_id",),
                      description="streaming Poisson arrivals")
    registry.register("traffic", "replay", replay,
                      option_names=("start_id",),
                      description="explicit trace replay")
    registry.register("traffic", "external", external,
                      description="empty streaming workload; requests "
                                  "arrive via pool.submit (fleet nodes)")


# ----------------------------------------------------------------------
# KV allocators.
# ----------------------------------------------------------------------

def _register_kv(registry: ComponentRegistry) -> None:
    def paged(model_spec, serving, channels, *, layers_resident,
              **options):
        """vLLM-style per-channel paged KV allocators."""
        from repro.serving.paging import PagedKvConfig, channel_allocators
        config = PagedKvConfig(
            block_tokens=options.pop("block_tokens",
                                     serving.kv_block_tokens),
            capacity_bytes=options.pop("capacity_bytes",
                                       serving.kv_capacity_bytes))
        if options:
            raise ValueError(f"unknown paged KV option(s) "
                             f"{sorted(options)}")
        return channel_allocators(config, model_spec, channels,
                                  layers_resident=layers_resident)

    registry.register("kv", "paged", paged,
                      option_names=("block_tokens", "capacity_bytes"),
                      description="per-channel paged KV allocation "
                                  "(admission control)")


# ----------------------------------------------------------------------
# Schedulers.
# ----------------------------------------------------------------------

def _register_schedulers(registry: ComponentRegistry) -> None:
    def iteration(**kwargs):
        """Orca-style iteration-level scheduler (selective batching)."""
        from repro.serving.scheduler import IterationScheduler
        return IterationScheduler(**kwargs)

    registry.register("scheduler", "iteration", iteration,
                      description="iteration-level scheduling with "
                                  "selective batching (Orca-style)")


# ----------------------------------------------------------------------
# Fidelity engines.
# ----------------------------------------------------------------------

def _register_fidelity(registry: ComponentRegistry) -> None:
    def analytic(session, **options):
        """Closed-form Algorithm-1 latency constants (no calibration)."""
        if options:
            raise ValueError(f"unknown analytic fidelity option(s) "
                             f"{sorted(options)}")
        return None

    def cycle(session, **options):
        """Constants calibrated from the command-level DRAM/PIM sim."""
        if options:
            raise ValueError(f"unknown cycle fidelity option(s) "
                             f"{sorted(options)}")
        return session.calibrated_estimator()

    def auto(session, **options):
        """Profile-guided tier choice (refutation-backed PGO loop)."""
        # The "profile" payload is consumed by the spec's
        # resolve_fidelity(); everything else is unknown.
        options.pop("profile", None)
        if options:
            raise ValueError(f"unknown auto fidelity option(s) "
                             f"{sorted(options)}")
        if session.spec.resolve_fidelity() == "cycle":
            return session.calibrated_estimator()
        return None

    registry.register("fidelity", "analytic", analytic,
                      description="closed-form latency constants")
    registry.register("fidelity", "cycle", cycle,
                      description="command-level calibrated constants "
                                  "(memoized per config)")
    registry.register("fidelity", "auto", auto,
                      option_names=("profile",),
                      description="profile-guided analytic/cycle choice "
                                  "per scenario region "
                                  "(repro.counters.profile)")


# ----------------------------------------------------------------------
# Fault injection.
# ----------------------------------------------------------------------

def _register_faults(registry: ComponentRegistry) -> None:
    def none(serving, channels, **options):
        """No fault injection — the zero-overhead default."""
        if options:
            raise ValueError(f"unknown faults option(s) "
                             f"{sorted(options)} for 'none'")
        return None

    def seeded(serving, channels, **options):
        """Seeded deterministic fault plan (repro.faults.plan)."""
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import make_fault_plan
        seed = int(options.pop("seed", 0))
        return FaultInjector(make_fault_plan(seed, channels, **options))

    registry.register("faults", "none", none,
                      description="no fault injection (default)")
    registry.register("faults", "seeded", seeded,
                      option_names=("seed", "horizon", "degrades",
                                    "stalls", "kv_faults", "aborts"),
                      description="seeded deterministic fault plan "
                                  "(channel degrade/stall, KV windows, "
                                  "request aborts)")


# ----------------------------------------------------------------------
# Typed counters.
# ----------------------------------------------------------------------

def _register_counters(registry: ComponentRegistry) -> None:
    def none(session, **options):
        """No counter collection — the zero-overhead default."""
        if options:
            raise ValueError(f"unknown counters option(s) "
                             f"{sorted(options)} for 'none'")
        return None

    def typed(session, **options):
        """Typed counter vectors (repro.counters taxonomy)."""
        from repro.counters.collect import CounterCollector
        if options:
            raise ValueError(f"unknown typed counters option(s) "
                             f"{sorted(options)}")
        return CounterCollector()

    registry.register("counters", "none", none,
                      description="no counter collection (default)")
    registry.register("counters", "typed", typed,
                      description="typed hardware counter vectors "
                                  "rolled into RunResult.counters")


# ----------------------------------------------------------------------
# Fleet routing policies (the cluster tier).
# ----------------------------------------------------------------------

def _register_routers(registry: ComponentRegistry) -> None:
    def round_robin(num_nodes, **options):
        """Cycle dispatches over the healthy nodes in index order."""
        from repro.cluster.policies import RoundRobinPolicy
        if options:
            raise ValueError(f"unknown round-robin option(s) "
                             f"{sorted(options)}")
        return RoundRobinPolicy(num_nodes)

    def least_loaded(num_nodes, **options):
        """Send each request to the node with the lowest estimated load."""
        from repro.cluster.policies import LeastLoadedPolicy
        if options:
            raise ValueError(f"unknown least-loaded option(s) "
                             f"{sorted(options)}")
        return LeastLoadedPolicy(num_nodes)

    def affinity(num_nodes, **options):
        """Pin request id hashes to nodes (next healthy on failure)."""
        from repro.cluster.policies import SessionAffinityPolicy
        if options:
            raise ValueError(f"unknown affinity option(s) "
                             f"{sorted(options)}")
        return SessionAffinityPolicy(num_nodes)

    def power_of_two(num_nodes, **options):
        """Sample two healthy nodes per request, pick the less loaded."""
        from repro.cluster.policies import PowerOfTwoPolicy
        seed = int(options.pop("seed", 0))
        if options:
            raise ValueError(f"unknown power-of-two option(s) "
                             f"{sorted(options)}")
        return PowerOfTwoPolicy(num_nodes, seed=seed)

    registry.register("router", "round-robin", round_robin,
                      description="cycle over healthy nodes (default)")
    registry.register("router", "least-loaded", least_loaded,
                      description="lowest estimated load from "
                                  "ChannelLoadTracker rollups")
    registry.register("router", "affinity", affinity,
                      description="session affinity by request id "
                                  "(next healthy node on failover)")
    registry.register("router", "p2c", power_of_two,
                      option_names=("seed",),
                      description="power-of-two-choices with a seeded "
                                  "deterministic sampler")
