"""Pluggable component registry — the scenario API's parts bin.

Scenario specs name their ingredients as strings (``system="neupims"``,
``scheduler="iteration"``, ``traffic="poisson"``, ``kv="paged"``,
``fidelity="cycle"``); this package maps those names to factories.  The
process-wide :data:`REGISTRY` is pre-populated with every built-in
component on import, and user code extends it with :func:`register`::

    from repro.registry import register

    @register("scheduler", "slo-throttle",
              description="admission throttle driven by live TPOT")
    class SloThrottleScheduler(IterationScheduler):
        ...

    Session(spec.override(scheduler="slo-throttle")).run()

See :mod:`repro.registry.builtin` for the per-kind factory calling
conventions and DESIGN.md §8 for the registration contract.
"""

from repro.registry.builtin import Workload, register_builtins
from repro.registry.core import (KINDS, Component, ComponentRegistry,
                                 FrozenOptions, freeze_options,
                                 thaw_options)

#: The process-wide registry every Session resolves through.
REGISTRY = ComponentRegistry()
register_builtins(REGISTRY)

#: Bound convenience aliases over :data:`REGISTRY`.
register = REGISTRY.register
unregister = REGISTRY.unregister
get_component = REGISTRY.get
create = REGISTRY.create
component_names = REGISTRY.names
describe_components = REGISTRY.describe

__all__ = [
    "KINDS",
    "REGISTRY",
    "Component",
    "ComponentRegistry",
    "FrozenOptions",
    "Workload",
    "component_names",
    "create",
    "describe_components",
    "freeze_options",
    "get_component",
    "register",
    "register_builtins",
    "thaw_options",
    "unregister",
]
