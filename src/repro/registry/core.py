"""The component registry: named, introspectable factories.

Every scenario ingredient — the system under test, the serving
scheduler, the traffic model, the KV allocator family, the fidelity
engine — is a *component*: a named factory registered under one of the
:data:`KINDS`.  :class:`~repro.api.spec.ScenarioSpec` stores component
**names** (plain strings) plus per-component **option dicts**, and
:class:`~repro.api.session.Session` resolves both through the registry
at materialization time.  That keeps specs picklable and JSON
round-trippable while letting user code plug in new policies without
editing core files::

    from repro.registry import register
    from repro.serving.scheduler import IterationScheduler

    @register("scheduler", "my-policy")
    class MyPolicyScheduler(IterationScheduler):
        '''An admission policy the sweeps can now select by name.'''

    spec = ScenarioSpec(scheduler="my-policy")   # sweeps like a built-in

Factories are looked up by ``(kind, name)``; names are case-insensitive
and normalized to lower case.  Unknown names raise a :class:`ValueError`
listing the registered alternatives, and duplicate registrations are
rejected unless ``replace=True`` — both error paths are part of the
public contract (see ``tests/test_registry.py``).

Option dicts ride inside frozen specs as canonical sorted tuples
(:func:`freeze_options`) so specs stay hashable and order-insensitive;
:func:`thaw_options` rebuilds the plain dict before the factory call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Tuple, Union)

#: The component kinds a scenario is assembled from.
KINDS = ("system", "scheduler", "traffic", "kv", "fidelity", "faults",
         "router", "counters")

#: Canonical frozen encoding of an option dict: sorted ``(key, value)``
#: pairs, with nested mappings/sequences frozen recursively.
FrozenOptions = Tuple[Tuple[str, Any], ...]

#: First element of a frozen *nested* mapping, so thawing can tell a
#: mapping value apart from a list value that merely looks like pairs.
MAPPING_TAG = "__mapping__"


def freeze_options(options: Union[None, Mapping[str, Any],
                                  Iterable[Tuple[str, Any]]]
                   ) -> FrozenOptions:
    """Canonicalize an option mapping into a frozen, hashable tuple.

    Accepts a mapping, an iterable of ``(key, value)`` pairs (including
    an already-frozen tuple — the function is idempotent), or ``None``.
    Keys must be strings; nested dicts and lists freeze recursively so
    the result is hashable and compares order-insensitively.  Nested
    mapping values are tagged with :data:`MAPPING_TAG` in their frozen
    form, so :func:`thaw_options` reconstructs lists and dicts without
    ambiguity (a list value whose first element is the tag itself is
    rejected rather than silently re-typed).
    """
    if options is None:
        return ()
    pairs = options.items() if isinstance(options, Mapping) else options
    frozen: Dict[str, Any] = {}
    for key, value in pairs:
        if not isinstance(key, str):
            raise TypeError(f"option keys must be strings, got {key!r}")
        frozen[key] = _freeze_value(value)
    return tuple(sorted(frozen.items()))


def _freeze_value(value: Any) -> Any:
    if isinstance(value, Mapping):
        return (MAPPING_TAG,) + freeze_options(value)
    if isinstance(value, tuple):
        # Tuples only arise from the frozen form (JSON yields lists), so
        # a tagged tuple is an already-frozen mapping: re-freeze its
        # pairs for idempotency.
        if value and value[0] == MAPPING_TAG:
            return (MAPPING_TAG,) + freeze_options(value[1:])
        return tuple(_freeze_value(item) for item in value)
    if isinstance(value, list):
        # A raw *list* beginning with the marker is user data that would
        # be re-typed as a dict on thaw; reject instead of corrupting.
        if value and value[0] == MAPPING_TAG:
            raise ValueError(
                f"option list values must not start with {MAPPING_TAG!r} "
                "(reserved as the frozen-mapping marker)")
        return tuple(_freeze_value(item) for item in value)
    return value


def thaw_options(options: Union[None, FrozenOptions, Mapping[str, Any]]
                 ) -> Dict[str, Any]:
    """Rebuild the plain option dict a factory call consumes.

    The inverse of :func:`freeze_options` for JSON-shaped values
    (tagged nested pair-tuples become dicts again; other tuples become
    lists).
    """
    if options is None:
        return {}
    if isinstance(options, Mapping):
        return {key: _thaw_value(value) for key, value in options.items()}
    return {key: _thaw_value(value) for key, value in options}


def _thaw_value(value: Any) -> Any:
    if isinstance(value, tuple):
        if value and value[0] == MAPPING_TAG:
            return {key: _thaw_value(item) for key, item in value[1:]}
        return [_thaw_value(item) for item in value]
    return value


@dataclass(frozen=True)
class Component:
    """One registered factory and its metadata.

    ``factory`` is any callable producing the component instance; the
    calling convention per kind is documented in DESIGN.md §8 (the
    registration contract).  ``description`` feeds ``python -m repro
    components`` and error messages; ``option_names`` documents the
    factory's recognized options (informational — factories own their
    validation).
    """

    kind: str
    name: str
    factory: Callable[..., Any]
    description: str = ""
    option_names: Tuple[str, ...] = ()


@dataclass
class ComponentRegistry:
    """A mutable table of components, keyed by ``(kind, name)``.

    One process-wide instance (:data:`repro.registry.REGISTRY`) backs
    the scenario API; separate instances exist only for tests.
    """

    _components: Dict[str, Dict[str, Component]] = field(
        default_factory=lambda: {kind: {} for kind in KINDS})

    def _kind_table(self, kind: str) -> Dict[str, Component]:
        # Kinds normalize like names: lookups are case-insensitive.
        key = kind.lower() if isinstance(kind, str) else kind
        try:
            return self._components[key]
        except (KeyError, TypeError):
            raise ValueError(f"unknown component kind {kind!r}; "
                             f"known kinds: {list(KINDS)}") from None

    def register(self, kind: str, name: str,
                 factory: Optional[Callable[..., Any]] = None, *,
                 description: str = "",
                 option_names: Iterable[str] = (),
                 replace: bool = False) -> Callable[..., Any]:
        """Register ``factory`` under ``(kind, name)``.

        Usable directly (``register("traffic", "burst", build_burst)``)
        or as a decorator (``@register("scheduler", "my-policy")``); the
        decorated callable/class is returned unchanged.  A second
        registration of the same name raises unless ``replace=True``
        (explicit override, e.g. swapping a built-in in a test).
        """
        table = self._kind_table(kind)

        def _add(target: Callable[..., Any]) -> Callable[..., Any]:
            key = name.lower()
            if key in table and not replace:
                raise ValueError(
                    f"{kind} component {name!r} is already registered; "
                    "pass replace=True to override it")
            summary = description or (target.__doc__ or "").strip() \
                .split("\n")[0]
            table[key] = Component(kind=kind, name=key, factory=target,
                                   description=summary,
                                   option_names=tuple(option_names))
            return target

        if factory is not None:
            return _add(factory)
        return _add

    def unregister(self, kind: str, name: str) -> None:
        """Remove a registration (primarily for test cleanup)."""
        self._kind_table(kind).pop(name.lower(), None)

    def get(self, kind: str, name: str) -> Component:
        """Look up one component; unknown names list the alternatives."""
        table = self._kind_table(kind)
        key = name.lower() if isinstance(name, str) else name
        component = table.get(key)
        if component is None:
            raise ValueError(f"unknown {kind} component {name!r}; "
                             f"registered: {sorted(table)}")
        return component

    def create(self, kind: str, name: str, *args: Any,
               **kwargs: Any) -> Any:
        """Instantiate a component: ``factory(*args, **kwargs)``."""
        return self.get(kind, name).factory(*args, **kwargs)

    def names(self, kind: str) -> Tuple[str, ...]:
        """Sorted registered names of one kind."""
        return tuple(sorted(self._kind_table(kind)))

    def describe(self, kind: Optional[str] = None) -> List[Component]:
        """All components (of one kind, or every kind), sorted."""
        kinds = (kind,) if kind is not None else KINDS
        out: List[Component] = []
        for k in kinds:
            table = self._kind_table(k)
            out.extend(table[name] for name in sorted(table))
        return out
