"""Deterministic fault injection and resilience (registry kind ``faults``).

Real clusters lose PIM/DRAM channels, stall nodes and time out requests;
fault tolerance is a first-class availability concern in cluster design,
and a serving simulator aimed at production scale needs failure semantics
before it can model a fleet.  This package supplies them in three layers:

* :mod:`repro.faults.plan` — typed fault descriptions and the seeded,
  deterministic :class:`FaultPlan` (a pure function of options + seed,
  so faults replay identically in sweeps and pickled workers);
* :mod:`repro.faults.injector` — the :class:`FaultInjector` runtime the
  serving scheduler polls at iteration boundaries;
* :mod:`repro.faults.resilience` — the :class:`ResiliencePolicy` /
  :class:`ResilienceRuntime` pair wiring deadlines, retry/backoff
  re-admission and shedding through the scheduler and the session's
  executor chain;
* :mod:`repro.faults.chaos` — the ``python -m repro chaos`` harness
  sweeping seeded fault scenarios and asserting conservation invariants.

The plan layer also carries **node-scoped** faults (:class:`NodeDown` /
:class:`NodeDegrade`, built by :func:`make_node_fault_plan` and queried
through the cursor-free :class:`NodeFaultSchedule`) consumed by the
fleet router's health model (:mod:`repro.cluster`), with the fleet-level
chaos sweep in :func:`run_fleet_chaos` (``python -m repro chaos
--fleet``).

The registry component kind is ``faults`` with default ``"none"``, which
materializes to ``None`` — the scheduler then carries no resilience
state and every fault-path branch reduces to one ``is not None`` check,
the same zero-overhead-when-disabled discipline as the event bus.
"""

from repro.faults.chaos import (chaos_spec, fleet_chaos_spec, run_chaos,
                                run_fleet_chaos, verify_fleet,
                                verify_session)
from repro.faults.injector import FaultInjector, NodeFaultSchedule
from repro.faults.plan import (ChannelDegrade, ChannelStall, Fault,
                               FaultPlan, KvFault, NodeDegrade, NodeDown,
                               RequestAbort, make_fault_plan,
                               make_node_fault_plan)
from repro.faults.resilience import (ResiliencePolicy, ResilienceRuntime,
                                     resilient_executor)

__all__ = [
    "ChannelDegrade",
    "ChannelStall",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "KvFault",
    "NodeDegrade",
    "NodeDown",
    "NodeFaultSchedule",
    "RequestAbort",
    "ResiliencePolicy",
    "ResilienceRuntime",
    "chaos_spec",
    "fleet_chaos_spec",
    "make_fault_plan",
    "make_node_fault_plan",
    "resilient_executor",
    "run_chaos",
    "run_fleet_chaos",
    "verify_fleet",
    "verify_session",
]
