"""Runtime that feeds a :class:`~repro.faults.plan.FaultPlan` into serving.

The :class:`FaultInjector` is polled by the iteration scheduler at every
iteration boundary.  It exposes four queries, all pure with respect to
simulated time except for the activation cursor and pending-abort queue:

* :meth:`poll` — faults whose start time has been reached since the last
  poll (for event emission and abort queuing);
* :meth:`latency_penalty` — extra cycles a fault window adds to an
  iteration touching a degraded/stalled channel;
* :meth:`kv_blocked` — whether a channel's KV pool is inside a
  :class:`~repro.faults.plan.KvFault` window;
* :meth:`take_aborts` — running requests a queued
  :class:`~repro.faults.plan.RequestAbort` selects as victims.

Plans are tiny (a handful of faults), so active-window checks are plain
linear scans; the injector only exists at all when ``faults != "none"``,
preserving the zero-overhead default.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.faults.plan import (FaultPlan, KvFault, NodeDegrade, NodeDown,
                               RequestAbort)

__all__ = ["FaultInjector", "NodeFaultSchedule"]


class FaultInjector:
    """Stateful cursor over a time-sorted :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._cursor = 0
        self._pending_aborts: List[RequestAbort] = []

    def poll(self, now: float) -> List[Any]:
        """Return faults newly activated at or before ``now``.

        Each fault is returned exactly once, in start order; aborts are
        additionally queued until :meth:`take_aborts` consumes them.
        """
        fired: List[Any] = []
        faults = self.plan.faults
        while self._cursor < len(faults) and \
                faults[self._cursor].start <= now:
            fault = faults[self._cursor]
            self._cursor += 1
            fired.append(fault)
            if isinstance(fault, RequestAbort):
                self._pending_aborts.append(fault)
        return fired

    def latency_penalty(self, now: float, latency: float,
                        batch: Sequence[Any]) -> float:
        """Extra cycles fault windows add to an iteration of ``latency``.

        Degrade factors compose as the max over active windows touching
        the batch's channels (a derated channel gates the whole
        sub-batch iteration); stall cycles are additive.
        """
        derate = 1.0
        stall = 0.0
        channels = None
        for fault in self.plan.faults:
            if not fault.active(now):
                continue
            channel = getattr(fault, "channel", None)
            if channel is None:
                continue
            factor = getattr(fault, "factor", None)
            cycles = getattr(fault, "stall_cycles", None)
            if factor is None and cycles is None:
                continue
            if channels is None:
                channels = {request.channel for request in batch
                            if request.channel is not None}
            if channel not in channels:
                continue
            if factor is not None and factor > derate:
                derate = factor
            if cycles is not None:
                stall += cycles
        return latency * (derate - 1.0) + stall

    def kv_blocked(self, now: float, channel: int) -> bool:
        """Whether ``channel`` is inside an active KV-fault window."""
        for fault in self.plan.faults:
            if isinstance(fault, KvFault) and fault.channel == channel \
                    and fault.active(now):
                return True
        return False

    def take_aborts(self, now: float, running: Sequence[Any]) -> List[Any]:
        """Consume queued aborts, returning the selected victim requests.

        Victims are picked as ``running[ordinal % len(running)]`` and
        deduplicated; with no running requests the aborts stay queued
        for the next boundary.
        """
        if not self._pending_aborts or not running:
            return []
        victims: List[Any] = []
        seen = set()
        for fault in self._pending_aborts:
            victim = running[fault.ordinal % len(running)]
            if victim.request_id not in seen:
                seen.add(victim.request_id)
                victims.append(victim)
        self._pending_aborts = []
        return victims


class NodeFaultSchedule:
    """Pure time-indexed view of a node-scoped :class:`FaultPlan`.

    The fleet router consults it instead of polling per-iteration: a
    health probe at time ``p`` asks :meth:`down` (is the probed node
    inside a :class:`~repro.faults.plan.NodeDown` window?) and routing
    asks :meth:`degrade_factor` to derate a node's apparent capacity.
    Every query is a pure function of ``(plan, now, node)`` — no
    cursors, no consumed state — so fleet runs stay bit-reproducible
    across stream/batch stepping and repeated runs.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def down(self, now: float, node: int) -> bool:
        """Whether ``node`` is inside an active ``NodeDown`` window."""
        for fault in self.plan.faults:
            if isinstance(fault, NodeDown) and fault.node == node \
                    and fault.active(now):
                return True
        return False

    def degrade_factor(self, now: float, node: int) -> float:
        """Latency derate for ``node`` at ``now`` (1.0 = healthy).

        Factors compose as the max over active windows, matching the
        channel-degrade composition rule of :meth:`FaultInjector.
        latency_penalty`.
        """
        factor = 1.0
        for fault in self.plan.faults:
            if isinstance(fault, NodeDegrade) and fault.node == node \
                    and fault.active(now) and fault.factor > factor:
                factor = fault.factor
        return factor

    def degrades(self, node: int) -> bool:
        """Whether the plan holds any ``NodeDegrade`` window for ``node``."""
        return any(isinstance(fault, NodeDegrade) and fault.node == node
                   for fault in self.plan.faults)

    @property
    def last_end(self) -> float:
        """Exclusive end of the last fault window (0.0 for empty plans)."""
        return max((fault.end for fault in self.plan.faults), default=0.0)
