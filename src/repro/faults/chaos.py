"""Chaos harness: seeded fault sweeps with conservation invariants.

CounterPoint-style methodology (PAPERS.md): the way to trust a model is
to try to *refute* it.  Happy-path bit-identity (the grouping and
streaming equivalence suites) is necessary but not sufficient — this
harness drives :class:`~repro.api.session.Session` through seeded fault
scenarios and checks the invariants that must survive adversarial
conditions:

* **conservation** — every arrival retires exactly once with a terminal
  status (``completed | timed_out | shed | aborted``); the request pool
  drains and no KV block leaks (allocator ledgers consistent and empty);
* **monotonicity** — iteration records never move backwards in time and
  the latency report's per-request timestamps stay ordered even across
  retries and idle-forward jumps;
* **determinism** — for a fixed ``(spec, fault_seed)`` the full
  ``RunResult`` payload is bit-identical across grouping ``auto | off``
  and ``stream | batch`` consumption.

The **fleet** harness extends the same methodology to the cluster tier
(:mod:`repro.cluster`): seeded node-kill schedules against a routed
fleet, asserting the fleet-level invariants — no request lost across
failovers (``admitted == completed + timed_out + shed + aborted``),
bit-identical :class:`~repro.cluster.result.FleetResult` payloads per
``(fleet spec, fault_seed)`` across observed/step-chunked and batch
stepping, and a single-node no-fault fleet reproducing the plain
:class:`~repro.api.session.Session` result bit-for-bit.

Exposed on the CLI as ``python -m repro chaos`` (``--fleet`` for the
cluster tier); the CI ``chaos-smoke`` job runs both on every push.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["chaos_spec", "fleet_chaos_spec", "run_chaos",
           "run_fleet_chaos", "verify_fleet", "verify_session"]

#: Simulated-cycle horizon for arrivals (requests land early, then the
#: batch drains over ~30x this span).
_CHAOS_ARRIVAL_HORIZON = 3e6

#: Simulated-cycle horizon for fault windows — sized to the makespan of
#: the drain (~9e7 cycles) so faults strike live requests.
_CHAOS_FAULT_HORIZON = 6e7

#: Terminal statuses a retired request may carry.
TERMINAL_STATUSES = frozenset(
    {"completed", "timed_out", "shed", "aborted"})


def chaos_spec(fault_seed: int, *, requests: int = 16,
               grouping: str = "auto") -> Any:
    """Build one chaos scenario cell for ``fault_seed``.

    A NeuPIMs system under Poisson traffic with a tight KV budget,
    deadlines, bounded retry and shedding enabled, and a seeded fault
    plan aligned with the traffic horizon — enough pressure that every
    resilience path exercises, small enough to run in well under a
    second per cell.
    """
    from repro.api.spec import ScenarioSpec, ServingSpec, TrafficSpec
    return ScenarioSpec(
        model="gpt3-7b", system="neupims", layers_resident=2,
        fidelity="analytic",
        traffic=TrafficSpec.poisson(
            rate_per_kcycle=0.02, horizon_cycles=_CHAOS_ARRIVAL_HORIZON,
            seed=11, max_requests=requests),
        serving=ServingSpec(
            max_batch_size=8,
            kv_capacity_bytes=1 << 27,
            deadline_cycles=3e7,
            max_retries=1,
            retry_backoff_cycles=2e5,
            shed_wait_cycles=4e7,
            grouping=grouping),
        faults="seeded",
        faults_options={"seed": fault_seed,
                        "horizon": _CHAOS_FAULT_HORIZON,
                        "degrades": 1, "stalls": 1, "kv_faults": 1,
                        "aborts": 1},
        label=f"chaos-{fault_seed}-{grouping}")


def verify_session(session: Any) -> List[str]:
    """Check conservation/monotonicity invariants on a finished session.

    Returns a list of human-readable violations (empty = all hold).
    """
    problems: List[str] = []
    result = session.result()
    arrival_ids = sorted(r.request_id for r in session.arrivals)
    outcome_ids = sorted(r["request_id"] for r in result.requests)
    if arrival_ids != outcome_ids:
        missing = set(arrival_ids) - set(outcome_ids)
        extra = set(outcome_ids) - set(arrival_ids)
        problems.append(
            f"conservation: arrivals != outcomes "
            f"(missing={sorted(missing)}, extra={sorted(extra)})")
    if len(outcome_ids) != len(set(outcome_ids)):
        problems.append("conservation: duplicate request outcome")
    for record in result.requests:
        if record["status"] not in TERMINAL_STATUSES:
            problems.append(
                f"conservation: request {record['request_id']} has "
                f"non-terminal status {record['status']!r}")
    if len(session.pool) != 0:
        problems.append(
            f"conservation: pool not drained ({len(session.pool)} left)")
    previous_end = float("-inf")
    for record in result.records:
        if record["latency"] <= 0:
            problems.append(
                f"monotonicity: iteration {record['index']} has "
                f"non-positive latency {record['latency']}")
        if record["start_time"] < previous_end - 1e-9:
            problems.append(
                f"monotonicity: iteration {record['index']} starts at "
                f"{record['start_time']} before previous end "
                f"{previous_end}")
        previous_end = record["start_time"] + record["latency"]
    try:
        session.latency_tracker.report()
    except ValueError as exc:
        problems.append(f"monotonicity: latency report rejected: {exc}")
    for index, allocator in enumerate(session.allocators or ()):
        if not allocator.ledger_consistent():
            problems.append(f"kv: channel {index} ledger inconsistent")
        if allocator.used_blocks:
            problems.append(
                f"kv: channel {index} leaked {allocator.used_blocks} "
                f"blocks after drain")
    summary = result.resilience
    if summary:
        terminal_total = sum(
            summary.get(key, 0)
            for key in ("completed", "timed_out", "shed", "aborted"))
        if terminal_total != len(arrival_ids):
            problems.append(
                f"conservation: terminal counts sum to {terminal_total} "
                f"for {len(arrival_ids)} arrivals")
    return problems


def run_chaos(seeds: int = 3, *, requests: int = 16) -> Dict[str, Any]:
    """Sweep ``seeds`` fault seeds across grouping and consumption modes.

    For every seed, runs the chaos scenario under grouping ``auto`` and
    ``off``, each consumed both batch (``session.run()``) and streamed
    (``session.stream()``), verifies the invariants on each cell, and
    checks the four ``RunResult`` payloads are bit-identical.  Returns a
    JSON-ready report with per-cell summaries and all violations.
    """
    from repro.api.session import Session
    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    cells: List[Dict[str, Any]] = []
    violations: List[str] = []
    for fault_seed in range(seeds):
        payloads: Dict[str, Dict[str, Any]] = {}
        for grouping in ("auto", "off"):
            for mode in ("batch", "stream"):
                spec = chaos_spec(fault_seed, requests=requests,
                                  grouping=grouping)
                session = Session(spec)
                if mode == "stream":
                    for _ in session.stream():
                        pass
                    result = session.result()
                else:
                    result = session.run()
                for problem in verify_session(session):
                    violations.append(
                        f"seed {fault_seed} {grouping}/{mode}: {problem}")
                summary = result.resilience
                cells.append({
                    "fault_seed": fault_seed,
                    "grouping": grouping,
                    "mode": mode,
                    "requests": len(session.arrivals),
                    "iterations": result.iterations,
                    "completed": summary.get("completed", 0),
                    "timed_out": summary.get("timed_out", 0),
                    "shed": summary.get("shed", 0),
                    "aborted": summary.get("aborted", 0),
                    "retries": summary.get("retries", 0),
                    "faults": summary.get("faults", 0),
                })
                payloads[f"{grouping}/{mode}"] = result.to_dict()
        reference = payloads["auto/batch"]
        for key, payload in payloads.items():
            if payload != reference:
                violations.append(
                    f"seed {fault_seed}: records diverge between "
                    f"auto/batch and {key}")
    return {
        "seeds": seeds,
        "requests_per_cell": requests,
        "cells": cells,
        "violations": violations,
        "invariants": [
            "every arrival retires exactly once with terminal status",
            "pool drained, KV ledgers consistent with zero leaked blocks",
            "iteration records and latency timestamps monotone",
            "records bit-identical across grouping auto|off and "
            "stream|batch for fixed (spec, fault_seed)",
        ],
    }


# ----------------------------------------------------------------------
# Fleet tier.
# ----------------------------------------------------------------------

#: Node-fault horizon for fleet chaos — the fleet makespan is ~6e7
#: cycles, so kills inside 2e7 strike while requests are live.
_FLEET_FAULT_HORIZON = 2e7

#: Routing policies cycled across fault seeds for coverage.
_FLEET_POLICIES = ("round-robin", "least-loaded", "p2c", "affinity")


def fleet_chaos_spec(fault_seed: int, *, nodes: int = 3,
                     requests: int = 24, faults: str = "node-kill") -> Any:
    """Build one fleet chaos cell for ``fault_seed``.

    A homogeneous NeuPIMs fleet under one Poisson stream, each node
    carrying the single-session chaos pressure knobs (tight KV budget,
    deadlines, bounded retry, shedding).  The routing policy cycles with
    the seed for coverage; ``faults="node-kill"`` arms the seeded
    node-down schedule (``"none"`` runs the same fleet fault-free).
    """
    from repro.api.spec import ScenarioSpec, ServingSpec, TrafficSpec
    from repro.cluster.spec import FleetSpec
    if faults not in ("node-kill", "none"):
        raise ValueError(f"unknown fleet fault mode {faults!r}; "
                         f"known: ('node-kill', 'none')")
    node = ScenarioSpec(
        model="gpt3-7b", system="neupims", layers_resident=2,
        fidelity="analytic",
        serving=ServingSpec(
            max_batch_size=8,
            kv_capacity_bytes=1 << 27,
            deadline_cycles=3e7,
            max_retries=1,
            retry_backoff_cycles=2e5,
            shed_wait_cycles=4e7))
    policy = _FLEET_POLICIES[fault_seed % len(_FLEET_POLICIES)]
    policy_options = {"seed": fault_seed} if policy == "p2c" else {}
    fault_kwargs: Dict[str, Any] = {}
    if faults == "node-kill":
        fault_kwargs = {
            "fault_seed": fault_seed,
            "fault_options": {"horizon": _FLEET_FAULT_HORIZON, "downs": 1}}
    return FleetSpec.homogeneous(
        node, nodes,
        traffic=TrafficSpec.poisson(
            rate_per_kcycle=0.02, horizon_cycles=_CHAOS_ARRIVAL_HORIZON,
            seed=11, max_requests=requests),
        policy=policy, policy_options=policy_options,
        label=f"fleet-chaos-{fault_seed}-{faults}",
        **fault_kwargs)


def verify_fleet(router: Any) -> List[str]:
    """Check fleet conservation invariants on a finished router.

    Returns human-readable violations (empty = all hold): every stream
    request carries exactly one terminal status across all failovers,
    the ledger balances, node pools drain, per-node KV ledgers stay
    consistent with zero leaked blocks and iteration records stay
    monotone on every node.
    """
    problems: List[str] = []
    result = router.run()
    stream_ids = sorted(r.request_id for r in router.stream)
    status_ids = sorted(s["request_id"] for s in result.statuses)
    if stream_ids != status_ids:
        missing = set(stream_ids) - set(status_ids)
        extra = set(status_ids) - set(stream_ids)
        problems.append(
            f"conservation: stream != statuses "
            f"(missing={sorted(missing)}, extra={sorted(extra)})")
    if len(status_ids) != len(set(status_ids)):
        problems.append("conservation: duplicate request status")
    for entry in result.statuses:
        if entry["status"] not in TERMINAL_STATUSES:
            problems.append(
                f"conservation: request {entry['request_id']} has "
                f"non-terminal status {entry['status']!r}")
    if not result.conserved():
        problems.append(f"conservation: ledger unbalanced {result.ledger}")
    for handle in router.handles:
        session = handle.session
        label = f"node {handle.index}"
        if len(session.pool) != 0:
            problems.append(f"{label}: pool not drained "
                            f"({len(session.pool)} left)")
        for index, allocator in enumerate(session.allocators or ()):
            if not allocator.ledger_consistent():
                problems.append(
                    f"{label}: channel {index} ledger inconsistent")
            if allocator.used_blocks:
                problems.append(
                    f"{label}: channel {index} leaked "
                    f"{allocator.used_blocks} blocks after drain")
        previous_end = float("-inf")
        node_result = session.result()
        for record in node_result.records:
            if record["latency"] <= 0:
                problems.append(
                    f"{label}: iteration {record['index']} has "
                    f"non-positive latency {record['latency']}")
            if record["start_time"] < previous_end - 1e-9:
                problems.append(
                    f"{label}: iteration {record['index']} starts at "
                    f"{record['start_time']} before previous end "
                    f"{previous_end}")
            previous_end = record["start_time"] + record["latency"]
        try:
            session.latency_tracker.report()
        except ValueError as exc:
            problems.append(f"{label}: latency report rejected: {exc}")
    return problems


def run_fleet_chaos(seeds: int = 3, *, nodes: int = 3, requests: int = 24,
                    faults: str = "node-kill") -> Dict[str, Any]:
    """Sweep seeded node-kill schedules against a routed fleet.

    For every fault seed, runs the fleet cell twice — plain batch
    stepping, then step-chunked (``max_group_steps=1``) with fleet and
    node event observers attached — verifies the conservation
    invariants on each, and checks the two
    :class:`~repro.cluster.result.FleetResult` payloads are
    bit-identical (group-commit chunking and live observers must not
    change outcomes).  Each sweep also pins the single-node equivalence
    anchor: a 1-node no-fault fleet whose node result must be
    bit-identical to running the node's spec through a plain
    :class:`~repro.api.session.Session`.  Returns a JSON-ready report.
    """
    from repro.api.session import Session
    from repro.cluster.result import run_fleet
    from repro.cluster.router import Router
    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    cells: List[Dict[str, Any]] = []
    violations: List[str] = []
    for fault_seed in range(seeds):
        payloads: Dict[str, Dict[str, Any]] = {}
        for mode in ("batch", "stream"):
            fleet = fleet_chaos_spec(fault_seed, nodes=nodes,
                                     requests=requests, faults=faults)
            router = Router(fleet)
            observed: List[Any] = []
            if mode == "stream":
                router.max_group_steps = 1
                router.materialize()
                router.events.subscribe(None, observed.append)
                for handle in router.handles:
                    handle.session.events.subscribe(None, observed.append)
            result = router.run()
            for problem in verify_fleet(router):
                violations.append(f"seed {fault_seed} {mode}: {problem}")
            cells.append({
                "fault_seed": fault_seed,
                "policy": fleet.policy,
                "mode": mode,
                "faults": faults,
                "nodes": nodes,
                "events_observed": len(observed),
                **{key: result.ledger.get(key, 0)
                   for key in ("requests", "completed", "timed_out",
                               "shed", "aborted", "failed_over")},
            })
            payloads[mode] = result.to_dict()
        if payloads["stream"] != payloads["batch"]:
            violations.append(
                f"seed {fault_seed}: fleet payloads diverge between "
                f"batch and step-chunked stream runs")
        single = fleet_chaos_spec(fault_seed, nodes=1, requests=requests,
                                  faults="none")
        single_result = run_fleet(single)
        plain_spec = single.nodes[0].override(traffic=single.traffic)
        plain = Session(plain_spec).run()
        if single_result.nodes[0].to_dict() != plain.to_dict():
            violations.append(
                f"seed {fault_seed}: 1-node fleet result diverges from "
                f"plain Session run")
    return {
        "seeds": seeds,
        "nodes": nodes,
        "requests_per_cell": requests,
        "faults": faults,
        "cells": cells,
        "violations": violations,
        "invariants": [
            "no request lost: admitted == completed + timed_out + shed "
            "+ aborted across failovers",
            "node pools drained, KV ledgers consistent, zero leaked "
            "blocks on every node",
            "fleet payload bit-identical per (fleet spec, fault_seed) "
            "across batch and step-chunked/observed stepping",
            "1-node round-robin fleet == plain Session, bit-identical",
        ],
    }
