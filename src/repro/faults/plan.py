"""Typed fault descriptions and seeded, deterministic fault plans.

A :class:`FaultPlan` is a *pure function* of ``(options, seed)``:
building the same plan twice — in this process, inside a pickled sweep
worker, or in a replayed session — yields identical faults at identical
simulated times.  Nothing here reads wall clocks or global RNG state, so
runs under fault injection stay bit-reproducible; the chaos harness
(:mod:`repro.faults.chaos`) pins that contract across grouping modes and
stream/batch consumption.

The taxonomy mirrors the failure modes a NeuPIMs-style NPU+PIM node
actually exhibits: transient per-channel degradation (a PIM/DRAM channel
running derated or stalling), KV-allocation windows where a channel's
paged KV pool refuses new blocks, and outright request aborts (client
disconnects, upstream cancellations).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "ChannelDegrade",
    "ChannelStall",
    "Fault",
    "FaultPlan",
    "KvFault",
    "NodeDegrade",
    "NodeDown",
    "RequestAbort",
    "make_fault_plan",
    "make_node_fault_plan",
]

#: Fraction-of-horizon bounds used by :func:`make_fault_plan` when
#: drawing fault windows; kept module-level so the plan geometry is easy
#: to audit and deterministic for a fixed seed.
_WINDOW_START_FRAC = (0.05, 0.70)
_WINDOW_LENGTH_FRAC = (0.05, 0.25)
_DEGRADE_FACTOR_RANGE = (1.25, 2.5)
_STALL_FRAC = (0.002, 0.01)
#: Node-outage windows are longer than channel windows: a node must stay
#: dark across several health probes before the router convicts it.
_NODE_DOWN_LENGTH_FRAC = (0.10, 0.30)


@dataclass(frozen=True)
class Fault:
    """Base fault: active on the half-open window ``[start, end)``.

    Subclasses add the typed payload (channel, derate factor, ...); the
    base class only fixes the temporal extent, in simulated cycles.
    """

    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"fault start must be >= 0, got {self.start}")
        if self.duration < 0:
            raise ValueError(
                f"fault duration must be >= 0, got {self.duration}")

    @property
    def end(self) -> float:
        """Exclusive end of the fault window in cycles."""
        return self.start + self.duration

    def active(self, now: float) -> bool:
        """Whether the fault is in effect at simulated time ``now``."""
        return self.start <= now < self.end

    def describe(self) -> str:
        """Short stable kind tag (the class name) for events/reports."""
        return type(self).__name__


@dataclass(frozen=True)
class ChannelDegrade(Fault):
    """A PIM/DRAM channel runs derated: iteration latency × ``factor``.

    Applied by the injector to any iteration whose batch touches
    ``channel`` while the window is active; ``factor`` >= 1.
    """

    channel: int = 0
    factor: float = 1.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor < 1.0:
            raise ValueError(
                f"degrade factor must be >= 1, got {self.factor}")


@dataclass(frozen=True)
class ChannelStall(Fault):
    """A channel stalls: ``stall_cycles`` added per touching iteration."""

    channel: int = 0
    stall_cycles: float = 1e5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.stall_cycles < 0:
            raise ValueError(
                f"stall_cycles must be >= 0, got {self.stall_cycles}")


@dataclass(frozen=True)
class KvFault(Fault):
    """KV allocations on ``channel`` fail while the window is active.

    The scheduler treats a blocked channel exactly like allocator
    pressure: admission skips it and mid-generation growth triggers the
    KV-pressure path (retry under resilience, early finish otherwise).
    """

    channel: int = 0


@dataclass(frozen=True)
class NodeDown(Fault):
    """A whole fleet node is dark on ``[start, end)``.

    Node-scoped (the ``node`` index addresses a fleet member, not a
    memory channel): the router's health probes fail while the window is
    active, so after ``fail_threshold`` consecutive failures the node is
    marked down and its pooled requests fail over.  The node itself
    keeps whatever simulated state it had — outage is a *routing* fact,
    which is exactly how the cluster tier models it.
    """

    node: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.node < 0:
            raise ValueError(f"node must be >= 0, got {self.node}")


@dataclass(frozen=True)
class NodeDegrade(Fault):
    """A fleet node runs derated: iteration latency × ``factor``.

    Unlike :class:`ChannelDegrade` (one memory channel of one node) this
    slows every iteration the node executes while the window is active;
    the router also derates the node's apparent capacity so load-aware
    policies steer traffic away from it.
    """

    node: int = 0
    factor: float = 1.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.node < 0:
            raise ValueError(f"node must be >= 0, got {self.node}")
        if self.factor < 1.0:
            raise ValueError(
                f"degrade factor must be >= 1, got {self.factor}")


@dataclass(frozen=True)
class RequestAbort(Fault):
    """Abort one running request at the first boundary past ``start``.

    ``ordinal`` selects the victim as ``running[ordinal % len(running)]``
    so the choice is deterministic yet varies with the plan seed.  The
    ``duration`` field is unused (aborts are point events); it stays for
    the common ``Fault`` shape.
    """

    ordinal: int = 0


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-sorted schedule of typed faults.

    Construct via :func:`make_fault_plan` for the seeded path; direct
    construction with hand-written faults is supported for tests.
    """

    seed: int
    faults: Tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.faults, key=lambda f: f.start))
        object.__setattr__(self, "faults", ordered)

    def __len__(self) -> int:
        return len(self.faults)


def make_fault_plan(seed: int, channels: int, *, horizon: float = 2e7,
                    degrades: int = 1, stalls: int = 1, kv_faults: int = 1,
                    aborts: int = 0) -> FaultPlan:
    """Draw a deterministic :class:`FaultPlan` from a seed.

    ``channels`` is the number of PIM/DRAM channels the target system
    exposes (fault channels are drawn uniformly from it) and ``horizon``
    the simulated-cycle span faults may start in — align it with the
    traffic horizon so faults overlap live requests.  The counts select
    how many faults of each kind to draw.  Everything is derived from a
    private ``random.Random(seed)``, so the result is a pure function of
    the arguments.
    """
    if channels < 1:
        raise ValueError(f"channels must be >= 1, got {channels}")
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    for name, count in (("degrades", degrades), ("stalls", stalls),
                        ("kv_faults", kv_faults), ("aborts", aborts)):
        if count < 0:
            raise ValueError(f"{name} must be >= 0, got {count}")
    rng = random.Random(int(seed))

    def window() -> Tuple[float, float]:
        start = rng.uniform(*_WINDOW_START_FRAC) * horizon
        duration = rng.uniform(*_WINDOW_LENGTH_FRAC) * horizon
        return start, duration

    faults = []
    for _ in range(degrades):
        start, duration = window()
        faults.append(ChannelDegrade(
            start=start, duration=duration,
            channel=rng.randrange(channels),
            factor=rng.uniform(*_DEGRADE_FACTOR_RANGE)))
    for _ in range(stalls):
        start, duration = window()
        faults.append(ChannelStall(
            start=start, duration=duration,
            channel=rng.randrange(channels),
            stall_cycles=rng.uniform(*_STALL_FRAC) * horizon))
    for _ in range(kv_faults):
        start, duration = window()
        faults.append(KvFault(
            start=start, duration=duration,
            channel=rng.randrange(channels)))
    for _ in range(aborts):
        start, _ = window()
        faults.append(RequestAbort(
            start=start, duration=0.0, ordinal=rng.randrange(8)))
    return FaultPlan(seed=int(seed), faults=tuple(faults))


def make_node_fault_plan(seed: int, nodes: int, *, horizon: float = 2e7,
                         downs: int = 1, degrades: int = 0) -> FaultPlan:
    """Draw a deterministic node-scoped :class:`FaultPlan` from a seed.

    The fleet analogue of :func:`make_fault_plan`: ``nodes`` is the
    fleet size (fault nodes are drawn uniformly from it), ``downs`` and
    ``degrades`` count the :class:`NodeDown` / :class:`NodeDegrade`
    windows to draw inside ``horizon``.  Same pure-seeded discipline —
    everything derives from a private ``random.Random(seed)``, so a
    ``(fleet spec, fault_seed)`` pair replays bit-identically.
    """
    if nodes < 1:
        raise ValueError(f"nodes must be >= 1, got {nodes}")
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    for name, count in (("downs", downs), ("degrades", degrades)):
        if count < 0:
            raise ValueError(f"{name} must be >= 0, got {count}")
    rng = random.Random(int(seed))
    faults = []
    for _ in range(downs):
        start = rng.uniform(*_WINDOW_START_FRAC) * horizon
        duration = rng.uniform(*_NODE_DOWN_LENGTH_FRAC) * horizon
        faults.append(NodeDown(start=start, duration=duration,
                               node=rng.randrange(nodes)))
    for _ in range(degrades):
        start = rng.uniform(*_WINDOW_START_FRAC) * horizon
        duration = rng.uniform(*_WINDOW_LENGTH_FRAC) * horizon
        faults.append(NodeDegrade(
            start=start, duration=duration, node=rng.randrange(nodes),
            factor=rng.uniform(*_DEGRADE_FACTOR_RANGE)))
    return FaultPlan(seed=int(seed), faults=tuple(faults))
