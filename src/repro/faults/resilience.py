"""Resilience policy and the runtime shared by session and scheduler.

The mechanisms that absorb injected (or organic) failures live here:

* :class:`ResiliencePolicy` — the frozen knobs from
  ``ScenarioSpec.serving``: per-request deadlines, bounded retry with
  exponential backoff, and graceful-degradation shedding of requests
  that waited too long for admission;
* :class:`ResilienceRuntime` — the mutable state threaded between the
  :class:`~repro.serving.scheduler.IterationScheduler` (which detects
  timeouts and re-admits retries through the
  :class:`~repro.serving.preemption.PreemptingAllocatorPool` restore
  machinery) and the session's executor chain (which applies fault
  latency penalties and owed restore cycles);
* :func:`resilient_executor` — the executor shim.  It composes *inside*
  ``LatencyTracker.wrap`` so penalty cycles move the latency clock
  exactly like device cycles — the tracker and the scheduler's ``_now``
  never diverge.

A session only constructs a runtime when ``faults != "none"`` or a
resilience knob is set; the default path carries no runtime and the
scheduler's fault branches reduce to ``resilience is not None`` checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence

from repro.faults.injector import FaultInjector
from repro.serving.preemption import PreemptingAllocatorPool

__all__ = ["ResiliencePolicy", "ResilienceRuntime", "resilient_executor"]


@dataclass(frozen=True)
class ResiliencePolicy:
    """Frozen resilience knobs (mirrors ``ScenarioSpec.serving``).

    ``deadline_cycles`` bounds how long a *running* request may go
    without completing before it times out (measured from arrival, or
    from its re-admission time after a retry); ``max_retries`` bounds
    re-admissions per request; ``retry_backoff_cycles`` is the base of
    the exponential backoff applied to retry arrival times;
    ``shed_wait_cycles`` sheds waiting requests that were never admitted
    within the window (graceful degradation under KV pressure).
    """

    deadline_cycles: Optional[float] = None
    max_retries: int = 0
    retry_backoff_cycles: float = 0.0
    shed_wait_cycles: Optional[float] = None

    def __post_init__(self) -> None:
        if self.deadline_cycles is not None and self.deadline_cycles <= 0:
            raise ValueError(
                f"deadline_cycles must be > 0, got {self.deadline_cycles}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff_cycles < 0:
            raise ValueError(f"retry_backoff_cycles must be >= 0, "
                             f"got {self.retry_backoff_cycles}")
        if self.shed_wait_cycles is not None and self.shed_wait_cycles <= 0:
            raise ValueError(
                f"shed_wait_cycles must be > 0, got {self.shed_wait_cycles}")

    @property
    def active(self) -> bool:
        """Whether any resilience mechanism is enabled."""
        return (self.deadline_cycles is not None or self.max_retries > 0
                or self.shed_wait_cycles is not None)


class ResilienceRuntime:
    """Mutable fault/resilience state shared across the serving stack.

    The scheduler writes ``now`` before invoking the executor and calls
    :meth:`charge` when a retried request is re-admitted (its
    swap/recompute restore cost); the executor shim drains the owed
    cycles and adds fault latency penalties.  ``counters`` accumulates
    the taxonomy surfaced in ``RunResult.resilience``.
    """

    def __init__(self, policy: ResiliencePolicy,
                 injector: Optional[FaultInjector] = None,
                 preempting: Optional[PreemptingAllocatorPool] = None
                 ) -> None:
        self.policy = policy
        self.injector = injector
        self.preempting = preempting
        self.now = 0.0
        self.pending_cycles = 0.0
        self.counters: Dict[str, int] = {
            "faults": 0, "timeouts": 0, "retries": 0,
            "timed_out": 0, "shed": 0, "aborted": 0,
        }
        #: Retry attempts so far, keyed by request id.
        self.attempts: Dict[int, int] = {}
        #: Deadline epoch per request (arrival, re-based on each retry).
        self.deadline_base: Dict[int, float] = {}

    def charge(self, cycles: float) -> None:
        """Owe ``cycles`` (e.g. a restore cost) to the next iteration."""
        self.pending_cycles += cycles

    def retry_delay(self, attempt: int) -> float:
        """Exponential backoff delay for 1-based retry ``attempt``."""
        return self.policy.retry_backoff_cycles * (2.0 ** (attempt - 1))

    def apply(self, latency: float, batch: Sequence[Any]) -> float:
        """Penalized latency for one iteration of base ``latency``."""
        extra = self.pending_cycles
        self.pending_cycles = 0.0
        if self.injector is not None:
            extra += self.injector.latency_penalty(self.now, latency, batch)
        return latency + extra


def resilient_executor(runtime: ResilienceRuntime,
                       inner: Callable[[Sequence[Any]], float]
                       ) -> Callable[[Sequence[Any]], float]:
    """Wrap a batch executor with fault penalties and owed cycles.

    Compose this *inside* ``LatencyTracker.wrap`` so the penalty is part
    of the iteration latency the tracker observes.
    """
    def run(batch: Sequence[Any]) -> float:
        """Execute one batch and apply the runtime's latency penalties."""
        return runtime.apply(inner(batch), batch)
    return run
