"""Interned GEMV command streams.

Serving workloads lower the same GEMV shapes over and over: every request
of a given sequence length produces identical logit/attend command streams
(commands are frozen dataclasses, so sharing them between controllers is
safe).  Stream construction for a 4096x4096 fine-grained GEMV materializes
10k+ :class:`~repro.dram.commands.Command` objects; interning it makes the
second and later builds free.

Streams are keyed by every input that shapes them: the GEMV dimensions,
the HBM organization, the element width, the encoding and the base row.
A mutated (replaced) :class:`~repro.dram.timing.HbmOrganization` hashes
differently and misses.
"""

from __future__ import annotations

from typing import Tuple

from repro.dram.commands import Command
from repro.dram.timing import HbmOrganization
from repro.perf.cache import cache
from repro.pim.gemv import GemvOp, composite_stream, fine_grained_stream

#: Registry name of the stream intern table.
STREAM_CACHE = "gemv_streams"

#: Total commands the intern table may retain.  Streams vary from a few
#: commands (composite) to 10k+ (large fine-grained GEMVs), so the bound
#: is weight-based — by retained command count, ~50 MB worst case — not
#: entry-based; one-shot shape sweeps cannot pin memory indefinitely.
STREAM_COMMAND_BUDGET = 1 << 18

# Created at import so the weight-based bound is configured before any
# caller can instantiate the table by bare name.
_STREAMS = cache(STREAM_CACHE, max_entries=4096,
                 max_weight=STREAM_COMMAND_BUDGET, weight=len)


def interned_stream(op: GemvOp, org: HbmOrganization, *,
                    composite: bool = True, dtype_bytes: int = 2,
                    base_row: int = 0) -> Tuple[Command, ...]:
    """The command stream for ``op``, interned as an immutable tuple.

    The operation *tag* is part of the key (it is stamped into each
    command's ``meta``), so identically shaped GEMVs with different tags
    intern separately while repeated requests of one tagged shape share.
    """
    key = (op.rows, op.cols, op.tag, org, composite, dtype_bytes, base_row)
    builder = composite_stream if composite else fine_grained_stream

    def build() -> Tuple[Command, ...]:
        return tuple(builder(op, org, dtype_bytes, base_row))

    return _STREAMS.get_or_compute(key, build)


def gemv_stream(rows: int, cols: int, org: HbmOrganization, *,
                tag: str = "", composite: bool = True, dtype_bytes: int = 2,
                base_row: int = 0) -> Tuple[Command, ...]:
    """Convenience wrapper building the :class:`GemvOp` inline."""
    return interned_stream(GemvOp(rows=rows, cols=cols, tag=tag), org,
                           composite=composite, dtype_bytes=dtype_bytes,
                           base_row=base_row)
