"""Keyed, invalidatable caches shared by the performance fast paths.

The command-level simulation and the serving stack recompute a lot of
pure-function results: GEMV command streams for identical shapes,
:func:`repro.pim.engine.calibrate` for identical hardware configs,
Algorithm-1 estimates for identical sequence lengths.  This module is the
one place those memoizations live, so they can be inspected
(:func:`cache_info`) and dropped (:func:`invalidate`) uniformly.

Keys must capture *every* input of the cached computation.  The hardware
parameter dataclasses (:class:`~repro.dram.timing.TimingParams`,
:class:`~repro.dram.timing.HbmOrganization`,
:class:`~repro.dram.timing.PimTiming`, :class:`~repro.model.spec.ModelSpec`)
are frozen and hash by value, so a config that differs in any field —
e.g. an ``HbmOrganization`` with a different page size — naturally misses.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Optional


class KeyedCache:
    """A named memo table with hit/miss accounting and size bounds.

    Eviction is FIFO (oldest insertion first) and is driven by two
    independent bounds: an entry count, and optionally a total *weight*
    computed per value (e.g. ``len`` for interned command streams, so the
    bound tracks retained commands rather than entry count — one 10k-
    command stream weighs what it costs).
    """

    def __init__(self, name: str, max_entries: int = 4096,
                 max_weight: Optional[float] = None,
                 weight: Optional[Callable[[Any], float]] = None) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if max_weight is not None and max_weight <= 0:
            raise ValueError("max_weight must be positive")
        self.name = name
        self.max_entries = max_entries
        self.max_weight = max_weight
        self.hits = 0
        self.misses = 0
        #: bumped on every clear(); lets write-through L1 mirrors (e.g.
        #: :class:`repro.perf.calibration.MemoizedEstimator`) detect
        #: invalidation without re-keying the shared table per lookup
        self.generation = 0
        self._weight_fn = weight
        self._entries: Dict[Hashable, Any] = {}
        self._weights: Dict[Hashable, float] = {}
        self._total_weight = 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def _evict_oldest(self) -> None:
        oldest = next(iter(self._entries))
        del self._entries[oldest]
        self._total_weight -= self._weights.pop(oldest, 0.0)

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on a miss."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            value = compute()
            weight = (float(self._weight_fn(value))
                      if self._weight_fn is not None else 0.0)
            if self.max_weight is not None and weight > self.max_weight:
                # Heavier than the whole budget: caching it would flush
                # everything and still bust the bound — hand it back
                # uncached instead.
                return value
            while self._entries and (
                    len(self._entries) >= self.max_entries
                    or (self.max_weight is not None
                        and self._total_weight + weight > self.max_weight)):
                self._evict_oldest()
            self._entries[key] = value
            if weight:
                self._weights[key] = weight
                self._total_weight += weight
            return value
        self.hits += 1
        return value

    def clear(self) -> None:
        """Drop all entries (hit/miss counters are kept)."""
        self._entries.clear()
        self._weights.clear()
        self._total_weight = 0.0
        self.generation += 1

    def info(self) -> Dict[str, float]:
        """Size, weight and hit/miss counters, for diagnostics and tests."""
        return {"size": len(self._entries), "hits": self.hits,
                "misses": self.misses, "weight": self._total_weight}


_REGISTRY: Dict[str, KeyedCache] = {}


def cache(name: str, max_entries: int = 4096,
          max_weight: Optional[float] = None,
          weight: Optional[Callable[[Any], float]] = None) -> KeyedCache:
    """Get or create the registry cache called ``name``.

    Configuration parameters apply on creation only; later lookups by
    name return the existing instance unchanged.
    """
    existing = _REGISTRY.get(name)
    if existing is None:
        existing = _REGISTRY[name] = KeyedCache(name, max_entries,
                                                max_weight, weight)
    return existing


def invalidate(name: Optional[str] = None) -> None:
    """Clear one named cache, or every registered cache."""
    if name is not None:
        target = _REGISTRY.get(name)
        if target is not None:
            target.clear()
        return
    for entry in _REGISTRY.values():
        entry.clear()


def cache_info() -> Dict[str, Dict[str, float]]:
    """Size/hit/miss summary of every registered cache, by name."""
    return {name: entry.info() for name, entry in sorted(_REGISTRY.items())}
