"""Cached hardware calibration and memoized Algorithm-1 estimates.

:func:`repro.pim.engine.calibrate` replays command-level GEMVs to measure
``L_tile`` / ``L_GWRITE`` — worth doing once per hardware configuration,
not once per caller.  Likewise the Algorithm-1 estimator is a pure
function of ``(spec, org, latencies, seq_len)``; the serving loop asks for
the same sequence lengths thousands of times per run.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.estimator import MhaLatencyEstimator
from repro.dram.timing import (DEFAULT_ORGANIZATION, DEFAULT_PIM_TIMING,
                               DEFAULT_TIMING, HbmOrganization, PimTiming,
                               TimingParams)
from repro.perf.cache import cache
from repro.pim.engine import CalibratedLatencies, calibrate

#: Registry names for the two memo tables.
CALIBRATION_CACHE = "pim_calibration"
ESTIMATE_CACHE = "mha_estimates"


def cached_calibrate(timing: Optional[TimingParams] = None,
                     org: Optional[HbmOrganization] = None,
                     pim_timing: Optional[PimTiming] = None,
                     dtype_bytes: int = 2) -> CalibratedLatencies:
    """Command-level calibration, memoized per hardware configuration."""
    timing = timing or DEFAULT_TIMING
    org = org or DEFAULT_ORGANIZATION
    pim_timing = pim_timing or DEFAULT_PIM_TIMING
    table = cache(CALIBRATION_CACHE)
    key = (timing, org, pim_timing, dtype_bytes)
    return table.get_or_compute(
        key, lambda: calibrate(timing, org, pim_timing, dtype_bytes))


class MemoizedEstimator:
    """Wraps an :class:`MhaLatencyEstimator` with a per-seq-len memo.

    Exposes the same interface (``spec`` / ``org`` / ``latencies`` and the
    latency methods), so it drops into the bin packer, the device model and
    the scheduler unchanged.  Entries live in the shared ``mha_estimates``
    registry cache keyed by the estimator's frozen inputs plus the
    sequence length, so two estimators over equal configurations share
    entries and :func:`repro.perf.cache.invalidate` clears them all.
    """

    __slots__ = ("inner", "_table", "_base_key", "_l1", "_l1_generation")

    #: safety bound on the per-instance mirror (distinct seq_lens)
    _L1_MAX = 1 << 16

    def __init__(self, inner: MhaLatencyEstimator) -> None:
        # Unwrap to keep double memoization from stacking.
        if isinstance(inner, MemoizedEstimator):
            inner = inner.inner
        self.inner = inner
        self._table = cache(ESTIMATE_CACHE, max_entries=1 << 16)
        # The estimator type is part of the key: a subclass overriding
        # estimate() must not share entries with the base implementation
        # even when the frozen inputs are equal.
        self._base_key = (type(inner), inner.spec, inner.org,
                          inner.latencies)
        # Write-through seq_len -> estimate mirror of this instance's
        # slice of the shared table.  The shared key is a nested tuple of
        # frozen dataclasses whose hash is recomputed per lookup — too
        # expensive for the serving loop, which estimates every resident
        # request every iteration.  The mirror is flushed whenever the
        # shared table's generation moves (i.e. on invalidate()), so the
        # registry keeps its uniform-invalidation contract.
        self._l1: dict = {}
        self._l1_generation = self._table.generation

    @property
    def spec(self):
        """The wrapped estimator's model spec."""
        return self.inner.spec

    @property
    def org(self):
        """The wrapped estimator's HBM organization."""
        return self.inner.org

    @property
    def latencies(self):
        """The wrapped estimator's calibrated latencies."""
        return self.inner.latencies

    def logit_latency(self, seq_len: int) -> float:
        """Uncached pass-through of the logit GEMV latency."""
        return self.inner.logit_latency(seq_len)

    def attend_latency(self, seq_len: int) -> float:
        """Uncached pass-through of the attend GEMV latency."""
        return self.inner.attend_latency(seq_len)

    def estimate(self, seq_len: int) -> float:
        """Memoized total MHA latency for one request (Algorithm 1)."""
        table = self._table
        if self._l1_generation != table.generation:
            self._l1.clear()
            self._l1_generation = table.generation
        value = self._l1.get(seq_len)
        if value is not None:
            # Mirror hits count as memo hits so the registry's accounting
            # stays meaningful.
            table.hits += 1
            return value
        value = table.get_or_compute(
            (self._base_key, seq_len),
            lambda: self.inner.estimate(seq_len))
        if len(self._l1) >= self._L1_MAX:
            self._l1.clear()
        self._l1[seq_len] = value
        return value

    def estimate_batch(self, seq_lens: Iterable[int]) -> float:
        """Sum of memoized estimates (Algorithm 2's load metric)."""
        estimate = self.estimate
        return sum(estimate(s) for s in seq_lens)


def memoized_estimator(estimator: MhaLatencyEstimator) -> MemoizedEstimator:
    """Memoize ``estimator`` (idempotent — re-wrapping is a no-op)."""
    if isinstance(estimator, MemoizedEstimator):
        return estimator
    return MemoizedEstimator(estimator)
