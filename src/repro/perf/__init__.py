"""Cross-layer performance subsystem: memoization and interning.

Three caches back the serving-scale fast paths (see DESIGN.md):

* :mod:`repro.perf.streams` interns GEMV command streams per
  ``(shape, organization, encoding, dtype)``;
* :mod:`repro.perf.calibration` caches command-level calibration per
  hardware configuration and memoizes Algorithm-1 estimates per sequence
  length;
* :mod:`repro.perf.cache` is the shared keyed-cache registry with
  uniform invalidation and hit/miss accounting.
"""

from repro.perf.cache import KeyedCache, cache, cache_info, invalidate
from repro.perf.calibration import (CALIBRATION_CACHE, ESTIMATE_CACHE,
                                    MemoizedEstimator, cached_calibrate,
                                    memoized_estimator)
from repro.perf.streams import STREAM_CACHE, gemv_stream, interned_stream

__all__ = [
    "KeyedCache",
    "cache",
    "cache_info",
    "invalidate",
    "CALIBRATION_CACHE",
    "ESTIMATE_CACHE",
    "MemoizedEstimator",
    "cached_calibrate",
    "memoized_estimator",
    "STREAM_CACHE",
    "gemv_stream",
    "interned_stream",
]
