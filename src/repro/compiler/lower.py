"""Lowering: model specification -> IR -> device instruction binaries.

Mirrors the NeuPIMs compiler pipeline: the front-end builds the decoder
block IR for a batch (with selective batching — batched GEMMs, per-request
GEMVs); the backend tiles GEMMs for the systolic arrays and lowers GEMVs
to PIM command streams (composite or fine-grained encoding per the system
specification).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.compiler.ir import IrModule, IrOp, IrOpKind, TensorShape
from repro.core.config import NeuPimsConfig
from repro.dram.commands import Command
from repro.model.layers import ffn_gemms, projection_gemm, qkv_generation_gemm
from repro.model.spec import ModelSpec
from repro.npu.systolic import SystolicConfig, schedule_gemm
from repro.pim.gemv import GemvOp, composite_stream, fine_grained_stream


def lower_model(spec: ModelSpec, seq_lens: Sequence[int], tp: int = 1,
                num_layers: Optional[int] = None
                ) -> IrModule:
    """Front-end: build the generation-phase IR for one batch."""
    if not seq_lens:
        raise ValueError("empty batch")
    layers = spec.num_layers if num_layers is None else num_layers
    module = IrModule(model_name=spec.name)
    batch = len(seq_lens)
    dtype = spec.dtype_bytes
    heads = spec.num_heads

    for layer in range(layers):
        qkv = qkv_generation_gemm(spec, batch, tp)
        module.append(IrOp(
            name=f"qkv_generation.l{layer}", kind=IrOpKind.GEMM, layer=layer,
            inputs=(TensorShape((qkv.m, qkv.k), dtype),
                    TensorShape((qkv.k, qkv.n), dtype)),
            outputs=(TensorShape((qkv.m, qkv.n), dtype),),
        ))
        for idx, seq_len in enumerate(seq_lens):
            module.append(IrOp(
                name=f"logit.l{layer}.r{idx}", kind=IrOpKind.GEMV, layer=layer,
                request_index=idx,
                inputs=(TensorShape((seq_len * heads, spec.head_dim), dtype),
                        TensorShape((spec.head_dim,), dtype)),
                outputs=(TensorShape((seq_len * heads,), dtype),),
            ))
            module.append(IrOp(
                name=f"softmax.l{layer}.r{idx}", kind=IrOpKind.SOFTMAX,
                layer=layer, request_index=idx,
                inputs=(TensorShape((seq_len * heads,), dtype),),
                outputs=(TensorShape((seq_len * heads,), dtype),),
            ))
            module.append(IrOp(
                name=f"attend.l{layer}.r{idx}", kind=IrOpKind.GEMV, layer=layer,
                request_index=idx,
                inputs=(TensorShape((spec.head_dim * heads, seq_len), dtype),
                        TensorShape((seq_len,), dtype)),
                outputs=(TensorShape((spec.head_dim * heads,), dtype),),
            ))
        proj = projection_gemm(spec, batch, tp)
        module.append(IrOp(
            name=f"projection.l{layer}", kind=IrOpKind.GEMM, layer=layer,
            inputs=(TensorShape((proj.m, proj.k), dtype),
                    TensorShape((proj.k, proj.n), dtype)),
            outputs=(TensorShape((proj.m, proj.n), dtype),),
        ))
        for i, ffn in enumerate(ffn_gemms(spec, batch, tp)):
            module.append(IrOp(
                name=f"ffn{i + 1}.l{layer}", kind=IrOpKind.GEMM, layer=layer,
                inputs=(TensorShape((ffn.m, ffn.k), dtype),
                        TensorShape((ffn.k, ffn.n), dtype)),
                outputs=(TensorShape((ffn.m, ffn.n), dtype),),
            ))
        if tp > 1:
            module.append(IrOp(
                name=f"allreduce.l{layer}", kind=IrOpKind.ALLREDUCE,
                layer=layer,
                inputs=(TensorShape((batch, spec.d_model), dtype),),
                outputs=(TensorShape((batch, spec.d_model), dtype),),
            ))
    module.validate()
    return module


# ----------------------------------------------------------------------
# Backend: instruction emission.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class NpuInstruction:
    """One NPU tile instruction (load weights + stream activations)."""

    op_name: str
    array_index: int
    tile_k: int
    tile_n: int
    stream_m: int
    cycles: float


@dataclass
class DeviceBinary:
    """Lowered instruction streams for one NeuPIMs device."""

    model_name: str
    npu_instructions: List[NpuInstruction] = field(default_factory=list)
    pim_commands: List[Command] = field(default_factory=list)

    @property
    def npu_cycle_estimate(self) -> float:
        """Per-array makespan estimate of the NPU instruction stream."""
        if not self.npu_instructions:
            return 0.0
        arrays = max(i.array_index for i in self.npu_instructions) + 1
        per_array = [0.0] * arrays
        for inst in self.npu_instructions:
            per_array[inst.array_index] += inst.cycles
        return max(per_array)


def emit_binary(module: IrModule, config: Optional[NeuPimsConfig] = None,
                systolic: Optional[SystolicConfig] = None
                ) -> DeviceBinary:
    """Backend: tile GEMMs onto the arrays and encode GEMVs as PIM commands."""
    config = config or NeuPimsConfig()
    systolic = systolic or config.npu.systolic
    num_arrays = config.npu.num_systolic_arrays
    binary = DeviceBinary(model_name=module.model_name)
    stream_builder = (composite_stream if config.composite_isa
                      else fine_grained_stream)

    array_cursor = 0
    for op in module.ops:
        if op.kind is IrOpKind.GEMM:
            m = op.inputs[0].dims[0]
            k = op.inputs[0].dims[1]
            n = op.inputs[1].dims[1]
            from repro.model.layers import GemmShape
            schedule = schedule_gemm(GemmShape(m, k, n), systolic, num_arrays)
            for tk in range(schedule.tiles_k):
                for tn in range(schedule.tiles_n):
                    binary.npu_instructions.append(NpuInstruction(
                        op_name=op.name,
                        array_index=array_cursor % num_arrays,
                        tile_k=tk, tile_n=tn, stream_m=m,
                        cycles=schedule.cycles_per_tile,
                    ))
                    array_cursor += 1
        elif op.kind is IrOpKind.GEMV:
            rows = op.inputs[0].dims[0]
            cols = op.inputs[0].dims[1]
            gemv = GemvOp(rows=rows, cols=cols, tag=op.name)
            binary.pim_commands.extend(
                stream_builder(gemv, config.org, op.inputs[0].dtype_bytes)
            )
    return binary
