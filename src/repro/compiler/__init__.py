"""NeuPIMs compiler framework: operator IR and instruction lowering."""

from repro.compiler.ir import IrModule, IrOp, IrOpKind, TensorShape
from repro.compiler.lower import (
    DeviceBinary,
    NpuInstruction,
    emit_binary,
    lower_model,
)

from repro.compiler.frontend import (
    CompilationInput,
    SpecificationError,
    load_specification,
    parse_model_spec,
    parse_system_spec,
)
from repro.compiler.schedule import (
    EngineQueues,
    balance_report,
    deserialize,
    schedule_binary,
    serialize,
)

__all__ = [
    "IrModule",
    "IrOp",
    "IrOpKind",
    "TensorShape",
    "DeviceBinary",
    "NpuInstruction",
    "emit_binary",
    "lower_model",
    "CompilationInput",
    "SpecificationError",
    "load_specification",
    "parse_model_spec",
    "parse_system_spec",
    "EngineQueues",
    "balance_report",
    "deserialize",
    "schedule_binary",
    "serialize",
]
