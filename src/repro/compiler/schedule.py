"""Instruction scheduling and binary serialization.

Completes the compiler pipeline (Figure 7, component 4): the lowered
:class:`~repro.compiler.lower.DeviceBinary` is scheduled into per-engine
queues respecting the decoder block's stage dependencies, and can be
serialized to a deterministic text format ("NeuPIMs binary") that the
examples write out and the tests round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.compiler.lower import DeviceBinary, NpuInstruction
from repro.dram.commands import Command, CommandType


@dataclass
class EngineQueues:
    """Scheduled per-engine instruction queues for one iteration."""

    npu: Dict[int, List[NpuInstruction]] = field(default_factory=dict)
    pim: List[Command] = field(default_factory=list)

    @property
    def npu_instruction_count(self) -> int:
        return sum(len(q) for q in self.npu.values())

    def npu_makespan_cycles(self) -> float:
        """Per-array serial makespan (load-balance quality metric)."""
        if not self.npu:
            return 0.0
        return max(sum(inst.cycles for inst in queue)
                   for queue in self.npu.values())


def schedule_binary(binary: DeviceBinary) -> EngineQueues:
    """Distribute instructions to engines, preserving program order.

    NPU instructions keep their assigned array; within an array the
    lowered order already respects stage dependencies (the IR is emitted
    in dependency order).  PIM commands stay in stream order — the memory
    controller enforces the GWRITE -> GEMV chain at runtime.
    """
    queues = EngineQueues()
    for inst in binary.npu_instructions:
        queues.npu.setdefault(inst.array_index, []).append(inst)
    queues.pim = list(binary.pim_commands)
    return queues


def balance_report(queues: EngineQueues) -> Dict[str, float]:
    """Load-balance diagnostics across the systolic arrays."""
    if not queues.npu:
        return {"arrays": 0, "max_cycles": 0.0, "imbalance": 1.0}
    loads = [sum(inst.cycles for inst in queue)
             for queue in queues.npu.values()]
    mean = sum(loads) / len(loads)
    return {
        "arrays": float(len(loads)),
        "max_cycles": max(loads),
        "imbalance": max(loads) / mean if mean > 0 else 1.0,
    }


# ----------------------------------------------------------------------
# Serialization ("NeuPIMs binary" text format).
# ----------------------------------------------------------------------

_MAGIC = "NEUPIMS-BIN v1"


def serialize(binary: DeviceBinary) -> str:
    """Serialize to a deterministic line-oriented text format."""
    lines = [_MAGIC, f"model {binary.model_name}"]
    for inst in binary.npu_instructions:
        lines.append(
            f"NPU {inst.array_index} {inst.op_name} "
            f"{inst.tile_k} {inst.tile_n} {inst.stream_m} {inst.cycles:.1f}")
    for cmd in binary.pim_commands:
        bank = -1 if cmd.bank is None else cmd.bank
        row = -1 if cmd.row is None else cmd.row
        banks = ",".join(map(str, cmd.banks)) or "-"
        lines.append(
            f"PIM {cmd.ctype.value} {bank} {row} {banks} {cmd.k} "
            f"{cmd.meta or '-'}")
    return "\n".join(lines) + "\n"


def deserialize(text: str) -> DeviceBinary:
    """Parse the text format back into a :class:`DeviceBinary`."""
    lines = text.strip().splitlines()
    if not lines or lines[0] != _MAGIC:
        raise ValueError("not a NeuPIMs binary (bad magic)")
    if len(lines) < 2 or not lines[1].startswith("model "):
        raise ValueError("missing model header")
    binary = DeviceBinary(model_name=lines[1][len("model "):])
    for lineno, line in enumerate(lines[2:], start=3):
        fields = line.split()
        if fields[0] == "NPU":
            if len(fields) != 7:
                raise ValueError(f"line {lineno}: malformed NPU instruction")
            binary.npu_instructions.append(NpuInstruction(
                op_name=fields[2], array_index=int(fields[1]),
                tile_k=int(fields[3]), tile_n=int(fields[4]),
                stream_m=int(fields[5]), cycles=float(fields[6])))
        elif fields[0] == "PIM":
            if len(fields) != 7:
                raise ValueError(f"line {lineno}: malformed PIM command")
            _, ctype, bank, row, banks, k, meta = fields
            binary.pim_commands.append(Command(
                ctype=CommandType(ctype),
                bank=None if bank == "-1" else int(bank),
                row=None if row == "-1" else int(row),
                banks=() if banks == "-" else
                tuple(int(b) for b in banks.split(",")),
                k=int(k),
                meta="" if meta == "-" else meta))
        else:
            raise ValueError(f"line {lineno}: unknown record {fields[0]!r}")
    return binary


def roundtrip_equal(a: DeviceBinary, b: DeviceBinary) -> bool:
    """Structural equality check used by the serialization tests."""
    return (a.model_name == b.model_name
            and a.npu_instructions == b.npu_instructions
            and a.pim_commands == b.pim_commands)
