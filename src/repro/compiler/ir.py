"""Operator intermediate representation (paper Figure 7, component 4).

The NeuPIMs compiler front-end takes an LLM specification (ONNX-like) and
a system specification, and lowers the model into an operator IR; the
backend then emits NPU compute instructions and MEM/PIM access
instructions.  The IR here is deliberately small: enough structure to
drive both the tile-level NPU model and the command-level PIM simulation
from a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple


class IrOpKind(Enum):
    """IR operator categories."""

    GEMM = "gemm"          # weight-activation matmul -> NPU systolic
    GEMV = "gemv"          # activation-activation matvec -> PIM
    SOFTMAX = "softmax"    # -> NPU vector units
    LAYERNORM = "layernorm"
    ALLREDUCE = "allreduce"  # TP communication


@dataclass(frozen=True)
class TensorShape:
    """A dense tensor shape with element width."""

    dims: Tuple[int, ...]
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if not self.dims or any(d <= 0 for d in self.dims):
            raise ValueError(f"invalid tensor dims {self.dims}")
        if self.dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")

    @property
    def elements(self) -> int:
        total = 1
        for d in self.dims:
            total *= d
        return total

    @property
    def bytes(self) -> int:
        return self.elements * self.dtype_bytes


@dataclass(frozen=True)
class IrOp:
    """One IR operator.

    ``inputs`` / ``outputs`` are tensor shapes; ``attrs`` carry
    kind-specific parameters (e.g. request index for per-request GEMVs).
    """

    name: str
    kind: IrOpKind
    inputs: Tuple[TensorShape, ...]
    outputs: Tuple[TensorShape, ...]
    layer: int = 0
    request_index: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("IR op requires a name")
        if not self.inputs or not self.outputs:
            raise ValueError(f"{self.name}: IR op requires inputs and outputs")


@dataclass
class IrModule:
    """A lowered model: ordered IR ops plus metadata."""

    model_name: str
    ops: List[IrOp] = field(default_factory=list)

    def append(self, op: IrOp) -> None:
        """Add an operator at the end of the module."""
        self.ops.append(op)

    def by_kind(self, kind: IrOpKind) -> List[IrOp]:
        """All operators of the given kind, in program order."""
        return [op for op in self.ops if op.kind is kind]

    def layers(self) -> int:
        """Number of decoder layers the module spans."""
        return max((op.layer for op in self.ops), default=-1) + 1

    def validate(self) -> None:
        """Structural checks: per-layer stage ordering and shape chaining."""
        for layer in range(self.layers()):
            names = [op.name for op in self.ops if op.layer == layer]
            if not any(n.startswith("qkv") for n in names):
                raise ValueError(f"layer {layer}: missing QKV generation")
            if not any(n.startswith("ffn") for n in names):
                raise ValueError(f"layer {layer}: missing FFN")
        for op in self.ops:
            if op.kind is IrOpKind.GEMM:
                a, b = op.inputs[0], op.inputs[1]
                if a.dims[-1] != b.dims[0]:
                    raise ValueError(
                        f"{op.name}: GEMM contraction mismatch {a.dims} x {b.dims}"
                    )

    def __len__(self) -> int:
        return len(self.ops)
