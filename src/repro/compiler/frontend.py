"""Compiler front-end: LLM and system specifications (paper Figure 7 4).

The NeuPIMs compiler framework takes two inputs from the system admin: an
*LLM specification* (whose "syntax largely resembles ONNX" — a structured
description of the decoder architecture) and a *system specification*
(device counts, parallelism, feature flags).  This module parses both
from plain dictionaries / JSON, validates them, and produces the
:class:`~repro.model.spec.ModelSpec` and
:class:`~repro.core.config.NeuPimsConfig` the rest of the stack consumes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Tuple

from repro.core.config import NeuPimsConfig
from repro.core.system import ParallelismScheme
from repro.dram.timing import HbmOrganization, PimTiming, TimingParams
from repro.model.spec import MODEL_REGISTRY, ModelSpec


class SpecificationError(ValueError):
    """Raised on malformed or inconsistent specifications."""


_REQUIRED_MODEL_FIELDS = ("name", "num_layers", "num_heads", "d_model")


def parse_model_spec(data: Mapping[str, Any]) -> ModelSpec:
    """Parse an LLM specification dictionary.

    Either ``{"preset": "gpt3-13b"}`` referencing a registered model, or
    an explicit architecture description::

        {"name": "my-model", "num_layers": 24, "num_heads": 16,
         "d_model": 2048, "ffn_mult": 4, "dtype_bytes": 2}
    """
    if "preset" in data:
        preset = str(data["preset"]).lower()
        if preset not in MODEL_REGISTRY:
            raise SpecificationError(
                f"unknown preset {preset!r}; known: {sorted(MODEL_REGISTRY)}")
        return MODEL_REGISTRY[preset]
    missing = [f for f in _REQUIRED_MODEL_FIELDS if f not in data]
    if missing:
        raise SpecificationError(f"model spec missing fields: {missing}")
    try:
        return ModelSpec(
            name=str(data["name"]),
            num_layers=int(data["num_layers"]),
            num_heads=int(data["num_heads"]),
            d_model=int(data["d_model"]),
            ffn_mult=int(data.get("ffn_mult", 4)),
            dtype_bytes=int(data.get("dtype_bytes", 2)),
            tensor_parallel=int(data.get("tensor_parallel", 1)),
            pipeline_parallel=int(data.get("pipeline_parallel", 1)),
        )
    except ValueError as exc:
        raise SpecificationError(str(exc)) from exc


def parse_system_spec(data: Mapping[str, Any]
                      ) -> Tuple[NeuPimsConfig, ParallelismScheme]:
    """Parse a system specification dictionary.

    Recognized sections: ``features`` (the DRB/ISA/GMLBP/SBI flags),
    ``parallelism`` (tp/pp), ``hbm`` (organization overrides), ``timing``
    (Table 2 overrides) and ``pim`` (PIM datapath overrides).
    """
    features = dict(data.get("features", {}))
    known_flags = {"dual_row_buffer", "composite_isa", "greedy_binpack",
                   "sub_batch_interleaving", "adaptive_sbi"}
    unknown = set(features) - known_flags
    if unknown:
        raise SpecificationError(f"unknown feature flags: {sorted(unknown)}")

    try:
        org = HbmOrganization(**data.get("hbm", {}))
        timing = TimingParams(**data.get("timing", {}))
        pim = PimTiming(**data.get("pim", {}))
    except TypeError as exc:
        raise SpecificationError(f"bad hardware section: {exc}") from exc
    except ValueError as exc:
        raise SpecificationError(str(exc)) from exc

    config = NeuPimsConfig(
        org=org, timing=timing, pim_timing=pim,
        **{flag: bool(value) for flag, value in features.items()},
    )

    parallelism = data.get("parallelism", {})
    try:
        scheme = ParallelismScheme(tp=int(parallelism.get("tp", 1)),
                                   pp=int(parallelism.get("pp", 1)))
    except ValueError as exc:
        raise SpecificationError(str(exc)) from exc
    return config, scheme


@dataclass(frozen=True)
class CompilationInput:
    """Validated front-end output handed to the lowering pipeline."""

    model: ModelSpec
    config: NeuPimsConfig
    scheme: ParallelismScheme

    def validate(self) -> None:
        """Cross-checks between model and system."""
        if self.model.num_heads % self.scheme.tp != 0:
            raise SpecificationError(
                f"{self.model.name}: {self.model.num_heads} heads not "
                f"divisible by TP={self.scheme.tp}")
        if self.scheme.pp > self.model.num_layers:
            raise SpecificationError(
                f"PP={self.scheme.pp} exceeds layer count "
                f"{self.model.num_layers}")


def load_specification(text: str) -> CompilationInput:
    """Parse a combined JSON specification document.

    Expected top-level keys: ``model`` and ``system``.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecificationError(f"invalid JSON: {exc}") from exc
    if not isinstance(document, dict) or "model" not in document:
        raise SpecificationError("specification needs a 'model' section")
    model = parse_model_spec(document["model"])
    config, scheme = parse_system_spec(document.get("system", {}))
    result = CompilationInput(model=model, config=config, scheme=scheme)
    result.validate()
    return result


def dump_specification(compilation: CompilationInput) -> str:
    """Serialize a compilation input back to JSON (round-trippable)."""
    document = {
        "model": {
            "name": compilation.model.name,
            "num_layers": compilation.model.num_layers,
            "num_heads": compilation.model.num_heads,
            "d_model": compilation.model.d_model,
            "ffn_mult": compilation.model.ffn_mult,
            "dtype_bytes": compilation.model.dtype_bytes,
            "tensor_parallel": compilation.model.tensor_parallel,
            "pipeline_parallel": compilation.model.pipeline_parallel,
        },
        "system": {
            "features": {
                "dual_row_buffer": compilation.config.dual_row_buffer,
                "composite_isa": compilation.config.composite_isa,
                "greedy_binpack": compilation.config.greedy_binpack,
                "sub_batch_interleaving":
                    compilation.config.sub_batch_interleaving,
                "adaptive_sbi": compilation.config.adaptive_sbi,
            },
            "parallelism": {"tp": compilation.scheme.tp,
                            "pp": compilation.scheme.pp},
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)
