"""Sharded parallel execution subsystem (see DESIGN.md §6).

Shards independent simulation units — sweep points, ablation grids,
multi-config benchmark cells, whole fleets
(:func:`repro.cluster.run_fleets`: each routed fleet's nodes step in
lockstep inside one worker, so fleets shard like scenarios) — across
workers with chunked dispatch, per-worker warm ``repro.perf`` caches
and a deterministic merge: parallel output is record-for-record
identical to serial output.

* :class:`~repro.exec.runner.ParallelRunner` — the front end;
* :class:`~repro.exec.backends.SerialBackend` /
  :class:`~repro.exec.backends.ProcessPoolBackend` — the pluggable
  backends, normalized from ``parallel=`` specs by
  :func:`~repro.exec.backends.resolve_backend`;
* :class:`~repro.exec.task.TaskSpec` — the picklable unit of work;
  failures come back as :class:`~repro.exec.task.TaskError` carrying the
  task index and spec digest;
* :class:`~repro.exec.faulty.FaultyBackend` — deterministic
  crash-injecting test double so recovery is itself under test;
* :class:`~repro.exec.warmup.PerfCacheWarmup` /
  :class:`~repro.exec.warmup.RegistryWarmup` /
  :class:`~repro.exec.warmup.WarmupChain` — per-worker initializers
  (cache warming, component-registration imports for spawn workers,
  composition).
"""

from repro.exec.backends import (ExecutionBackend, ParallelSpec,
                                 ProcessPoolBackend, SerialBackend,
                                 available_workers, resolve_backend)
from repro.exec.faulty import FaultyBackend, WorkerCrash
from repro.exec.runner import ParallelRunner
from repro.exec.task import TaskError, TaskSpec, is_picklable
from repro.exec.warmup import PerfCacheWarmup, RegistryWarmup, WarmupChain

__all__ = [
    "ExecutionBackend",
    "FaultyBackend",
    "ParallelRunner",
    "ParallelSpec",
    "PerfCacheWarmup",
    "ProcessPoolBackend",
    "RegistryWarmup",
    "SerialBackend",
    "TaskError",
    "TaskSpec",
    "WarmupChain",
    "WorkerCrash",
    "available_workers",
    "is_picklable",
    "resolve_backend",
]
