"""Deterministic crash-injecting backend — a test double for recovery.

Real worker crashes are awkward to stage (they need a live pool, marker
files and ``os._exit``), so :class:`FaultyBackend` simulates them
in-process with the *same* retry/salvage policy as
:class:`~repro.exec.backends.ProcessPoolBackend`: a scripted crash plan
says which task indices "lose their worker" and how many times, retries
are bounded by ``max_retries``, and exhausted tasks are salvaged (run
anyway, modeling the in-parent recovery path) or raised.  Because the
plan is a plain mapping, recovery behaviour — including the merged
result staying identical to a serial run — is itself under test without
any real processes.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping

from repro.exec.backends import ExecutionBackend, _run_chunk
from repro.exec.task import TaskSpec

__all__ = ["FaultyBackend", "WorkerCrash"]


class WorkerCrash(RuntimeError):
    """Simulated abrupt worker death (stands in for a killed process)."""


class FaultyBackend(ExecutionBackend):
    """Serial backend that injects scripted worker crashes.

    Parameters
    ----------
    crash_plan:
        Mapping of task submission index to how many consecutive
        attempts at that task "crash" before one succeeds.
    max_retries:
        Crash budget per task before falling back to salvage, mirroring
        :class:`~repro.exec.backends.ProcessPoolBackend`.
    salvage:
        When True (default), a task whose crashes exhaust the retry
        budget is run anyway (the in-parent salvage path); when False
        the exhaustion raises :class:`WorkerCrash`.

    After :meth:`run`, the ``attempts`` / ``retried_tasks`` /
    ``salvaged_tasks`` counters expose what the recovery machinery did.
    """

    name = "faulty"

    def __init__(self, crash_plan: Mapping[int, int],
                 max_retries: int = 1, salvage: bool = True) -> None:
        for index, crashes in crash_plan.items():
            if index < 0:
                raise ValueError(f"crash_plan index {index} is negative")
            if crashes < 0:
                raise ValueError(
                    f"crash_plan[{index}] = {crashes} is negative")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.crash_plan = dict(crash_plan)
        self.max_retries = max_retries
        self.salvage = salvage
        #: Total execution attempts (successes + crashes), last run.
        self.attempts = 0
        #: Re-dispatches issued in response to crashes, last run.
        self.retried_tasks = 0
        #: Tasks recovered via the salvage path, last run.
        self.salvaged_tasks = 0

    def run(self, tasks: Iterable[TaskSpec]) -> List[Any]:
        """Execute tasks serially, consuming the crash plan as it goes.

        Results come back in submission order and — because crashes only
        ever discard an attempt, never a result — are element-for-element
        identical to :class:`~repro.exec.backends.SerialBackend` on the
        same tasks whenever every crashed task is retried or salvaged.
        """
        self.attempts = 0
        self.retried_tasks = 0
        self.salvaged_tasks = 0
        remaining = dict(self.crash_plan)
        results: List[Any] = []
        for index, task in enumerate(tasks):
            crashes_taken = 0
            while True:
                self.attempts += 1
                if remaining.get(index, 0) > 0:
                    remaining[index] -= 1
                    crashes_taken += 1
                    if crashes_taken <= self.max_retries:
                        self.retried_tasks += 1
                        continue
                    if not self.salvage:
                        raise WorkerCrash(
                            f"task {index} crashed {crashes_taken} times "
                            f"(retry budget {self.max_retries})")
                    # Salvage: run in the "parent", immune to injection.
                    results.extend(_run_chunk([task], index))
                    self.salvaged_tasks += 1
                    break
                results.extend(_run_chunk([task], index))
                break
        return results
