"""Execution backends: serial in-process and ``multiprocessing`` pools.

Both backends honour the same contract — results come back **in task
submission order**, regardless of which worker finished first — so a
parallel run is record-for-record identical to a serial one whenever the
tasks are pure functions (McKenney's embarrassingly-parallel sharding
with a deterministic merge).

The process backend dispatches tasks in chunks: each chunk runs serially
inside one worker, so per-worker caches (see
:class:`repro.exec.warmup.PerfCacheWarmup`) stay warm across the chunk
and per-task IPC overhead amortizes.  Chunks are consumed lazily from the
task iterable — a large sweep grid is never materialized up front.

Failure handling follows a two-tier policy.  A task that *raises* is a
deterministic bug: it comes back as :class:`~repro.exec.task.TaskError`
(carrying the task index and spec digest) and is never retried — it
would fail identically on any worker.  A chunk that *vanishes* (worker
killed, result pipe broken, per-task timeout exceeded) is
infrastructure: it is re-dispatched up to ``max_retries`` times and
finally salvaged by running the chunk in the parent process, so one
flaky worker cannot sink a thousand-cell sweep.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import deque
from itertools import islice
from typing import (Any, Callable, Deque, Iterable, Iterator, List, Optional,
                    Sequence, Tuple, Union)

from repro.exec.task import TaskError, TaskSpec

#: Accepted ``parallel=`` values: ``None``/``False``/worker count/backend
#: name (``"serial"``, ``"process"``, ``"process:N"``) or an instance.
ParallelSpec = Union[None, bool, int, str, "ExecutionBackend"]

#: Exceptions from ``AsyncResult.get`` that mean "the chunk's result was
#: lost" rather than "the chunk's code raised": per-chunk timeout plus
#: the pipe errors a dying worker leaves behind.
_LOST_CHUNK_ERRORS = (multiprocessing.TimeoutError, OSError, EOFError)


def available_workers() -> int:
    """Usable CPU count (respects scheduler affinity where exposed)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class ExecutionBackend:
    """Interface: run independent tasks, return results in task order."""

    name = "abstract"

    def run(self, tasks: Iterable[TaskSpec]) -> List[Any]:
        """Execute every task, returning results in submission order."""
        raise NotImplementedError

    def starmap(self, fn: Callable[..., Any],
                argtuples: Iterable[Tuple[Any, ...]]) -> List[Any]:
        """``[fn(*t) for t in argtuples]`` — one task per argument tuple
        (same contract as :meth:`ParallelRunner.starmap`)."""
        return self.run(TaskSpec(fn, tuple(args)) for args in argtuples)


class SerialBackend(ExecutionBackend):
    """In-process execution — the reference ordering and semantics."""

    name = "serial"

    def run(self, tasks: Iterable[TaskSpec]) -> List[Any]:
        """Execute tasks one after another in the calling process."""
        return _run_chunk(list(tasks))


def _chunk_tasks(tasks: Iterable[TaskSpec],
                 chunk_size: int) -> Iterator[List[TaskSpec]]:
    iterator = iter(tasks)
    while True:
        chunk = list(islice(iterator, chunk_size))
        if not chunk:
            return
        yield chunk


def _init_worker(warmup: Optional[Callable[[], None]]) -> None:
    """Pool initializer: run the warmup once per worker process."""
    if warmup is not None:
        warmup()


def _run_chunk(chunk: Sequence[TaskSpec], base_index: int = 0) -> List[Any]:
    """Run one chunk serially, wrapping any task failure in
    :class:`TaskError` with the task's global submission index."""
    results: List[Any] = []
    for offset, task in enumerate(chunk):
        try:
            results.append(task())
        except TaskError:
            raise
        except Exception as exc:
            raise TaskError(base_index + offset, task.digest(),
                            f"{type(exc).__name__}: {exc}") from exc
    return results


class ProcessPoolBackend(ExecutionBackend):
    """Sharded execution across a ``multiprocessing`` pool.

    Parameters
    ----------
    workers:
        Worker process count; defaults to :func:`available_workers`.
    chunk_size:
        Tasks per dispatch unit.  The default of 1 maximizes load balance
        for chunky simulation cells; raise it for many tiny tasks.
    start_method:
        ``"fork"`` (default on Linux; workers inherit the parent's warm
        caches for free), ``"spawn"`` or ``"forkserver"``.  Under spawn
        the task callables must be importable by the child, and the
        warmup re-warms each fresh interpreter.
    warmup:
        Picklable nullary callable run once in every worker before any
        task (e.g. :class:`repro.exec.warmup.PerfCacheWarmup`).
    task_timeout:
        Seconds of wall-clock each task may take before its chunk is
        declared lost (a chunk's budget is ``task_timeout * len(chunk)``).
        ``None`` (default) waits forever — note that crash recovery needs
        a timeout, because a killed worker's chunk simply never reports.
    max_retries:
        How many times a lost chunk is re-dispatched to the pool before
        falling back to salvage.  Retries assume tasks are pure: a lost
        chunk may still have produced side effects before dying.
    salvage:
        When True (default), a chunk that stays lost after all retries is
        run in the parent process so the sweep still completes with a
        full result set; when False the loss raises ``RuntimeError``.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None, chunk_size: int = 1,
                 start_method: Optional[str] = None,
                 warmup: Optional[Callable[[], None]] = None,
                 task_timeout: Optional[float] = None,
                 max_retries: int = 1, salvage: bool = True) -> None:
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive when set")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.workers = workers if workers is not None else available_workers()
        self.chunk_size = chunk_size
        self.start_method = start_method
        self.warmup = warmup
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.salvage = salvage
        #: Chunks re-dispatched after a loss, across the last :meth:`run`.
        self.retried_chunks = 0
        #: Chunks recovered in-process, across the last :meth:`run`.
        self.salvaged_chunks = 0

    def _chunk_timeout(self, chunk: Sequence[TaskSpec]) -> Optional[float]:
        """Wall-clock budget for one chunk (``None`` = wait forever)."""
        if self.task_timeout is None:
            return None
        return self.task_timeout * len(chunk)

    def run(self, tasks: Iterable[TaskSpec]) -> List[Any]:
        """Execute tasks across the pool, results in submission order.

        Keeps a bounded window of ``2 * workers`` chunks in flight and
        collects them strictly FIFO, so ordering is deterministic by
        construction and the grid streams through bounded memory.  Lost
        chunks (timeout / dead worker) are re-dispatched up to
        ``max_retries`` times, then salvaged in-process; task exceptions
        propagate immediately as :class:`TaskError`.
        """
        self.retried_chunks = 0
        self.salvaged_chunks = 0
        chunks = _chunk_tasks(tasks, self.chunk_size)
        # Grab the first chunk eagerly: an empty task list should not pay
        # for pool startup, and a single chunk runs serially anyway.
        first = next(chunks, None)
        if first is None:
            return []
        second = next(chunks, None)
        if second is None:
            # A lone chunk would run serially inside one worker anyway;
            # skip the pool startup and run it here.
            return _run_chunk(first)

        def rechained() -> Iterator[List[TaskSpec]]:
            yield first
            yield second
            yield from chunks

        source = rechained()
        window = max(2, self.workers * 2)
        results: List[Any] = []
        context = multiprocessing.get_context(self.start_method)
        with context.Pool(self.workers, initializer=_init_worker,
                          initargs=(self.warmup,)) as pool:
            # In-flight entries are [base_index, chunk, handle, attempts];
            # mutable so a retry can swap in the fresh handle in place.
            inflight: Deque[List[Any]] = deque()
            next_base = 0

            def submit_next() -> bool:
                nonlocal next_base
                chunk = next(source, None)
                if chunk is None:
                    return False
                handle = pool.apply_async(_run_chunk, (chunk, next_base))
                inflight.append([next_base, chunk, handle, 0])
                next_base += len(chunk)
                return True

            while len(inflight) < window and submit_next():
                pass
            while inflight:
                entry = inflight[0]
                base, chunk, handle, attempts = entry
                try:
                    chunk_results = handle.get(self._chunk_timeout(chunk))
                except TaskError:
                    raise
                except _LOST_CHUNK_ERRORS as exc:
                    if attempts < self.max_retries:
                        entry[2] = pool.apply_async(_run_chunk, (chunk, base))
                        entry[3] = attempts + 1
                        self.retried_chunks += 1
                        continue
                    if not self.salvage:
                        raise RuntimeError(
                            f"chunk at task {base} lost after "
                            f"{attempts} retries: {exc!r}") from exc
                    chunk_results = _run_chunk(chunk, base)
                    self.salvaged_chunks += 1
                inflight.popleft()
                results.extend(chunk_results)
                submit_next()
        return results


def resolve_backend(parallel: ParallelSpec = None, *,
                    chunk_size: int = 1,
                    start_method: Optional[str] = None,
                    warmup: Optional[Callable[[], None]] = None
                    ) -> ExecutionBackend:
    """Normalize a ``parallel=`` argument into a backend instance.

    ``None``/``False``/``0``/``1``/``"serial"`` mean serial; ``True`` and
    ``"process"`` mean a pool sized to the machine; an integer ``n > 1``
    or ``"process:n"`` pins the worker count; a backend instance passes
    through unchanged (the keyword-only tuning knobs apply only when this
    function constructs the pool).
    """
    if isinstance(parallel, ExecutionBackend):
        return parallel
    if parallel is None or parallel is False:
        return SerialBackend()
    if parallel is True:
        return ProcessPoolBackend(chunk_size=chunk_size,
                                  start_method=start_method, warmup=warmup)
    if isinstance(parallel, int):
        if parallel < 0:
            raise ValueError("parallel worker count must be non-negative")
        if parallel <= 1:
            return SerialBackend()
        return ProcessPoolBackend(parallel, chunk_size=chunk_size,
                                  start_method=start_method, warmup=warmup)
    if isinstance(parallel, str):
        spec = parallel.strip().lower()
        if spec == "serial":
            return SerialBackend()
        if spec == "process":
            return ProcessPoolBackend(chunk_size=chunk_size,
                                      start_method=start_method,
                                      warmup=warmup)
        if spec.startswith("process:"):
            workers = int(spec.split(":", 1)[1])
            return resolve_backend(workers, chunk_size=chunk_size,
                                   start_method=start_method, warmup=warmup)
    raise ValueError(f"unrecognized parallel spec {parallel!r}")
