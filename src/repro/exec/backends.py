"""Execution backends: serial in-process and ``multiprocessing`` pools.

Both backends honour the same contract — results come back **in task
submission order**, regardless of which worker finished first — so a
parallel run is record-for-record identical to a serial one whenever the
tasks are pure functions (McKenney's embarrassingly-parallel sharding
with a deterministic merge).

The process backend dispatches tasks in chunks: each chunk runs serially
inside one worker, so per-worker caches (see
:class:`repro.exec.warmup.PerfCacheWarmup`) stay warm across the chunk
and per-task IPC overhead amortizes.  Chunks are consumed lazily from the
task iterable — a large sweep grid is never materialized up front.
"""

from __future__ import annotations

import multiprocessing
import os
from itertools import islice
from typing import (Any, Callable, Iterable, Iterator, List, Optional,
                    Sequence, Tuple, Union)

from repro.exec.task import TaskSpec

#: Accepted ``parallel=`` values: ``None``/``False``/worker count/backend
#: name (``"serial"``, ``"process"``, ``"process:N"``) or an instance.
ParallelSpec = Union[None, bool, int, str, "ExecutionBackend"]


def available_workers() -> int:
    """Usable CPU count (respects scheduler affinity where exposed)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class ExecutionBackend:
    """Interface: run independent tasks, return results in task order."""

    name = "abstract"

    def run(self, tasks: Iterable[TaskSpec]) -> List[Any]:
        raise NotImplementedError

    def starmap(self, fn: Callable[..., Any],
                argtuples: Iterable[Tuple[Any, ...]]) -> List[Any]:
        """``[fn(*t) for t in argtuples]`` — one task per argument tuple
        (same contract as :meth:`ParallelRunner.starmap`)."""
        return self.run(TaskSpec(fn, tuple(args)) for args in argtuples)


class SerialBackend(ExecutionBackend):
    """In-process execution — the reference ordering and semantics."""

    name = "serial"

    def run(self, tasks: Iterable[TaskSpec]) -> List[Any]:
        return [task() for task in tasks]


def _chunk_tasks(tasks: Iterable[TaskSpec],
                 chunk_size: int) -> Iterator[List[TaskSpec]]:
    iterator = iter(tasks)
    while True:
        chunk = list(islice(iterator, chunk_size))
        if not chunk:
            return
        yield chunk


def _init_worker(warmup: Optional[Callable[[], None]]) -> None:
    """Pool initializer: run the warmup once per worker process."""
    if warmup is not None:
        warmup()


def _run_chunk(chunk: Sequence[TaskSpec]) -> List[Any]:
    return [task() for task in chunk]


class ProcessPoolBackend(ExecutionBackend):
    """Sharded execution across a ``multiprocessing`` pool.

    Parameters
    ----------
    workers:
        Worker process count; defaults to :func:`available_workers`.
    chunk_size:
        Tasks per dispatch unit.  The default of 1 maximizes load balance
        for chunky simulation cells; raise it for many tiny tasks.
    start_method:
        ``"fork"`` (default on Linux; workers inherit the parent's warm
        caches for free), ``"spawn"`` or ``"forkserver"``.  Under spawn
        the task callables must be importable by the child, and the
        warmup re-warms each fresh interpreter.
    warmup:
        Picklable nullary callable run once in every worker before any
        task (e.g. :class:`repro.exec.warmup.PerfCacheWarmup`).
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None, chunk_size: int = 1,
                 start_method: Optional[str] = None,
                 warmup: Optional[Callable[[], None]] = None) -> None:
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.workers = workers if workers is not None else available_workers()
        self.chunk_size = chunk_size
        self.start_method = start_method
        self.warmup = warmup

    def run(self, tasks: Iterable[TaskSpec]) -> List[Any]:
        chunks = _chunk_tasks(tasks, self.chunk_size)
        # Grab the first chunk eagerly: an empty task list should not pay
        # for pool startup, and a single chunk runs serially anyway.
        first = next(chunks, None)
        if first is None:
            return []
        second = next(chunks, None)
        if second is None:
            # A lone chunk would run serially inside one worker anyway;
            # skip the pool startup and run it here.
            return _run_chunk(first)

        def rechained() -> Iterator[List[TaskSpec]]:
            yield first
            if second is not None:
                yield second
                yield from chunks

        context = multiprocessing.get_context(self.start_method)
        with context.Pool(self.workers, initializer=_init_worker,
                          initargs=(self.warmup,)) as pool:
            # imap preserves submission order and feeds chunks to workers
            # as they free up, so ordering is deterministic by
            # construction and the grid streams through bounded memory.
            results: List[Any] = []
            for chunk_results in pool.imap(_run_chunk, rechained()):
                results.extend(chunk_results)
        return results


def resolve_backend(parallel: ParallelSpec = None, *,
                    chunk_size: int = 1,
                    start_method: Optional[str] = None,
                    warmup: Optional[Callable[[], None]] = None
                    ) -> ExecutionBackend:
    """Normalize a ``parallel=`` argument into a backend instance.

    ``None``/``False``/``0``/``1``/``"serial"`` mean serial; ``True`` and
    ``"process"`` mean a pool sized to the machine; an integer ``n > 1``
    or ``"process:n"`` pins the worker count; a backend instance passes
    through unchanged (the keyword-only tuning knobs apply only when this
    function constructs the pool).
    """
    if isinstance(parallel, ExecutionBackend):
        return parallel
    if parallel is None or parallel is False:
        return SerialBackend()
    if parallel is True:
        return ProcessPoolBackend(chunk_size=chunk_size,
                                  start_method=start_method, warmup=warmup)
    if isinstance(parallel, int):
        if parallel < 0:
            raise ValueError("parallel worker count must be non-negative")
        if parallel <= 1:
            return SerialBackend()
        return ProcessPoolBackend(parallel, chunk_size=chunk_size,
                                  start_method=start_method, warmup=warmup)
    if isinstance(parallel, str):
        spec = parallel.strip().lower()
        if spec == "serial":
            return SerialBackend()
        if spec == "process":
            return ProcessPoolBackend(chunk_size=chunk_size,
                                      start_method=start_method,
                                      warmup=warmup)
        if spec.startswith("process:"):
            workers = int(spec.split(":", 1)[1])
            return resolve_backend(workers, chunk_size=chunk_size,
                                   start_method=start_method, warmup=warmup)
    raise ValueError(f"unrecognized parallel spec {parallel!r}")
