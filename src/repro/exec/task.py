"""Picklable task specifications for the execution backends.

A :class:`TaskSpec` names a callable plus its arguments; process-pool
backends ship it to a worker, so every piece must survive pickling: the
callable has to be importable at module scope (a top-level function or a
:func:`functools.partial` over one), and the arguments must themselves be
picklable.  The frozen hardware dataclasses used throughout this repo
(configs, model specs, dataset traces) all qualify.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple


@dataclass(frozen=True)
class TaskSpec:
    """One unit of independent work: ``fn(*args, **kwargs)``."""

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def __call__(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


def is_picklable(obj: Any) -> bool:
    """Whether ``obj`` round-trips through pickle (cheap pre-flight check)."""
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True
