"""Picklable task specifications for the execution backends.

A :class:`TaskSpec` names a callable plus its arguments; process-pool
backends ship it to a worker, so every piece must survive pickling: the
callable has to be importable at module scope (a top-level function or a
:func:`functools.partial` over one), and the arguments must themselves be
picklable.  The frozen hardware dataclasses used throughout this repo
(configs, model specs, dataset traces) all qualify.

Failures inside a worker come back wrapped in :class:`TaskError`, which
carries the task's submission index and spec digest so a crash deep in a
thousand-cell sweep is attributable to the exact cell that raised.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple


class TaskError(RuntimeError):
    """A task raised inside an execution backend.

    Wraps the original exception message with enough provenance to find
    the failing cell in a large sweep: the task's submission ``index``
    and the :meth:`TaskSpec.digest` of its spec.  The original exception
    is not chained across process boundaries (it may not be picklable);
    its rendered form is embedded in ``message`` instead.
    """

    def __init__(self, index: int, digest: str, message: str) -> None:
        super().__init__(f"task {index} (digest {digest}) failed: {message}")
        #: Submission-order index of the failing task.
        self.index = index
        #: :meth:`TaskSpec.digest` of the failing task's spec.
        self.digest = digest
        #: Rendered form of the original exception.
        self.message = message

    def __reduce__(self):
        """Pickle via the three provenance fields (exceptions with custom
        ``__init__`` signatures do not round-trip by default)."""
        return (TaskError, (self.index, self.digest, self.message))


@dataclass(frozen=True)
class TaskSpec:
    """One unit of independent work: ``fn(*args, **kwargs)``."""

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def __call__(self) -> Any:
        return self.fn(*self.args, **self.kwargs)

    def digest(self) -> str:
        """Short stable fingerprint of this spec for error attribution.

        Hashes the callable's qualified name plus the ``repr`` of its
        arguments — stable across processes (unlike ``id``-based hashes)
        and cheap enough to compute only on the failure path.
        """
        fn = self.fn
        name = (getattr(fn, "__module__", "?"),
                getattr(fn, "__qualname__", repr(fn)))
        payload = repr((name, self.args, sorted(self.kwargs.items())))
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:12]


#: Exception types that signal "this object cannot be pickled", as
#: opposed to an unrelated bug raised from a ``__getstate__`` hook.
_PICKLE_ERRORS = (pickle.PicklingError, TypeError, AttributeError)


def is_picklable(obj: Any) -> bool:
    """Whether ``obj`` round-trips through pickle (cheap pre-flight check).

    Only pickling failures (:class:`pickle.PicklingError`, plus the
    ``TypeError``/``AttributeError`` that the pickle machinery raises for
    locals, lambdas and open handles) count as "not picklable"; any other
    exception escaping a ``__getstate__``/``__reduce__`` hook is a real
    bug in the object and propagates to the caller.
    """
    try:
        pickle.dumps(obj)
    except _PICKLE_ERRORS:
        return False
    return True
