"""The :class:`ParallelRunner` — shard independent simulation units.

Design-space sweeps, ablation grids and multi-config benchmark cells are
embarrassingly parallel: every cell is a pure function of picklable
configuration dataclasses.  The runner pairs such a unit stream with an
:class:`~repro.exec.backends.ExecutionBackend` and guarantees the merge
is deterministic — results come back in submission order, so a parallel
run's output is record-for-record identical to a serial run's.

Typical use::

    from repro.exec import ParallelRunner

    runner = ParallelRunner(parallel=4)          # 4-worker process pool
    results = runner.map(evaluate_cell, grid)    # ordered like ``grid``

or through the sweep front end, ``run_sweep(axes, fn, parallel=4)``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.exec.backends import (ExecutionBackend, ParallelSpec,
                                 resolve_backend)
from repro.exec.task import TaskSpec


class ParallelRunner:
    """Run independent tasks on a pluggable backend, merging in order."""

    def __init__(self, parallel: ParallelSpec = None, *,
                 chunk_size: int = 1,
                 start_method: Optional[str] = None,
                 warmup: Optional[Callable[[], None]] = None) -> None:
        self.backend: ExecutionBackend = resolve_backend(
            parallel, chunk_size=chunk_size, start_method=start_method,
            warmup=warmup)

    @property
    def is_parallel(self) -> bool:
        """Whether tasks leave the current process."""
        return self.backend.name != "serial"

    def run(self, tasks: Iterable[TaskSpec]) -> List[Any]:
        """Execute ``tasks``; results align index-for-index with tasks."""
        return self.backend.run(tasks)

    def map(self, fn: Callable[..., Any], args: Iterable[Any]) -> List[Any]:
        """``[fn(a) for a in args]``, sharded across the backend."""
        return self.run(TaskSpec(fn, (arg,)) for arg in args)

    def starmap(self, fn: Callable[..., Any],
                argtuples: Iterable[Tuple[Any, ...]]) -> List[Any]:
        """``[fn(*t) for t in argtuples]``, sharded across the backend."""
        return self.backend.starmap(fn, argtuples)
