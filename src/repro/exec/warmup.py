"""Per-worker cache warmup for process-pool execution.

A fresh worker interpreter (``spawn``/``forkserver``) starts with cold
``repro.perf`` caches; the first task in each worker would then pay the
full command-level calibration (~hundreds of ms) that the parent already
paid.  :class:`PerfCacheWarmup` is a picklable initializer that re-runs
:func:`repro.perf.cached_calibrate` for the hardware configurations a
sweep will touch, so every worker starts warm.  Under ``fork`` the
workers inherit the parent's caches and the warmup hits memoized entries,
costing nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.core.config import NeuPimsConfig
from repro.model.spec import ModelSpec


@dataclass(frozen=True)
class PerfCacheWarmup:
    """Warm the calibration (and optionally estimate) caches per worker."""

    configs: Tuple[NeuPimsConfig, ...] = field(
        default_factory=lambda: (NeuPimsConfig(),))
    #: model specs to build estimators for (empty: calibration only)
    specs: Tuple[ModelSpec, ...] = ()
    #: sequence lengths to pre-estimate per (config, spec) pair
    seq_lens: Tuple[int, ...] = ()
    #: element widths to calibrate per config (part of the cache key)
    dtype_bytes: Tuple[int, ...] = (2,)

    def __call__(self) -> None:
        # Imports stay inside the call so pickling the warmup spec never
        # drags the whole simulation stack into the parent-side payload.
        from repro.core.estimator import MhaLatencyEstimator, analytic_latencies
        from repro.perf.calibration import cached_calibrate, memoized_estimator

        for config in self.configs:
            for dtype in self.dtype_bytes:
                cached_calibrate(config.timing, config.org,
                                 config.pim_timing, dtype)
            if not self.specs or not self.seq_lens:
                continue
            latencies = analytic_latencies(config.timing, config.org,
                                           config.pim_timing)
            for spec in self.specs:
                estimator = memoized_estimator(MhaLatencyEstimator(
                    spec=spec, org=config.org, latencies=latencies))
                for seq_len in self.seq_lens:
                    estimator.estimate(seq_len)
