"""Per-worker initializers for process-pool execution.

A fresh worker interpreter (``spawn``/``forkserver``) starts with cold
``repro.perf`` caches; the first task in each worker would then pay the
full command-level calibration (~hundreds of ms) that the parent already
paid.  :class:`PerfCacheWarmup` is a picklable initializer that re-runs
:func:`repro.perf.cached_calibrate` for the hardware configurations a
sweep will touch, so every worker starts warm.  Under ``fork`` the
workers inherit the parent's caches and the warmup hits memoized entries,
costing nothing.

The same initializer slot carries **component registrations** across
worker boundaries: a :class:`~repro.api.ScenarioSpec` references its
scheduler/system/traffic components by *name*, so a worker must execute
the ``repro.registry.register`` calls before materializing such a spec.
``fork`` workers inherit the parent's registry; ``spawn`` workers do
not, and :class:`RegistryWarmup` closes the gap by importing the named
modules (whose import side effect is the registration) in each worker.
:class:`WarmupChain` composes several initializers into the single
callable the backends accept.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Tuple

from repro.core.config import NeuPimsConfig
from repro.model.spec import ModelSpec


@dataclass(frozen=True)
class PerfCacheWarmup:
    """Warm the calibration (and optionally estimate) caches per worker."""

    configs: Tuple[NeuPimsConfig, ...] = field(
        default_factory=lambda: (NeuPimsConfig(),))
    #: model specs to build estimators for (empty: calibration only)
    specs: Tuple[ModelSpec, ...] = ()
    #: sequence lengths to pre-estimate per (config, spec) pair
    seq_lens: Tuple[int, ...] = ()
    #: element widths to calibrate per config (part of the cache key)
    dtype_bytes: Tuple[int, ...] = (2,)

    def __call__(self) -> None:
        # Imports stay inside the call so pickling the warmup spec never
        # drags the whole simulation stack into the parent-side payload.
        from repro.core.estimator import MhaLatencyEstimator, analytic_latencies
        from repro.perf.calibration import cached_calibrate, memoized_estimator

        for config in self.configs:
            for dtype in self.dtype_bytes:
                cached_calibrate(config.timing, config.org,
                                 config.pim_timing, dtype)
            if not self.specs or not self.seq_lens:
                continue
            latencies = analytic_latencies(config.timing, config.org,
                                           config.pim_timing)
            for spec in self.specs:
                estimator = memoized_estimator(MhaLatencyEstimator(
                    spec=spec, org=config.org, latencies=latencies))
                for seq_len in self.seq_lens:
                    estimator.estimate(seq_len)


@dataclass(frozen=True)
class RegistryWarmup:
    """Import component-registering modules in every worker.

    ``modules`` names importable modules whose import side effect is a
    set of ``repro.registry.register`` calls.  Fork workers inherit the
    parent's registry, making the imports cheap no-ops; spawn/forkserver
    workers execute them for real, so specs naming the components
    materialize identically under every start method.
    """

    modules: Tuple[str, ...] = ()

    def __call__(self) -> None:
        """Import each module (idempotent via ``sys.modules``)."""
        for module in self.modules:
            importlib.import_module(module)


@dataclass(frozen=True)
class WarmupChain:
    """Compose several per-worker initializers into one callable."""

    initializers: Tuple[Callable[[], None], ...] = ()

    def __call__(self) -> None:
        """Run the initializers in order."""
        for initializer in self.initializers:
            initializer()
