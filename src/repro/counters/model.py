"""Analytic-tier counter model: typed counter vectors per iteration.

The device tier never materializes command streams, so its counter
vectors come from the same closed-form geometry Algorithm 1 prices:
wave/GWRITE counts of the logit and attend GEMVs
(:func:`repro.pim.gemv.mha_gemv_ops`), the arithmetic C/A-bus cost of
the configured command encoding (:func:`repro.pim.gemv.ca_bus_cost`),
the NPU's ideal MAC-limited GEMM cycles, and the refresh cadence
(``latency / tREFI`` per active channel).  The cycle tier measures the
same quantities from the command-level simulation
(:meth:`repro.dram.controller.MemoryController.counter_view`); the
refutation harness diffs the two.

Per-iteration vectors are a pure function of the batch's
``(batch_tokens, class histogram)`` signature under a fixed device
configuration — the same purity contract as the iteration replay memo —
which is what makes counter totals bit-identical across grouping modes
and stream-vs-batch consumption.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.pim.gemv import ca_bus_cost, mha_gemv_ops


class DeviceCounterModel:
    """Computes typed counter vectors for one :class:`NeuPimsDevice`.

    Attached via :meth:`repro.core.device.NeuPimsDevice.attach_counters`;
    when attached, every memo-missing iteration result is annotated with
    its counter vector before it enters the replay cache, so memo hits
    replay counters exactly like they replay timing.
    """

    __slots__ = ("_num_heads", "_head_dim", "_dtype", "_org", "_composite",
                 "_trefi", "_layers", "_per_class")

    def __init__(self, device) -> None:
        spec, config = device.spec, device.config
        self._num_heads = spec.num_heads
        self._head_dim = spec.head_dim
        self._dtype = spec.dtype_bytes
        self._org = config.org
        self._composite = config.composite_isa
        self._trefi = config.timing.tREFI
        self._layers = device.layers
        # Per-seq_len class contribution memo, same discipline as the
        # device's `_class_contrib`: (issue_slots, row_activations,
        # ca_busy_cycles) per request per resident layer.
        self._per_class: Dict[int, Tuple[float, float, float]] = {}

    def class_counters(self, seq_len: int) -> Tuple[float, float, float]:
        """One request's per-layer (issue slots, row acts, C/A cycles)."""
        entry = self._per_class.get(seq_len)
        if entry is None:
            if len(self._per_class) >= 32768:
                self._per_class.clear()
            org, dtype = self._org, self._dtype
            slots = 0
            ca = 0
            for op in mha_gemv_ops(self._num_heads, self._head_dim, seq_len):
                slots += op.waves(org, dtype)
                ca += ca_bus_cost(op, org, self._composite, dtype)
            entry = (float(slots),
                     float(slots * org.banks_per_channel),
                     float(ca))
            self._per_class[seq_len] = entry
        return entry

    def iteration_counters(self, hist, latency: float,
                           npu_busy_cycles: float) -> Dict[str, float]:
        """Typed counter vector of one iteration.

        ``hist`` is the canonical ``(channel, seq_len, count)`` class
        histogram; ``latency`` the iteration latency (drives the refresh
        prediction) and ``npu_busy_cycles`` the ideal systolic busy time
        already computed by the GEMM stages.
        """
        slots = 0.0
        acts = 0.0
        ca = 0.0
        channels = set()
        for channel, seq_len, count in hist:
            s, a, c = self.class_counters(seq_len)
            slots += s * count
            acts += a * count
            ca += c * count
            channels.add(channel)
        layers = self._layers
        refresh = latency * len(channels) / self._trefi
        return {
            "dram.ca_busy_cycles": ca * layers,
            "dram.refresh_stalls": refresh,
            "dram.row_activations": acts * layers,
            "npu.systolic_busy_cycles": npu_busy_cycles,
            "pim.gemv_issue_slots": slots * layers,
        }

    def annotate(self, result, hist):
        """A copy of an :class:`IterationResult` carrying its counters.

        Returns a fresh result object (never mutates ``result``: the
        device's interleave memo shares result objects across plan
        signatures whose counter vectors differ).
        """
        from repro.core.device import IterationResult
        counters = self.iteration_counters(hist, result.latency,
                                           result.busy.get("npu", 0.0))
        return IterationResult(
            latency=result.latency,
            busy=dict(result.busy),
            external_bytes=result.external_bytes,
            internal_pim_bytes=result.internal_pim_bytes,
            counters=counters,
        )
