"""Cross-fidelity typed counters, refutation, and profile-guided fidelity.

The eighth registry kind (``counters``): typed hardware counter vectors
emitted by both fidelity tiers over the same taxonomy
(:data:`~repro.counters.report.COUNTER_NAMES`), so the tiers can be
*diffed* rather than trusted.

* :mod:`repro.counters.report` — the taxonomy, the frozen
  :class:`CounterReport` rollup and its drift arithmetic;
* :mod:`repro.counters.collect` — the run-time
  :class:`CounterCollector` (the ``typed`` registry component) and the
  :func:`counting_executor` session wrapper;
* :mod:`repro.counters.model` — the analytic-tier
  :class:`DeviceCounterModel` annotating iteration results with their
  predicted counter vectors;
* :mod:`repro.counters.profile` — :class:`FidelityProfile`, the
  profile-guided ``fidelity="auto"`` decision store built from
  refutation runs;
* :mod:`repro.counters.refute` — the cross-tier refutation harness
  (``python -m repro refute``), imported lazily as a submodule because
  it drives the full :mod:`repro.api` layer.

Discipline matches the faults layer: the default component is ``none``
(factory returns ``None``), every producer guards on a single
``is not None`` branch, and the disabled path is gated bit-identical
and <5% overhead by the perf benchmark suite.
"""

from repro.counters.collect import CounterCollector, counting_executor
from repro.counters.model import DeviceCounterModel
from repro.counters.profile import FidelityProfile, region_key, spec_region
from repro.counters.report import COUNTER_NAMES, CounterReport

__all__ = [
    "COUNTER_NAMES",
    "CounterCollector",
    "CounterReport",
    "DeviceCounterModel",
    "FidelityProfile",
    "counting_executor",
    "region_key",
    "spec_region",
]
