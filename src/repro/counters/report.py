"""Typed counter taxonomy and the frozen :class:`CounterReport` rollup.

The counters subsystem confronts the two fidelity tiers (analytic
Algorithm-1 estimates vs command-level DRAM/PIM replay) with a shared
vocabulary of hardware event counters, in the spirit of CounterPoint's
counter-based model refutation (see PAPERS.md).  Both tiers charge the
same six typed counters:

``dram.row_activations``
    DRAM row activations, counting every bank a wave opens (an all-bank
    ``PIM_GEMV`` wave charges ``banks_per_channel`` activations).
``dram.ca_busy_cycles``
    Command/address bus occupancy in cycles (PIM commands occupy the bus
    for 2-4 cycles; regular commands for 1).
``dram.refresh_stalls``
    ``REF`` commands issued while PIM work was resident (each stalls the
    channel for ``tRFC``).
``pim.gemv_issue_slots``
    Dot-product wave issue slots consumed by GEMVs (one per all-bank
    wave, whether issued as ``PIM_DOTPRODUCT`` or inside ``PIM_GEMV``).
``npu.systolic_busy_cycles``
    Ideal MAC-limited systolic-array cycles of the iteration's GEMMs.
``kv.page_churn``
    KV-cache pages (paged-allocator blocks) touched by request
    lifecycles over the run.

Charges roll up into :class:`CounterReport`: frozen, canonically sorted,
and JSON-round-tripping, so reports compare bit-for-bit across grouping
modes, stream-vs-batch consumption, and process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

#: Canonical counter names, sorted; both fidelity tiers charge these.
COUNTER_NAMES: Tuple[str, ...] = (
    "dram.ca_busy_cycles",
    "dram.refresh_stalls",
    "dram.row_activations",
    "kv.page_churn",
    "npu.systolic_busy_cycles",
    "pim.gemv_issue_slots",
)


@dataclass(frozen=True)
class CounterReport:
    """Frozen rollup of typed counter charges.

    ``counters`` holds canonical ``(name, value)`` pairs sorted by name
    with zero entries dropped, so two reports built from the same charges
    — in any charge order, on either side of a pickle or JSON round trip
    — compare equal bit for bit.
    """

    counters: Tuple[Tuple[str, float], ...] = ()

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, float]) -> "CounterReport":
        """Canonicalize a name->value mapping into a report."""
        pairs = tuple(sorted((str(name), float(value))
                             for name, value in mapping.items()
                             if float(value) != 0.0))
        return cls(counters=pairs)

    @classmethod
    def merge(cls, reports: Iterable["CounterReport"]) -> "CounterReport":
        """Sum several reports counter-wise (fleet / sweep rollup)."""
        totals: Dict[str, float] = {}
        for report in reports:
            for name, value in report.counters:
                totals[name] = totals.get(name, 0.0) + value
        return cls.from_mapping(totals)

    def get(self, name: str, default: float = 0.0) -> float:
        """Value of one counter (0.0 when never charged)."""
        for key, value in self.counters:
            if key == name:
                return value
        return default

    def as_dict(self) -> Dict[str, float]:
        """Plain name->value dict (sorted insertion order)."""
        return dict(self.counters)

    def to_dict(self) -> Dict[str, float]:
        """JSON payload: the sorted name->value mapping."""
        return self.as_dict()

    @classmethod
    def from_dict(cls, payload: Mapping[str, float]) -> "CounterReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return cls.from_mapping(payload)

    def __bool__(self) -> bool:
        return bool(self.counters)

    def drift(self, other: "CounterReport") -> Dict[str, float]:
        """Relative per-counter drift vs ``other`` (the refutation diff).

        For each counter charged by either side, returns
        ``|a - b| / max(|a|, |b|)`` (0.0 when both are zero) — a
        symmetric relative error the refutation harness checks against
        per-counter tolerance bounds.
        """
        names = {name for name, _ in self.counters}
        names.update(name for name, _ in other.counters)
        out: Dict[str, float] = {}
        for name in sorted(names):
            a, b = self.get(name), other.get(name)
            scale = max(abs(a), abs(b))
            out[name] = abs(a - b) / scale if scale > 0.0 else 0.0
        return out
