"""Counter collection: the run-scoped accumulator and executor wrapper.

A :class:`CounterCollector` is what the ``counters=typed`` registry
component materializes on a :class:`~repro.api.session.Session`.  The
session charges each iteration's typed counter vector into it (one
``is not None`` branch on the disabled path, same zero-overhead
discipline as the event bus and the faults layer) and snapshots the
total into the :class:`~repro.counters.report.CounterReport` attached to
the :class:`~repro.api.session.RunResult`.

:func:`counting_executor` additionally packages the collector as a
``Session.executor_wrapper`` — a latency-pass-through wrapper that
counts wrapped iterations/requests, used by the composition-order
regression tests (it must commute with fault degrade wrappers on all
simulated metrics).
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Sequence

from repro.counters.report import CounterReport


class CounterCollector:
    """Accumulates typed counter charges over one run.

    Mutable and cheap by design: the hot path does one dict update per
    iteration.  The canonical, frozen view is :meth:`report`.
    """

    __slots__ = ("_totals",)

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}

    def charge(self, counters: Mapping[str, float],
               scale: float = 1.0) -> None:
        """Add a counter vector (optionally scaled) into the totals."""
        totals = self._totals
        if scale == 1.0:
            for name, value in counters.items():
                totals[name] = totals.get(name, 0.0) + value
        else:
            for name, value in counters.items():
                totals[name] = totals.get(name, 0.0) + value * scale

    def charge_one(self, name: str, amount: float) -> None:
        """Add a single counter charge."""
        self._totals[name] = self._totals.get(name, 0.0) + amount

    def snapshot(self) -> Dict[str, float]:
        """Sorted name->value copy of the running totals."""
        return {name: self._totals[name] for name in sorted(self._totals)}

    def report(self) -> CounterReport:
        """Freeze the totals into a canonical report."""
        return CounterReport.from_mapping(self._totals)

    def reset(self) -> None:
        """Drop all accumulated charges."""
        self._totals.clear()


def counting_executor(collector: CounterCollector
                      ) -> Callable[[Callable], Callable]:
    """An executor wrapper that counts iterations without touching timing.

    Returns a wrapper suitable for ``Session.executor_wrapper``: each
    executed batch charges ``exec.wrapped_iterations`` and
    ``exec.wrapped_requests`` into ``collector`` and returns the inner
    executor's latency unchanged.  Because it is a pure pass-through on
    timing, it composes commutatively (on all simulated metrics) with
    latency-scaling wrappers such as the fleet fault degrades — the
    contract the executor-wrapper regression tests pin.
    """

    def wrap(inner: Callable[[Sequence], float]) -> Callable[[Sequence], float]:
        def run(batch: Sequence) -> float:
            collector.charge_one("exec.wrapped_iterations", 1.0)
            collector.charge_one("exec.wrapped_requests", float(len(batch)))
            return inner(batch)
        return run

    return wrap
