"""Cross-fidelity refutation harness: diff the tiers' counter vectors.

CounterPoint-style methodology (PAPERS.md), applied to fidelity rather
than faults: the analytic tier earns trust by surviving attempts to
*refute* it.  For every cell of a scenario grid — MHA GEMV geometry
swept across sequence lengths and the hardware regions that change the
PIM command encoding (composite vs fine-grained ISA, dual vs blocked
row buffer) — the harness:

1. predicts the typed counter vector arithmetically from the shared
   GEMV geometry (:func:`repro.pim.gemv.mha_gemv_ops`, the same single
   source Algorithm 1's estimator prices);
2. measures the same counters from the command-level simulation
   (:meth:`repro.dram.controller.MemoryController.counter_view`);
3. diffs the two per counter (symmetric relative error,
   :meth:`repro.counters.report.CounterReport.drift`) against declared
   per-counter tolerance bounds.

Bounds are deliberately not all zero: refresh ``REF`` commands and
activation replays are *excluded* from the analytic C/A-bus and
row-activation predictions — that exclusion is the honest drift the
harness quantifies, and the bounds declare how much of it the analytic
tier is allowed before a region is demoted to cycle fidelity.  The
resulting :class:`~repro.counters.profile.FidelityProfile` is what
``fidelity="auto"`` consults — the profile-guided-optimization loop.

Exposed on the CLI as ``python -m repro refute``; the CI
``refute-smoke`` job runs the default grid on every push.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.counters.profile import FidelityProfile, region_key
from repro.counters.report import CounterReport

__all__ = ["DEFAULT_BOUNDS", "DEFAULT_SEQ_LENS", "REGIONS",
           "predict_gemv_counters", "run_refute"]

#: Hardware regions swept: (composite ISA, dual row buffer).
REGIONS: Tuple[Tuple[bool, bool], ...] = (
    (True, True), (True, False), (False, True), (False, False))

#: Default sequence-length grid — spans single-wave attends through
#: multi-thousand-wave logits without making the smoke run slow.
DEFAULT_SEQ_LENS: Tuple[int, ...] = (128, 512, 1536)

#: Per-counter drift tolerances (symmetric relative error).  Issue
#: slots are pure command-count arithmetic shared by both tiers, so
#: they must agree exactly; row activations absorb refresh-driven
#: activation replays (~2%); C/A-bus cycles absorb the refresh ``REF``
#: commands the analytic model excludes (worst on the composite
#: encoding, whose baseline command count is tiny); refresh stalls
#: inherit the analytic latency model's refresh-free idealization on
#: top of the cadence quotient.
DEFAULT_BOUNDS: Dict[str, float] = {
    "dram.ca_busy_cycles": 0.35,
    "dram.refresh_stalls": 0.25,
    "dram.row_activations": 0.05,
    "pim.gemv_issue_slots": 0.0,
}


def fine_wave_pitch(timing, org, pim_timing) -> float:
    """Steady-state cycles per fine-grained dot-product wave.

    The fine-grained encoding issues one ``PIM_ACTIVATION`` per 4-bank
    group over the C/A bus, and each group fills the whole tFAW window,
    so the groups serialize at tFAW pitch; the wave then waits tRCD,
    MACs the open page, and precharges before the next wave's
    activations.  This is the C/A-bottleneck the composite encoding's
    internal sequencer eliminates (Figure 9) — the two encodings'
    analytic latencies differ by ~5x for the same GEMV.
    """
    mac = pim_timing.dotprod_cycles_per_page(org.page_bytes)
    return float((org.bank_groups - 1) * timing.tFAW
                 + timing.tRCD + mac + timing.tRP)


def predict_gemv_counters(op, org, composite: bool, dtype_bytes: int,
                          timing, pim_timing, latencies
                          ) -> Tuple[Dict[str, float], float]:
    """Analytic counter vector and latency for one GEMV.

    Pure arithmetic over the op geometry and the analytic per-wave /
    per-GWRITE latencies — no command stream is materialized.  The
    prediction is region-aware where the hardware is: fine-grained
    waves pitch at :func:`fine_wave_pitch`, and the composite
    encoding's header-aware refresh hoists ``REF`` to command-stream
    boundaries (one per staged GWRITE plus the trailing precharge), so
    its refresh count is bounded by ``gwrites + 1`` however long the
    GEMV runs.  Returns ``(counters, predicted_latency)``.
    """
    from repro.pim.gemv import ca_bus_cost

    waves = op.waves(org, dtype_bytes)
    gwrites = op.gwrites(org, dtype_bytes)
    pitch = (latencies.l_tile if composite
             else fine_wave_pitch(timing, org, pim_timing))
    latency = pitch * waves + latencies.l_gwrite * gwrites
    refresh = latency / timing.tREFI
    if composite:
        refresh = min(refresh, float(gwrites + 1))
    counters = {
        "dram.ca_busy_cycles": float(
            ca_bus_cost(op, org, composite, dtype_bytes)),
        "dram.refresh_stalls": refresh,
        "dram.row_activations": float(waves * org.banks_per_channel),
        "pim.gemv_issue_slots": float(waves),
    }
    return counters, latency


def run_refute(model: str = "gpt3-7b",
               seq_lens: Optional[Tuple[int, ...]] = None,
               bounds: Optional[Dict[str, float]] = None,
               audit_fraction: float = 0.0,
               seed: int = 0) -> Dict[str, Any]:
    """Sweep the refutation grid; returns a JSON-ready report.

    For every (region, seq_len) cell, refutes both MHA GEMVs (logit and
    attend) of the model shard.  The report carries per-cell
    predicted/measured/drift triples, all bound violations with their
    offending cell, the worst-offending cell per counter, and the
    :class:`~repro.counters.profile.FidelityProfile` the sweep implies
    (violated regions pinned to cycle fidelity).
    """
    from repro.core.estimator import analytic_latencies
    from repro.dram.timing import HbmOrganization, PimTiming, TimingParams
    from repro.model.spec import get_model
    from repro.pim.engine import measure_gemv_latency
    from repro.pim.gemv import mha_gemv_ops

    spec = get_model(model)
    seq_lens = tuple(seq_lens) if seq_lens else DEFAULT_SEQ_LENS
    if any(s <= 0 for s in seq_lens):
        raise ValueError(f"seq_lens must be positive, got {seq_lens}")
    bounds = dict(DEFAULT_BOUNDS, **(bounds or {}))
    unknown = set(bounds) - set(DEFAULT_BOUNDS)
    if unknown:
        raise ValueError(f"unknown counter bound(s) {sorted(unknown)}; "
                         f"known: {sorted(DEFAULT_BOUNDS)}")
    org = HbmOrganization()
    timing = TimingParams()
    pim_timing = PimTiming()
    latencies = analytic_latencies(timing=timing, org=org,
                                   pim_timing=pim_timing)
    dtype = spec.dtype_bytes

    cells: List[Dict[str, Any]] = []
    violations: List[Dict[str, Any]] = []
    worst: Dict[str, Dict[str, Any]] = {}
    for composite, dual in REGIONS:
        region = region_key(composite, dual)
        for seq_len in seq_lens:
            ops = mha_gemv_ops(spec.num_heads, spec.head_dim, seq_len)
            for op, op_name in zip(ops, ("logit", "attend")):
                predicted, predicted_latency = predict_gemv_counters(
                    op, org, composite, dtype, timing, pim_timing,
                    latencies)
                measured_latency, controller = measure_gemv_latency(
                    op, dual_row_buffer=dual, composite=composite,
                    timing=timing, org=org, dtype_bytes=dtype, fast=True)
                measured = {
                    name: value
                    for name, value in controller.counter_view().items()
                    if name in predicted
                }
                drift = CounterReport.from_mapping(predicted).drift(
                    CounterReport.from_mapping(measured))
                cell = {
                    "region": region,
                    "seq_len": seq_len,
                    "op": op_name,
                    "predicted_latency": predicted_latency,
                    "measured_latency": measured_latency,
                    "counters": {
                        name: {"predicted": predicted[name],
                               "measured": measured.get(name, 0.0),
                               "drift": drift.get(name, 0.0)}
                        for name in sorted(predicted)
                    },
                }
                cells.append(cell)
                for name in sorted(predicted):
                    error = drift.get(name, 0.0)
                    peak = worst.get(name)
                    if peak is None or error > peak["drift"]:
                        worst[name] = {"drift": error, "region": region,
                                       "seq_len": seq_len, "op": op_name}
                    if error > bounds[name]:
                        violations.append({
                            "region": region, "seq_len": seq_len,
                            "op": op_name, "counter": name,
                            "drift": error, "bound": bounds[name]})
    report: Dict[str, Any] = {
        "model": spec.name,
        "seq_lens": list(seq_lens),
        "bounds": dict(sorted(bounds.items())),
        "cells": cells,
        "violations": violations,
        "worst": {name: worst[name] for name in sorted(worst)},
        "passed": not violations,
    }
    report["profile"] = FidelityProfile.from_refutation(
        report, audit_fraction=audit_fraction, seed=seed).to_dict()
    return report
