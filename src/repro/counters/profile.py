"""Profile-guided fidelity: the store behind ``fidelity="auto"``.

Closes the PGO loop over the refutation harness (see PAPERS.md): a
:class:`FidelityProfile` records, per scenario region, whether the
analytic tier's counter vectors survived refutation against the cycle
tier.  ``fidelity="auto"`` consults the profile (shipped in a spec's
``fidelity_options["profile"]`` as a plain JSON payload, so it freezes,
pickles through :class:`~repro.exec.ParallelRunner` and round-trips the
CLI) and picks analytic or cycle per region — keeping fleet-scale sweeps
fast where the analytic tier is proven honest and falling back to cycle
accuracy where it drifted.

Scenario regions key on the hardware features that change the PIM
command encoding — the composite ISA and the dual-row-buffer bank —
because those are exactly the axes the refutation grid sweeps.
Decisions are deterministic and seedable: an ``audit_fraction`` of
scenarios in analytic regions is promoted to cycle fidelity via a
stable hash of the scenario payload, so long sweeps keep re-checking
the profile's own assumptions without any RNG state.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

#: The two fidelity tiers a profile can assign to a region.
TIERS = ("analytic", "cycle")


def region_key(composite: bool, dual_row_buffer: bool) -> str:
    """Canonical region name for one PIM command-encoding configuration."""
    encoding = "composite" if composite else "fine"
    buffer = "dual" if dual_row_buffer else "blocked"
    return f"{encoding}:{buffer}"


def spec_region(spec) -> str:
    """The refutation region a :class:`ScenarioSpec` falls into."""
    config = spec.resolve_config()
    return region_key(config.composite_isa, config.dual_row_buffer)


def _audit_draw(seed: int, token: str) -> float:
    """Deterministic uniform draw in [0, 1) from a seed and a token."""
    digest = hashlib.sha256(f"{seed}:{token}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FidelityProfile:
    """Per-region analytic-vs-cycle decisions learned from refutation.

    Attributes
    ----------
    regions:
        Canonical sorted ``(region, tier)`` pairs; regions absent from
        the profile use ``default``.
    default:
        Tier for unknown regions (``"analytic"``).
    audit_fraction:
        Fraction of analytic-region scenarios promoted to cycle
        fidelity as honesty audits (deterministic per scenario).
    seed:
        Seed for the audit hash, so distinct sweeps audit distinct
        scenario subsets while every decision stays reproducible.
    """

    regions: Tuple[Tuple[str, str], ...] = ()
    default: str = "analytic"
    audit_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.default not in TIERS:
            raise ValueError(f"unknown default tier {self.default!r}")
        for region, tier in self.regions:
            if tier not in TIERS:
                raise ValueError(f"unknown tier {tier!r} for region "
                                 f"{region!r}")
        if not 0.0 <= self.audit_fraction <= 1.0:
            raise ValueError("audit_fraction must be in [0, 1]")
        object.__setattr__(self, "regions",
                           tuple(sorted(self.regions)))

    @classmethod
    def from_refutation(cls, report: Mapping[str, Any],
                        audit_fraction: float = 0.0,
                        seed: int = 0) -> "FidelityProfile":
        """Build a profile from a refutation report payload.

        Regions where every swept cell stayed within the per-counter
        bounds run analytic; regions with any violation are pinned to
        cycle fidelity.
        """
        violated = {cell["region"] for cell in report.get("violations", ())}
        regions = tuple(sorted(
            (region, "cycle" if region in violated else "analytic")
            for region in {cell["region"] for cell in report.get("cells", ())}
        ))
        return cls(regions=regions, audit_fraction=audit_fraction, seed=seed)

    def tier_for(self, region: str) -> str:
        """The profiled tier for one region (``default`` if unknown)."""
        for key, tier in self.regions:
            if key == region:
                return tier
        return self.default

    def decide(self, region: str, token: str) -> str:
        """Final tier for a scenario: profiled region tier plus audits.

        ``token`` is any stable serialization of the scenario; the same
        (seed, token) always decides the same way.
        """
        tier = self.tier_for(region)
        if tier == "analytic" and self.audit_fraction > 0.0 \
                and _audit_draw(self.seed, token) < self.audit_fraction:
            return "cycle"
        return tier

    def resolve(self, spec) -> str:
        """Tier for a :class:`ScenarioSpec`, honoring spec constraints.

        Cycle fidelity is device-level and PIM-only; scenarios the cycle
        tier cannot serve (pipeline-parallel system engine, non-PIM
        baselines) stay analytic whatever the profile says.
        """
        token = json.dumps(spec.to_dict(), sort_keys=True, default=str)
        tier = self.decide(spec_region(spec), token)
        if tier == "cycle" and (spec.pp is not None or spec.system not in
                                ("neupims", "npu-pim")):
            return "analytic"
        return tier

    def to_dict(self) -> Dict[str, Any]:
        """JSON payload (round-trips through :meth:`from_dict`)."""
        payload: Dict[str, Any] = {
            "regions": {region: tier for region, tier in self.regions},
        }
        if self.default != "analytic":
            payload["default"] = self.default
        if self.audit_fraction:
            payload["audit_fraction"] = self.audit_fraction
        if self.seed:
            payload["seed"] = self.seed
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FidelityProfile":
        """Rebuild a profile from :meth:`to_dict` output."""
        if not isinstance(payload, Mapping):
            raise TypeError("FidelityProfile.from_dict expects a mapping")
        known = {"regions", "default", "audit_fraction", "seed"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown FidelityProfile field(s) "
                             f"{sorted(unknown)}; known: {sorted(known)}")
        regions = payload.get("regions", {})
        return cls(
            regions=tuple(sorted((str(k), str(v))
                                 for k, v in dict(regions).items())),
            default=payload.get("default", "analytic"),
            audit_fraction=float(payload.get("audit_fraction", 0.0)),
            seed=int(payload.get("seed", 0)),
        )
