"""NPU-only baseline device (no PIM).

Represents an existing NPU accelerator (TPU-class) with the same memory
bandwidth as the other alternatives (paper §8.1): GEMMs run on the
systolic arrays, and the MHA GEMVs run against plain HBM at external
bandwidth — the bandwidth-bound execution that motivates PIM offload.
Softmax runs on the GPU-like vector units.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.config import NeuPimsConfig
from repro.core.device import IterationResult
from repro.model.layers import attend_gemv, logit_gemv
from repro.model.spec import ModelSpec
from repro.npu.chip import NpuChip
from repro.serving.request import InferenceRequest


class NpuOnlyDevice:
    """Latency model of the NPU-only baseline.

    The iteration timeline is fully serialized per decoder block (the
    GEMM -> GEMV dependency of §2.1 admits no overlap on a homogeneous
    device): QKV GEMM, then per-request logit/softmax/attend on the NPU,
    then projection + FFNs.
    """

    def __init__(self, spec: ModelSpec, config: Optional[NeuPimsConfig] = None,
                 tp: int = 1, layers_resident: Optional[int] = None) -> None:
        self.spec = spec
        self.config = config or NeuPimsConfig()
        self.tp = tp
        self.layers = (spec.num_layers if layers_resident is None
                       else layers_resident)
        if self.layers <= 0:
            raise ValueError("layers_resident must be positive")
        self.npu = NpuChip(self.config.npu, self.config.org,
                           self.config.bandwidth_derate)

    def gemm_stage_cycles(self, batch_tokens: int):
        """Reuses the NeuPIMs GEMM stage model (identical NPU)."""
        from repro.core.device import NeuPimsDevice
        helper = NeuPimsDevice(self.spec, self.config, tp=self.tp,
                               layers_resident=self.layers)
        return helper.gemm_stage_cycles(batch_tokens)

    def mha_cycles(self, requests: Sequence[InferenceRequest]):
        """(latency, external bytes) of MHA against plain HBM.

        Following the paper's MHA accounting (Algorithm 1 operates on the
        full ``E`` / ``N_head``), attention is not sharded by TP.
        """
        dtype = self.spec.dtype_bytes
        total_cycles = 0.0
        total_bytes = 0.0
        softmax = 0.0
        for request in requests:
            logit = logit_gemv(self.spec, request.seq_len)
            attend = attend_gemv(self.spec, request.seq_len)
            total_cycles += self.npu.gemv_cycles(logit, dtype)
            total_cycles += self.npu.gemv_cycles(attend, dtype)
            total_bytes += logit.bytes_moved(dtype) + attend.bytes_moved(dtype)
            softmax += self.npu.softmax_latency(request.seq_len,
                                                self.spec.num_heads)
        # Softmax overlaps the bandwidth-bound GEMV streams on-chip.
        return max(total_cycles, softmax), total_bytes, softmax

    def iteration(self, requests: Sequence[InferenceRequest]) -> IterationResult:
        """One generation iteration on the NPU-only device."""
        if not requests:
            raise ValueError("empty batch")
        gemm = self.gemm_stage_cycles(len(requests))
        t_mha, mha_bytes, softmax = self.mha_cycles(requests)
        latency = (gemm.qkv_cycles + t_mha + gemm.projffn_cycles) * self.layers
        # NPU compute is only meaningfully busy during the GEMM stages;
        # the GEMV stage keeps the arrays nearly idle (its FLOPs are tiny).
        busy = {
            "npu": gemm.compute_cycles * self.layers,
            "npu_vector": softmax * self.layers,
            "pim": 0.0,
        }
        return IterationResult(
            latency=latency,
            busy=busy,
            external_bytes=(gemm.external_bytes + mha_bytes) * self.layers,
            internal_pim_bytes=0.0,
        )

    def executor(self):
        """A BatchExecutor closure over this device."""
        def run(batch: Sequence[InferenceRequest]) -> float:
            return self.iteration(batch).latency
        return run
