"""GPU-only baseline: a roofline device model of an A100-class GPU.

The paper's GPU-only baseline is a real A100 running PyTorch; Figure 12
shows it performing marginally *below* the NPU-only baseline (both are
homogeneous devices bound by the same GEMM/GEMV roofline, with the GPU
paying extra kernel/framework overheads).  We model the GPU as a roofline
executor over the same operator set, with a launch overhead per operator
and a batching efficiency derate typical of transformer inference kernels.

This module also provides the Figure 5 utilization analysis: compute,
bandwidth and capacity utilization of GPU systems (RTX 3090 / A100 class)
serving four open LLMs.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, Optional, Sequence

from repro.core.device import IterationResult
from repro.model.layers import (
    OpKind,
    decoder_block_operators,
)
from repro.model.roofline import A100_ROOFLINE, RTX3090_ROOFLINE, DeviceRoofline
from repro.model.spec import ModelSpec
from repro.serving.request import InferenceRequest


@dataclass(frozen=True)
class GpuModel:
    """GPU hardware parameters."""

    roofline: DeviceRoofline
    memory_bytes: int
    #: fixed per-kernel launch overhead in cycles (1 GHz base)
    kernel_overhead: float = 2000.0
    #: achievable fraction of the roofline for real kernels
    efficiency: float = 0.7

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")


A100_40GB = GpuModel(roofline=A100_ROOFLINE, memory_bytes=40 * (1 << 30))
RTX3090_24GB = GpuModel(roofline=RTX3090_ROOFLINE, memory_bytes=24 * (1 << 30),
                        efficiency=0.6)


class GpuOnlyDevice:
    """Roofline latency model for GPU batched inference.

    Parameters
    ----------
    spec:
        Model served by this GPU (shard).
    gpu:
        GPU hardware model.
    tp:
        Tensor-parallel degree for the weight GEMMs.
    layers_resident:
        Decoder blocks on this GPU.
    """

    def __init__(self, spec: ModelSpec, gpu: GpuModel = A100_40GB,
                 tp: int = 1, layers_resident: Optional[int] = None) -> None:
        self.spec = spec
        self.gpu = gpu
        self.tp = tp
        self.layers = (spec.num_layers if layers_resident is None
                       else layers_resident)
        if self.layers <= 0:
            raise ValueError("layers_resident must be positive")

    def _op_cycles(self, flops: float, bytes_moved: float) -> float:
        """Roofline time of one kernel in cycles (1 GHz base clock)."""
        seconds = self.gpu.roofline.time_for(flops, bytes_moved)
        return seconds / self.gpu.efficiency * 1e9 + self.gpu.kernel_overhead

    def iteration(self, requests: Sequence[InferenceRequest]) -> IterationResult:
        """One generation iteration: all operators on the GPU, serialized.

        MHA runs as per-request fused attention kernels (selective
        batching); QKV/projection/FFN are batched GEMMs.  TP shards only
        the weight GEMMs, mirroring the NeuPIMs accounting.
        """
        if not requests:
            raise ValueError("empty batch")
        seq_lens = [r.seq_len for r in requests]
        # Weight GEMMs are TP-sharded; attention runs against the full
        # (unsharded) KV cache, matching the NeuPIMs MHA accounting.
        gemm_source = decoder_block_operators(self.spec, seq_lens, tp=self.tp)
        attn_source = decoder_block_operators(self.spec, seq_lens, tp=1)
        ops = ([op for op in gemm_source if op.kind is OpKind.GEMM]
               + [op for op in attn_source if op.kind is not OpKind.GEMM])
        latency = 0.0
        compute_busy = 0.0
        total_bytes = 0.0
        # Per-request attention runs as one fused kernel per iteration
        # (FlashAttention-style): aggregate the GEMV + softmax work.
        fused_flops = 0.0
        fused_bytes = 0.0
        for op in ops:
            if op.kind is OpKind.GEMM:
                cycles = self._op_cycles(op.flops, op.bytes_moved)
                latency += cycles
                ideal = op.flops / (self.gpu.roofline.peak_flops / 1e9)
                compute_busy += min(cycles, ideal)
            else:
                fused_flops += op.flops
                fused_bytes += op.bytes_moved
            total_bytes += op.bytes_moved
        if fused_bytes > 0:
            cycles = self._op_cycles(fused_flops, fused_bytes)
            latency += cycles
            ideal = fused_flops / (self.gpu.roofline.peak_flops / 1e9)
            compute_busy += min(cycles, ideal)
        latency *= self.layers
        total_bytes *= self.layers
        return IterationResult(
            latency=latency,
            busy={"npu": compute_busy * self.layers, "pim": 0.0},
            external_bytes=float(total_bytes),
            internal_pim_bytes=0.0,
        )

    def executor(self):
        """A BatchExecutor closure over this device."""
        def run(batch: Sequence[InferenceRequest]) -> float:
            return self.iteration(batch).latency
        return run


# ----------------------------------------------------------------------
# Figure 5: GPU resource utilization for four open LLMs.
# ----------------------------------------------------------------------

def gpu_cluster_utilization(spec: ModelSpec, gpu: GpuModel,
                            batch_size: int = 32,
                            avg_seq_len: int = 512) -> Dict[str, float]:
    """Compute / bandwidth / capacity utilization of a GPU cluster.

    The cluster size is the minimum GPU count whose aggregate memory holds
    the weights plus the batch's KV cache (the paper's observation that
    GPU counts are capacity-determined, pushing capacity utilization near
    100% while compute stays under 40%).
    """
    if batch_size <= 0 or avg_seq_len <= 0:
        raise ValueError("batch_size and avg_seq_len must be positive")
    kv_bytes = batch_size * avg_seq_len * spec.kv_bytes_per_token()
    footprint = spec.weight_bytes + kv_bytes
    num_gpus = max(1, ceil(footprint / (gpu.memory_bytes * 0.95)))
    capacity_util = footprint / (num_gpus * gpu.memory_bytes)

    seq_lens = [avg_seq_len] * batch_size
    ops = decoder_block_operators(spec, seq_lens)
    total_seconds = 0.0
    compute_seconds = 0.0
    bandwidth_seconds = 0.0
    for op in ops:
        seconds = (gpu.roofline.time_for(op.flops / num_gpus,
                                         op.bytes_moved / num_gpus)
                   / gpu.efficiency)
        total_seconds += seconds
        compute_seconds += op.flops / num_gpus / gpu.roofline.peak_flops
        bandwidth_seconds += (op.bytes_moved / num_gpus
                              / gpu.roofline.peak_bandwidth)
    return {
        "compute": min(1.0, compute_seconds / total_seconds),
        "bandwidth": min(1.0, bandwidth_seconds / total_seconds),
        "capacity": min(1.0, capacity_util),
        "num_gpus": float(num_gpus),
    }
