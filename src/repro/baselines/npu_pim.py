"""Naive NPU+PIM baseline (paper §3.2).

Integrates a Newton-class PIM with the NPU *without* any of the NeuPIMs
techniques: single row buffer per bank (blocked mode), fine-grained PIM
commands, round-robin channel assignment, and fully serialized NPU / PIM
execution (Figure 11(a)).  Implemented as a configuration of
:class:`repro.core.device.NeuPimsDevice` so the ablation study (Figure 13)
can enable each technique independently from exactly this starting point.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import NeuPimsConfig
from repro.core.device import NeuPimsDevice
from repro.model.spec import ModelSpec


def naive_npu_pim_device(spec: ModelSpec, tp: int = 1,
                         layers_resident: Optional[int] = None,
                         config: Optional[NeuPimsConfig] = None
                         ) -> NeuPimsDevice:
    """Build the naive NPU+PIM baseline device.

    ``config`` may override hardware parameters; its feature flags are
    forced to the baseline values.
    """
    base = config or NeuPimsConfig()
    naive = base.with_features(dual_row_buffer=False, composite_isa=False,
                               greedy_binpack=False,
                               sub_batch_interleaving=False)
    return NeuPimsDevice(spec, naive, tp=tp, layers_resident=layers_resident)


def ablation_device(spec: ModelSpec, *, dual_row_buffer: bool = False,
                    greedy_binpack: bool = False,
                    sub_batch_interleaving: bool = False,
                    tp: int = 1,
                    layers_resident: Optional[int] = None) -> NeuPimsDevice:
    """Build an ablation point for Figure 13.

    The figure's configurations stack techniques in order: NPU+PIM (all
    off) -> +DRB -> +DRB+GMLBP -> +DRB+GMLBP+SBI.  The DRB/composite-ISA
    pairing is encoded once in :meth:`NeuPimsConfig.ablation`.
    """
    config = NeuPimsConfig.ablation(
        dual_row_buffer=dual_row_buffer,
        greedy_binpack=greedy_binpack,
        sub_batch_interleaving=sub_batch_interleaving,
    )
    return NeuPimsDevice(spec, config, tp=tp, layers_resident=layers_resident)
