"""Baseline device models: GPU-only, NPU-only, naive NPU+PIM, TransPIM.

Each baseline is a registered ``system`` component — ``"gpu-only"``,
``"npu-only"``, ``"npu-pim"``, ``"transpim"`` in :mod:`repro.registry`
— so scenario specs select them by name and constructor keywords pass
through ``ScenarioSpec.system_options`` (e.g. a custom
:class:`~repro.baselines.gpu.GpuModel` via ``{"gpu": ...}``).  The
classes stay public for hand wiring.
"""

from repro.baselines.gpu import (
    A100_40GB,
    RTX3090_24GB,
    GpuModel,
    GpuOnlyDevice,
    gpu_cluster_utilization,
)
from repro.baselines.npu_only import NpuOnlyDevice
from repro.baselines.npu_pim import ablation_device, naive_npu_pim_device
from repro.baselines.transpim import TransPimDevice, TransPimModel

__all__ = [
    "A100_40GB",
    "RTX3090_24GB",
    "GpuModel",
    "GpuOnlyDevice",
    "gpu_cluster_utilization",
    "NpuOnlyDevice",
    "ablation_device",
    "naive_npu_pim_device",
    "TransPimDevice",
    "TransPimModel",
]
