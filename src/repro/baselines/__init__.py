"""Baseline device models: GPU-only, NPU-only, naive NPU+PIM, TransPIM."""

from repro.baselines.gpu import (
    A100_40GB,
    RTX3090_24GB,
    GpuModel,
    GpuOnlyDevice,
    gpu_cluster_utilization,
)
from repro.baselines.npu_only import NpuOnlyDevice
from repro.baselines.npu_pim import ablation_device, naive_npu_pim_device
from repro.baselines.transpim import TransPimDevice, TransPimModel

__all__ = [
    "A100_40GB",
    "RTX3090_24GB",
    "GpuModel",
    "GpuOnlyDevice",
    "gpu_cluster_utilization",
    "NpuOnlyDevice",
    "ablation_device",
    "naive_npu_pim_device",
    "TransPimDevice",
    "TransPimModel",
]
