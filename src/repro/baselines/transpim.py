"""TransPIM baseline: a PIM-only transformer accelerator (paper §8.2).

TransPIM (Zhou et al., HPCA 2022) executes *every* transformer operator
inside the PIM, using a token-based dataflow with ring broadcasts between
banks.  Two properties make it slow for batched decoder inference, and the
model captures both:

1. **No batching** — the token-based dataflow processes one request at a
   time, so weight matrices are re-streamed through the in-memory compute
   units for every token of every request instead of being amortized over
   the batch.
2. **GEMMs at memory rates** — the in-bank MAC units extract bandwidth,
   not compute: a GEMM runs at the effective in-memory streaming rate
   (comparable to external HBM bandwidth once the encoder-oriented ring
   broadcast overhead of decoder layers is paid) rather than at systolic
   array rates.

The paper reports NeuPIMs at 79x-431x TransPIM's throughput (average
228x), growing with batch size — the gap *is* the lost batching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.config import NeuPimsConfig
from repro.core.device import IterationResult
from repro.model.layers import decoder_block_operators
from repro.model.spec import ModelSpec
from repro.serving.request import InferenceRequest


@dataclass(frozen=True)
class TransPimModel:
    """TransPIM effective-rate parameters.

    ``dataflow_efficiency`` derates the in-memory streaming rate for the
    ring-broadcast/token-dataflow overheads on decoder blocks (TransPIM is
    tuned for encoders, paper §8.2); ``attention_efficiency`` is higher
    because attention is the operator its dataflow was designed for.
    """

    dataflow_efficiency: float = 0.8
    attention_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.dataflow_efficiency <= 1:
            raise ValueError("dataflow_efficiency must be in (0, 1]")
        if not 0 < self.attention_efficiency <= 1:
            raise ValueError("attention_efficiency must be in (0, 1]")


class TransPimDevice:
    """Latency model of a TransPIM device with NeuPIMs-matched memory.

    The HBM timing parameters and capacity match the NeuPIMs prototype
    (paper: "we align the memory specifications of TransPIM ... with those
    used for NeuPIMs").
    """

    def __init__(self, spec: ModelSpec, config: Optional[NeuPimsConfig] = None,
                 model: Optional[TransPimModel] = None,
                 layers_resident: Optional[int] = None) -> None:
        self.spec = spec
        self.config = config or NeuPimsConfig()
        self.model = model or TransPimModel()
        self.layers = (spec.num_layers if layers_resident is None
                       else layers_resident)
        if self.layers <= 0:
            raise ValueError("layers_resident must be positive")

    @property
    def _stream_bytes_per_cycle(self) -> float:
        """Effective in-memory streaming rate of the whole device."""
        # In-memory MACs consume rows at the external-bandwidth-class rate
        # once ring broadcast costs are paid; see module docstring.
        return (self.config.org.total_bandwidth / 1e9
                * self.model.dataflow_efficiency)

    def request_token_cycles(self, seq_len: int) -> float:
        """Cycles for one request to generate one token (all layers).

        Single-request execution: every weight byte streams through the
        in-memory compute units, plus the request's own KV cache for
        attention.
        """
        if seq_len <= 0:
            raise ValueError("seq_len must be positive")
        ops = decoder_block_operators(self.spec, [seq_len])
        gemm_bytes = sum(op.bytes_moved for op in ops
                         if not op.name.startswith(("logit", "attend",
                                                    "softmax")))
        attn_bytes = sum(op.bytes_moved for op in ops
                         if op.name.startswith(("logit", "attend")))
        cycles = gemm_bytes / self._stream_bytes_per_cycle
        cycles += attn_bytes / (self.config.org.total_bandwidth / 1e9
                                * self.model.attention_efficiency)
        return cycles * self.layers

    def iteration(self, requests: Sequence[InferenceRequest]) -> IterationResult:
        """One "iteration": every request advances one token, sequentially."""
        if not requests:
            raise ValueError("empty batch")
        latency = sum(self.request_token_cycles(r.seq_len) for r in requests)
        internal = sum(
            2 * r.seq_len * self.spec.d_model * self.spec.dtype_bytes
            for r in requests
        ) * self.layers
        return IterationResult(
            latency=latency,
            busy={"pim": latency, "npu": 0.0},
            external_bytes=0.0,
            internal_pim_bytes=float(internal),
        )

    def executor(self):
        """A BatchExecutor closure over this device."""
        def run(batch: Sequence[InferenceRequest]) -> float:
            return self.iteration(batch).latency
        return run
