"""Routing policies: pick a healthy node for each dispatched request.

A policy is a tiny, deterministic strategy object created by the
``router`` registry kind (see :mod:`repro.registry.builtin`).  The
:class:`~repro.cluster.router.Router` calls :meth:`RoutingPolicy.choose`
once per dispatched request with the request id, the list of currently
healthy node indices, and a per-node load estimate (already derated for
any active :class:`~repro.faults.plan.NodeDegrade` windows), and
submits the request to the returned node.

All policies are pure functions of their constructor arguments and the
``choose`` inputs (power-of-two uses a private seeded
:class:`random.Random`), so a fleet run is reproducible from its
:class:`~repro.cluster.spec.FleetSpec` alone.
"""

from __future__ import annotations

import random
from typing import List, Sequence

__all__ = [
    "LeastLoadedPolicy",
    "PowerOfTwoPolicy",
    "RoundRobinPolicy",
    "RoutingPolicy",
    "SessionAffinityPolicy",
]


class RoutingPolicy:
    """Base class for fleet routing policies.

    Subclasses implement :meth:`choose`.  ``num_nodes`` is the fleet
    size; policies may keep per-fleet cursors but must stay
    deterministic for a fixed construction + call sequence.
    """

    #: Whether :meth:`choose` reads its ``load`` argument.  Policies
    #: that route purely on the request id / rotation cursor set this
    #: ``False`` and the router skips the per-dispatch channel-load
    #: rollup entirely, passing an empty sequence instead (the rollup
    #: is the dominant dispatch cost on large single-policy fleets).
    uses_load = True

    def __init__(self, num_nodes: int) -> None:
        """Remember the fleet size (``num_nodes >= 1``)."""
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self.num_nodes = int(num_nodes)

    def choose(self, request_id: int, healthy: Sequence[int],
               load: Sequence[float]) -> int:
        """Return the node index (from ``healthy``) for ``request_id``.

        ``healthy`` is a non-empty, sorted list of node indices that are
        up and accepting work; ``load`` has one entry per fleet node
        (indices outside ``healthy`` are present but must be ignored).
        """
        raise NotImplementedError


class RoundRobinPolicy(RoutingPolicy):
    """Cycle through healthy nodes in index order.

    The cursor advances over the *fleet* index space, skipping downed
    nodes, so a node that recovers re-enters rotation in its original
    position.
    """

    uses_load = False

    def __init__(self, num_nodes: int) -> None:
        """Start the rotation cursor at node 0."""
        super().__init__(num_nodes)
        self._cursor = 0

    def choose(self, request_id: int, healthy: Sequence[int],
               load: Sequence[float]) -> int:
        """Return the next healthy node at-or-after the cursor."""
        if len(healthy) == self.num_nodes:
            # Whole fleet up: the cursor node is healthy by definition.
            node = self._cursor
            self._cursor = (self._cursor + 1) % self.num_nodes
            return node
        up = set(healthy)
        for _ in range(self.num_nodes):
            node = self._cursor % self.num_nodes
            self._cursor = (self._cursor + 1) % self.num_nodes
            if node in up:
                return node
        return healthy[0]


class LeastLoadedPolicy(RoutingPolicy):
    """Send each request to the healthy node with the lowest load.

    Ties break toward the lower node index, keeping the choice
    deterministic when several nodes are idle.
    """

    def choose(self, request_id: int, healthy: Sequence[int],
               load: Sequence[float]) -> int:
        """Return the healthy node minimizing ``(load, index)``."""
        return min(healthy, key=lambda node: (load[node], node))


class SessionAffinityPolicy(RoutingPolicy):
    """Pin each request id to a home node (``request_id % num_nodes``).

    If the home node is down the request spills to the next healthy
    index (wrapping), so affinity degrades gracefully under node kills
    instead of blocking the stream.
    """

    uses_load = False

    def choose(self, request_id: int, healthy: Sequence[int],
               load: Sequence[float]) -> int:
        """Return the home node, or the next healthy one after it."""
        up = set(healthy)
        home = request_id % self.num_nodes
        for offset in range(self.num_nodes):
            node = (home + offset) % self.num_nodes
            if node in up:
                return node
        return healthy[0]


class PowerOfTwoPolicy(RoutingPolicy):
    """Power-of-two-choices: sample two healthy nodes, take the lighter.

    The classic load-balancing result (two random choices get most of
    the benefit of global least-loaded) with a private seeded RNG so
    fleets replay bit-identically for a fixed ``seed``.
    """

    def __init__(self, num_nodes: int, seed: int = 0) -> None:
        """Create the policy with a private ``random.Random(seed)``."""
        super().__init__(num_nodes)
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    def choose(self, request_id: int, healthy: Sequence[int],
               load: Sequence[float]) -> int:
        """Sample two healthy candidates; return the less loaded one."""
        pool: List[int] = list(healthy)
        if len(pool) == 1:
            return pool[0]
        first = pool[self._rng.randrange(len(pool))]
        second = pool[self._rng.randrange(len(pool))]
        if (load[second], second) < (load[first], first):
            return second
        return first
