"""The fleet router: lockstep node stepping, health probes, failover.

The :class:`Router` dispatches one fleet-level arrival stream across N
per-node :class:`~repro.api.session.Session` stacks, driving them in
lockstep through the PR-5 ``step()`` core: before each arrival every
node is advanced until its local clock reaches the arrival time, then a
pluggable :class:`~repro.cluster.policies.RoutingPolicy` picks the
target node and the request is submitted to that node's pool (nodes run
the ``"external"`` traffic kind, so the router is their only arrival
source).

When the fleet spec carries a ``fault_seed``, a pure-seeded
:class:`~repro.faults.injector.NodeFaultSchedule` drives the health
model: the router probes every node each ``probe_interval_cycles``;
``fail_threshold`` consecutive failed probes mark a node down (emitting
:class:`~repro.serving.events.NodeMarkedDown`) and trigger failover —
the node's in-flight and waiting requests are extracted through
:meth:`~repro.serving.scheduler.IterationScheduler.release_request`,
charged a recompute-based restore delay via the preemption cost model,
re-based to a fresh arrival/deadline and re-routed to surviving nodes
(:class:`~repro.serving.events.RequestFailedOver`).  A downed node
re-admits only after a successful probe past the cooldown
(half-open; :class:`~repro.serving.events.NodeRecovered`).  With a
``shed_watermark`` set, the router also sheds new arrivals while the
surviving fleet's recent ``KvPressure`` events cross the watermark
(:class:`~repro.serving.events.FleetShedding`).

Everything is deterministic per (fleet spec, fault seed): probes fire
at fixed multiples of the interval, the schedule is pure (no cursors),
and node stepping order is resolved by (next-event time, node index).
A single-node fleet with round-robin routing and no fault plan produces
request records bit-identical to running the node's
:class:`~repro.api.spec.ScenarioSpec` through a plain ``Session`` —
the probe machinery is entirely absent without a fault plan.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.api.session import Session, aggregate_resilience
from repro.api.spec import TrafficSpec
from repro.cluster.result import FleetResult
from repro.cluster.spec import FleetSpec
from repro.faults.injector import NodeFaultSchedule
from repro.faults.plan import make_node_fault_plan
from repro.registry import REGISTRY, thaw_options
from repro.serving.events import (FleetShedding, KvPressure, NodeMarkedDown,
                                  NodeRecovered, RequestFailedOver)
from repro.serving.latency import LatencyReport, RequestLatency
from repro.serving.preemption import PreemptionCosts
from repro.serving.request import InferenceRequest
from repro.sim.events import EventBus

__all__ = ["NodeHandle", "Router"]

#: Hard stop for the drain loop — far above any real fleet's step count,
#: so a wiring bug surfaces as an error instead of a hang.
_DRAIN_GUARD = 10_000_000


@dataclass
class NodeHandle:
    """Router-side state for one fleet node.

    ``down`` tracks the health verdict (probe-driven); ``stalled`` marks
    a node whose scheduler returned "nothing runnable" while requests
    were still pooled (KV starvation) — it is skipped by the stepping
    loop until a new submission clears the flag, and anything still
    stuck at the end of the run is router-shed to preserve request
    conservation.
    """

    index: int
    session: Session
    down: bool = False
    stalled: bool = False
    consecutive_failures: int = 0
    last_fail: float = 0.0
    down_since: float = 0.0
    #: cached `Router._next_time` value; valid until the node's sim
    #: state changes (step, failover extraction) — dispatches update it
    #: incrementally, keeping the per-arrival routing loop O(1) per node
    next_hint: Optional[float] = None
    hint_valid: bool = False
    #: hot references resolved once at materialization so the
    #: per-arrival dispatch path skips the session attribute chains
    pool: Any = None
    scheduler: Any = None
    max_iterations: int = 0


class Router:
    """Dispatches one arrival stream across a health-checked fleet.

    Construction only stores the :class:`~repro.cluster.spec.FleetSpec`;
    :meth:`materialize` builds the per-node sessions, the routing policy
    (a ``router`` registry component) and the optional seeded node-fault
    schedule; :meth:`run` executes the stream and caches the
    :class:`~repro.cluster.result.FleetResult`.  Fleet-level typed
    events (node health, failover, shedding) publish on :attr:`events`
    with the usual zero-overhead-when-unsubscribed guard.
    """

    def __init__(self, fleet: FleetSpec) -> None:
        self.fleet = fleet
        #: fleet-level typed events (node health, failover, shedding)
        self.events = EventBus()
        #: optional cap on per-call group-commit budgets (``1`` forces
        #: pure step-by-step draining); results are bit-identical for
        #: any value — the chunking-equivalence invariant the fleet
        #: chaos harness pins across its ``batch | stream`` modes
        self.max_group_steps: Optional[int] = None
        self.handles: List[NodeHandle] = []
        self.stream: Tuple[InferenceRequest, ...] = ()
        #: pure-seeded node fault schedule (``None`` without a seed)
        self.schedule: Optional[NodeFaultSchedule] = None
        self.policy = None
        #: requests awaiting re-dispatch while no node is healthy
        self._queue: Deque[InferenceRequest] = deque()
        #: router-level terminal outcomes (watermark/stuck sheds)
        self._outcomes: Dict[int, str] = {}
        self._failed_over = 0
        #: cached healthy-index list, dropped on any health transition
        self._healthy_view: Optional[List[int]] = None
        #: set when a dispatch unstalls a node (run-loop must re-advance)
        self._needs_advance = False
        self._node_log: List[Dict[str, Any]] = []
        #: recent KvPressure event times from surviving nodes
        self._pressure: Deque[float] = deque()
        self._next_probe = fleet.health.probe_interval_cycles
        self._probing_done = False
        self._materialized = False
        self._result: Optional[FleetResult] = None

    # ------------------------------------------------------------------
    # Materialization.
    # ------------------------------------------------------------------

    def materialize(self) -> "Router":
        """Build the node sessions, policy and fault schedule (idempotent)."""
        if self._materialized:
            return self
        fleet = self.fleet
        workload = REGISTRY.create("traffic", fleet.traffic.kind,
                                   fleet.traffic)
        self.stream = tuple(sorted(
            workload.arrivals,
            key=lambda r: (r.arrival_time, r.request_id)))
        if fleet.fault_seed is not None:
            plan = make_node_fault_plan(fleet.fault_seed, fleet.num_nodes,
                                        **thaw_options(fleet.fault_options))
            self.schedule = NodeFaultSchedule(plan)
        self.policy = REGISTRY.create("router", fleet.policy,
                                      fleet.num_nodes,
                                      **thaw_options(fleet.policy_options))
        for index, node_spec in enumerate(fleet.nodes):
            spec = node_spec.override(traffic=TrafficSpec(kind="external"))
            session = Session(spec)
            if self.schedule is not None and self.schedule.degrades(index):
                session.executor_wrapper = self._degrade_wrapper(session,
                                                                 index)
            session.materialize()
            self.handles.append(NodeHandle(
                index=index, session=session,
                pool=session.pool, scheduler=session.scheduler,
                max_iterations=spec.serving.max_iterations))
            if fleet.shed_watermark is not None:
                session.events.subscribe(KvPressure, self._on_pressure)
        self._materialized = True
        return self

    def _degrade_wrapper(self, session: Session, index: int) -> Callable:
        """An executor wrapper applying the node's degrade derate.

        Composed *inside* the node's latency-tracker wrap (the
        ``Session.executor_wrapper`` hook), so the extra cycles move the
        latency clock exactly like device cycles.  The factor is read
        lazily at each iteration from the schedule at the node's current
        clock, so half-open degrade windows start and stop mid-run.
        """
        schedule = self.schedule

        def wrapper(inner: Callable[[Sequence[InferenceRequest]], float]
                    ) -> Callable[[Sequence[InferenceRequest]], float]:
            def run(batch: Sequence[InferenceRequest]) -> float:
                latency = inner(batch)
                factor = schedule.degrade_factor(session.scheduler.now,
                                                 index)
                return latency * factor
            return run
        return wrapper

    def _on_pressure(self, event: KvPressure) -> None:
        """Record one node KvPressure event for the shed watermark."""
        self._pressure.append(event.time)

    # ------------------------------------------------------------------
    # Lockstep stepping.
    # ------------------------------------------------------------------

    def _next_time(self, handle: NodeHandle) -> Optional[float]:
        """When the node can next make progress (``None`` = idle/capped).

        A node with running (or retiring) work continues at its own
        clock; one with only waiting requests resumes at the earliest
        arrival; an empty or iteration-capped node reports ``None``.
        """
        scheduler = handle.scheduler
        if len(scheduler.stats.iterations) >= handle.max_iterations:
            return None
        pool = handle.pool
        if pool.running_count() or pool.has_finished():
            return scheduler.now
        waiting = pool.waiting()
        if not waiting:
            return None
        return max(scheduler.now, waiting[0].arrival_time)

    def _step_budget(self, handle: NodeHandle, until: Optional[float]) -> int:
        """How many iterations one ``step()`` call may group-commit.

        While arrivals are still being dispatched (``until`` set) or
        probes still matter, the budget is 1 so router decisions land at
        exact iteration boundaries; the final no-fault drain hands each
        node its full remaining iteration budget (fast path — grouped
        windows commit in bulk, which the bench guard relies on).
        """
        if until is not None or \
                (self.schedule is not None and not self._probing_done):
            budget = 1
        else:
            done = len(handle.scheduler.stats.iterations)
            budget = max(1, handle.max_iterations - done)
        if self.max_group_steps is not None:
            budget = min(budget, self.max_group_steps)
        return max(1, budget)

    def _cached_next_time(self, handle: NodeHandle) -> Optional[float]:
        """Memoized :meth:`_next_time` (recomputed only after changes).

        ``_next_time`` builds the pool's sorted waiting view; calling it
        per node per arrival would re-sort after every dispatch (the
        view cache is invalidated by ``submit``), turning the routing
        loop quadratic.  The hint is invalidated on steps and failover
        extraction and updated in O(1) by :meth:`_route`.
        """
        if not handle.hint_valid:
            handle.next_hint = self._next_time(handle)
            handle.hint_valid = True
        return handle.next_hint

    def _step_node(self, handle: NodeHandle, until: Optional[float]) -> None:
        """Advance one node; ``None`` from the core marks it stalled."""
        record = handle.session.step(
            max_steps=self._step_budget(handle, until))
        handle.hint_valid = False
        if record is None:
            handle.stalled = True

    def _advance_nodes(self, until: float) -> None:
        """Step nodes (earliest next event first) until all reach ``until``."""
        while True:
            best: Optional[NodeHandle] = None
            best_time = 0.0
            for handle in self.handles:
                if handle.down or handle.stalled:
                    continue
                next_time = self._cached_next_time(handle)
                if next_time is None or next_time >= until:
                    continue
                if best is None or next_time < best_time:
                    best, best_time = handle, next_time
            if best is None:
                return
            self._step_node(best, until)

    # ------------------------------------------------------------------
    # Health model.
    # ------------------------------------------------------------------

    def _healthy(self) -> List[int]:
        """Indices of nodes currently accepting traffic (cached).

        Health only changes in :meth:`_mark_down` / :meth:`_mark_up`,
        which drop the cache; callers (and policies) must treat the
        returned list as read-only.
        """
        if self._healthy_view is None:
            self._healthy_view = [h.index for h in self.handles
                                  if not h.down]
        return self._healthy_view

    def _process_probes(self, limit: float) -> None:
        """Run every pending health probe at or before ``limit``.

        Probes fire at fixed multiples of the probe interval (fleet
        wall-clock), so their timing — and therefore every failover —
        is a pure function of (fleet spec, fault seed).  Once no node is
        down and the schedule holds no future fault, probing stops for
        good (zero steady-state overhead).
        """
        if self.schedule is None or self._probing_done:
            return
        interval = self.fleet.health.probe_interval_cycles
        while self._next_probe <= limit:
            probe_time = self._next_probe
            self._next_probe += interval
            self._probe(probe_time)
            if probe_time > self.schedule.last_end and \
                    not any(h.down for h in self.handles):
                self._probing_done = True
                return

    def _probe(self, probe_time: float) -> None:
        """Probe every node once; apply threshold/cooldown transitions."""
        threshold = self.fleet.health.fail_threshold
        cooldown = self.fleet.health.cooldown_cycles
        for handle in self.handles:
            if self.schedule.down(probe_time, handle.index):
                handle.consecutive_failures += 1
                handle.last_fail = probe_time
                if not handle.down and \
                        handle.consecutive_failures >= threshold:
                    self._mark_down(handle, probe_time)
            elif handle.down:
                if probe_time >= handle.last_fail + cooldown:
                    self._mark_up(handle, probe_time)
            else:
                handle.consecutive_failures = 0

    def _mark_down(self, handle: NodeHandle, probe_time: float) -> None:
        """Take a node out of rotation and fail over its requests."""
        handle.down = True
        handle.down_since = probe_time
        handle.stalled = False
        self._healthy_view = None
        if self.events.active:
            self.events.emit(NodeMarkedDown(
                time=probe_time, node=handle.index,
                failures=handle.consecutive_failures))
        self._node_log.append({
            "event": "down", "time": probe_time, "node": handle.index,
            "failures": handle.consecutive_failures})
        self._failover_node(handle, probe_time)

    def _mark_up(self, handle: NodeHandle, probe_time: float) -> None:
        """Re-admit a recovered node and flush the waiting queue."""
        handle.down = False
        handle.consecutive_failures = 0
        handle.stalled = False
        self._healthy_view = None
        if self.events.active:
            self.events.emit(NodeRecovered(
                time=probe_time, node=handle.index,
                down_for=probe_time - handle.down_since))
        self._node_log.append({
            "event": "recovered", "time": probe_time, "node": handle.index,
            "down_for": probe_time - handle.down_since})
        self._flush_queue(probe_time)

    def _failover_node(self, handle: NodeHandle, probe_time: float) -> None:
        """Extract a downed node's pooled requests and re-dispatch them.

        Requests leave through the scheduler's
        ``release_request`` (KV freed, load-tracker dropped, observer
        detached) and re-enter the fleet with a re-based arrival: the
        failover time plus a recompute-based restore delay for any
        generation progress (the same cost model the preemption/restore
        machinery charges).  Deadlines re-base automatically — the
        target node's resilience runtime falls back to arrival time.
        """
        session = handle.session
        scheduler = session.scheduler
        scheduler.sync_grouped()
        scheduler.flush_finished()
        handle.hint_valid = False
        pooled = sorted(session.pool.running() + session.pool.waiting(),
                        key=lambda r: r.request_id)
        costs = PreemptionCosts()
        for request in pooled:
            restore = (request.seq_len * costs.recompute_cycles_per_token
                       if request.generated > 0 else 0.0)
            scheduler.release_request(request)
            request.arrival_time = max(probe_time, scheduler.now) + restore
            healthy = self._healthy()
            if healthy:
                to_node = self._route(request, probe_time, healthy)
            else:
                self._queue.append(request)
                to_node = -1
            self._failed_over += 1
            if self.events.active:
                self.events.emit(RequestFailedOver(
                    time=probe_time, request_id=request.request_id,
                    from_node=handle.index, to_node=to_node,
                    restore_cycles=restore))
            self._node_log.append({
                "event": "failover", "time": probe_time,
                "request_id": request.request_id,
                "from_node": handle.index, "to_node": to_node,
                "restore_cycles": restore})

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------

    def _loads(self, now: float) -> List[float]:
        """Per-node load estimates for the routing policy.

        Channel-load rollups (from the node's ``ChannelLoadTracker``)
        when available, pooled request counts otherwise; nodes inside a
        degrade window are derated by the degrade factor so policies
        prefer full-speed peers.
        """
        loads: List[float] = []
        for handle in self.handles:
            session = handle.session
            if session.load_tracker is not None:
                load = float(sum(session.load_tracker.loads))
            else:
                pool = session.pool
                load = float(pool.running_count() + pool.waiting_count())
            if self.schedule is not None:
                load = (load + 1.0) * self.schedule.degrade_factor(
                    now, handle.index)
            loads.append(load)
        return loads

    def _route(self, request: InferenceRequest, now: float,
               healthy: List[int]) -> int:
        """Submit ``request`` to the policy's chosen healthy node."""
        load: Sequence[float] = \
            self._loads(now) if self.policy.uses_load else ()
        node = self.policy.choose(request.request_id, healthy, load)
        handle = self.handles[node]
        handle.pool.submit(request)
        if handle.stalled:
            # A stalled node may become steppable again (even before
            # the current timestamp) once it has new work, so the run
            # loop's same-timestamp fast path must re-advance.
            handle.stalled = False
            self._needs_advance = True
        if handle.hint_valid:
            # O(1) hint refresh mirroring `_next_time`: the new waiting
            # request can only move the node's next event earlier (the
            # iteration cap, if hit, keeps the node idle regardless).
            scheduler = handle.scheduler
            if len(scheduler.stats.iterations) < handle.max_iterations:
                candidate = scheduler.now
                if request.arrival_time > candidate:
                    candidate = request.arrival_time
                hint = handle.next_hint
                if hint is None or candidate < hint:
                    handle.next_hint = candidate
        return node

    def _dispatch(self, request: InferenceRequest, now: float) -> None:
        """Admit, shed or queue one fleet arrival."""
        rid = request.request_id
        if self.fleet.shed_watermark is not None:
            horizon = now - self.fleet.pressure_window_cycles
            while self._pressure and self._pressure[0] < horizon:
                self._pressure.popleft()
            if len(self._pressure) >= self.fleet.shed_watermark:
                self._outcomes[rid] = "shed"
                if self.events.active:
                    self.events.emit(FleetShedding(
                        time=now, request_id=rid,
                        pressure=len(self._pressure)))
                return
        healthy = self._healthy()
        if not healthy:
            self._queue.append(request)
            return
        self._route(request, now, healthy)

    def _flush_queue(self, now: float) -> None:
        """Re-dispatch queued requests while healthy nodes exist."""
        while self._queue:
            healthy = self._healthy()
            if not healthy:
                return
            self._route(self._queue.popleft(), now, healthy)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def run(self) -> FleetResult:
        """Dispatch the stream, drain the fleet, return the merged result."""
        if self._result is not None:
            return self._result
        self.materialize()
        if self.schedule is None and self.fleet.shed_watermark is None \
                and not self.policy.uses_load:
            # Static fleet: no probes can fire, nothing sheds, and a
            # load-blind policy routes independently of node state, so
            # interleaving node stepping with dispatch cannot change
            # the outcome (chunking equivalence — the invariant the
            # fleet chaos harness pins).  Route the whole stream
            # upfront and let the drain run nodes at full budget; the
            # disabled-cluster path then costs one policy call and one
            # pool submit per request.
            healthy = self._healthy()
            for request in self.stream:
                self._route(request, request.arrival_time, healthy)
        else:
            last_arrival: Optional[float] = None
            for request in self.stream:
                arrival = request.arrival_time
                # Same-timestamp fast path: probes are a pure function
                # of the limit, and after `_advance_nodes(t)` every
                # steppable node's next event is >= t (dispatching at t
                # can only add events at t), so repeating both at an
                # identical arrival time is a no-op — unless a dispatch
                # just unstalled a node (`_needs_advance`), which may
                # make it steppable below t.
                if arrival != last_arrival or self._needs_advance:
                    self._process_probes(arrival)
                    self._advance_nodes(arrival)
                    self._needs_advance = False
                    last_arrival = arrival
                self._dispatch(request, arrival)
        self._drain()
        self._result = self._build_result()
        return self._result

    def _drain(self) -> None:
        """Run the fleet to completion after the last arrival.

        Interleaves remaining probes (node recovery, late fault windows)
        with node stepping in event-time order; once probing is finished
        nodes drain on their full iteration budgets.  Ends with the
        conservation sweep: anything still stuck (stalled nodes, a queue
        with nobody healthy left) is router-shed so every admitted
        request reaches a terminal status.
        """
        guard = 0
        while True:
            guard += 1
            if guard > _DRAIN_GUARD:
                raise RuntimeError("fleet drain exceeded its step guard")
            best: Optional[NodeHandle] = None
            best_time = 0.0
            for handle in self.handles:
                if handle.down or handle.stalled:
                    continue
                next_time = self._cached_next_time(handle)
                if next_time is None:
                    continue
                if best is None or next_time < best_time:
                    best, best_time = handle, next_time
            probe_time: Optional[float] = None
            if self.schedule is not None and not self._probing_done:
                if (any(h.down for h in self.handles) or self._queue
                        or self._next_probe <= self.schedule.last_end):
                    probe_time = self._next_probe
            if probe_time is not None and \
                    (best is None or probe_time <= best_time):
                self._process_probes(probe_time)
                continue
            if best is None:
                if self._queue and self._healthy():
                    self._flush_queue(max(h.session.scheduler.now
                                          for h in self.handles))
                    continue
                break
            self._step_node(best, None)
        self._final_sweep()

    def _final_sweep(self) -> None:
        """Shed anything still pooled or queued (conservation closeout)."""
        for handle in self.handles:
            scheduler = handle.session.scheduler
            scheduler.sync_grouped()
            scheduler.flush_finished()
            pool = handle.session.pool
            stuck = sorted(pool.running() + pool.waiting(),
                           key=lambda r: r.request_id)
            for request in stuck:
                scheduler.release_request(request)
                self._shed_stuck(request, scheduler.now)
        while self._queue:
            request = self._queue.popleft()
            self._shed_stuck(request,
                             max(h.session.scheduler.now
                                 for h in self.handles))

    def _shed_stuck(self, request: InferenceRequest, now: float) -> None:
        """Record a router-level shed for one stuck request."""
        rid = request.request_id
        self._outcomes[rid] = "shed"
        if self.events.active:
            self.events.emit(FleetShedding(time=now, request_id=rid,
                                           pressure=len(self._pressure)))
        self._node_log.append({"event": "stuck_shed", "time": now,
                               "request_id": rid})

    # ------------------------------------------------------------------
    # Result assembly.
    # ------------------------------------------------------------------

    def _build_result(self) -> FleetResult:
        """Merge per-node results into one :class:`FleetResult`."""
        node_results = tuple(h.session.result() for h in self.handles)
        statuses: List[Dict[str, Any]] = []
        counts = {"completed": 0, "timed_out": 0, "shed": 0, "aborted": 0}
        for node_index, result in enumerate(node_results):
            for record in result.requests:
                statuses.append({"request_id": record["request_id"],
                                 "status": record["status"],
                                 "node": node_index})
                counts[record["status"]] += 1
        for rid in sorted(self._outcomes):
            status = self._outcomes[rid]
            statuses.append({"request_id": rid, "status": status,
                             "node": -1})
            counts[status] += 1
        statuses.sort(key=lambda s: s["request_id"])
        ledger = {"requests": len(self.stream), **counts,
                  "failed_over": self._failed_over,
                  "router_shed": len(self._outcomes)}
        completed = {s["request_id"] for s in statuses
                     if s["status"] == "completed"}
        # Merge per-node latency entries, keeping the record from the
        # node that last ran each request (failed-over requests measure
        # from their re-dispatch arrival — the restore re-base — not
        # from the original fleet arrival).  Without failover a request
        # has at most one entry fleet-wide, so the max-completion merge
        # reduces to a plain concatenation.
        best: Dict[int, RequestLatency] = {}
        for handle in self.handles:
            tracker = handle.session.latency_tracker
            if tracker is None:
                continue
            for entry in tracker.report().requests:
                prior = best.get(entry.request_id) \
                    if self._failed_over else None
                if prior is None or \
                        entry.completion_time > prior.completion_time:
                    best[entry.request_id] = entry
        if len(self.handles) == 1 and not self._failed_over and \
                all(rid in completed for rid in best):
            # Single node, nothing failed over, no entry filtered:
            # the merged summary is exactly the node's own (its
            # ``latency_ms`` came from the same tracker report).
            latency_summary = dict(node_results[0].latency_ms)
        else:
            report = LatencyReport()
            for rid in sorted(best):
                if rid in completed:
                    report.add(best[rid])
            latency_summary = report.summary()
        total_tokens = sum(r.total_tokens for r in node_results)
        makespan = max((r.total_time_cycles for r in node_results),
                       default=0.0)
        return FleetResult(
            policy=self.fleet.policy,
            nodes=node_results,
            statuses=tuple(statuses),
            ledger=ledger,
            total_tokens=int(total_tokens),
            makespan_cycles=makespan,
            tokens_per_second=(total_tokens / (makespan / 1e9)
                               if makespan > 0 else 0.0),
            latency_ms=latency_summary,
            resilience=aggregate_resilience(node_results),
            node_log=tuple(self._node_log),
            label=self.fleet.label,
        )
