"""The fault-tolerant fleet tier: router, health model, failover.

One :class:`FleetSpec` describes N node scenarios (homogeneous or
heterogeneous) plus a single fleet-level arrival stream; the
:class:`Router` dispatches that stream across per-node
:class:`~repro.api.session.Session` stacks driven in lockstep through
the ``step()`` core, with pluggable routing policies (the ``router``
registry kind: round-robin, least-loaded, session-affinity,
power-of-two-choices), a probe-based health model with failover through
the preemption/restore machinery, and router-level admission
backpressure.  Results merge into a :class:`FleetResult` whose
conservation ledger the fleet chaos harness
(:func:`repro.faults.chaos.run_fleet_chaos`, CLI
``python -m repro chaos --fleet``) asserts on.  See DESIGN.md §11.
"""

from repro.cluster.policies import (LeastLoadedPolicy, PowerOfTwoPolicy,
                                    RoundRobinPolicy, RoutingPolicy,
                                    SessionAffinityPolicy)
from repro.cluster.result import FleetResult, run_fleet, run_fleets
from repro.cluster.router import NodeHandle, Router
from repro.cluster.spec import FleetHealthSpec, FleetSpec

__all__ = [
    "FleetHealthSpec",
    "FleetResult",
    "FleetSpec",
    "LeastLoadedPolicy",
    "NodeHandle",
    "PowerOfTwoPolicy",
    "RoundRobinPolicy",
    "Router",
    "RoutingPolicy",
    "SessionAffinityPolicy",
    "run_fleet",
    "run_fleets",
]
