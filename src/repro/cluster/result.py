"""Fleet results: per-node outcomes merged under one conservation ledger.

A :class:`FleetResult` is the cluster-tier analogue of
:class:`~repro.api.session.RunResult`: per-node results plus fleet
aggregates (merged latency distribution, total throughput over the
fleet makespan), the final ``{request_id, status, node}`` table and the
conservation ``ledger`` the chaos harness asserts on — every admitted
request is exactly one of completed / timed-out / shed / aborted across
all failovers (``requests == completed + timed_out + shed + aborted``).

:func:`run_fleet` is the picklable unit of work that :func:`run_fleets`
fans across :class:`~repro.exec.runner.ParallelRunner` workers — fleet
specs serialize like scenario specs, per-worker warmup covers every
node's cycle-fidelity config, and parallel fleet sweeps merge
bit-identically to serial ones (the :mod:`repro.exec` determinism
contract, extended to fleets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.session import RunResult, scenario_warmup
from repro.cluster.spec import FleetSpec
from repro.exec.backends import ParallelSpec
from repro.exec.runner import ParallelRunner

__all__ = ["FleetResult", "run_fleet", "run_fleets"]


@dataclass(frozen=True)
class FleetResult:
    """Uniform outcome of one fleet run.

    ``nodes`` holds one per-node :class:`~repro.api.session.RunResult`
    (same schema as standalone runs); ``statuses`` the final
    ``{"request_id", "status", "node"}`` per stream request (``node``
    is ``-1`` for router-level outcomes — watermark sheds and the
    end-of-run conservation sweep); ``ledger`` the conservation
    counters; ``resilience`` the
    :func:`~repro.api.session.aggregate_resilience` rollup of the node
    counters; ``node_log`` the health/failover event trail.  Latency
    aggregates merge per-node distributions, keeping each request's
    final-node record (failed-over requests measure from re-dispatch).
    """

    policy: str
    nodes: Tuple[RunResult, ...]
    statuses: Tuple[Dict[str, Any], ...]
    ledger: Dict[str, int]
    total_tokens: int
    makespan_cycles: float
    tokens_per_second: float
    latency_ms: Dict[str, float] = field(default_factory=dict)
    resilience: Dict[str, int] = field(default_factory=dict)
    node_log: Tuple[Dict[str, Any], ...] = ()
    label: str = ""

    @property
    def num_nodes(self) -> int:
        """The fleet size."""
        return len(self.nodes)

    def conserved(self) -> bool:
        """Whether the ledger balances: no request lost or double-counted."""
        terminal = (self.ledger.get("completed", 0)
                    + self.ledger.get("timed_out", 0)
                    + self.ledger.get("shed", 0)
                    + self.ledger.get("aborted", 0))
        return (terminal == self.ledger.get("requests", 0)
                == len(self.statuses))

    def summary_rows(self) -> List[Tuple[str, object]]:
        """(metric, value) rows for table rendering (CLI and examples)."""
        rows: List[Tuple[str, object]] = [
            ("policy", self.policy),
            ("nodes", self.num_nodes),
            ("requests", self.ledger.get("requests", 0)),
            ("completed", self.ledger.get("completed", 0)),
            ("failed over", self.ledger.get("failed_over", 0)),
            ("shed", self.ledger.get("shed", 0)),
            ("tokens generated", self.total_tokens),
            ("makespan (ms)", round(self.makespan_cycles / 1e6, 3)),
            ("throughput (tokens/s)", round(self.tokens_per_second)),
        ]
        if "end_to_end_p99_ms" in self.latency_ms:
            rows.append(("p99 end-to-end (ms)",
                         round(self.latency_ms["end_to_end_p99_ms"], 3)))
        return rows

    def to_dict(self) -> Dict[str, Any]:
        """Encode as a JSON-serializable plain dict (round-trips)."""
        return {
            "policy": self.policy,
            "nodes": [node.to_dict() for node in self.nodes],
            "statuses": [dict(s) for s in self.statuses],
            "ledger": dict(self.ledger),
            "total_tokens": self.total_tokens,
            "makespan_cycles": self.makespan_cycles,
            "tokens_per_second": self.tokens_per_second,
            "latency_ms": dict(self.latency_ms),
            "resilience": dict(self.resilience),
            "node_log": [dict(entry) for entry in self.node_log],
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FleetResult":
        """Rebuild a fleet result from :meth:`to_dict` output."""
        payload = dict(data)
        payload["nodes"] = tuple(RunResult.from_dict(node)
                                 for node in payload.get("nodes", []))
        payload["statuses"] = tuple(dict(s)
                                    for s in payload.get("statuses", []))
        payload["ledger"] = dict(payload.get("ledger", {}))
        payload["latency_ms"] = dict(payload.get("latency_ms", {}))
        payload["resilience"] = dict(payload.get("resilience", {}))
        payload["node_log"] = tuple(dict(entry)
                                    for entry in payload.get("node_log", []))
        return cls(**payload)


def run_fleet(fleet: Union[FleetSpec, Dict[str, Any]]) -> FleetResult:
    """Run one fleet to a :class:`FleetResult` (picklable task unit)."""
    if isinstance(fleet, dict):
        fleet = FleetSpec.from_dict(fleet)
    from repro.cluster.router import Router
    return Router(fleet).run()


def run_fleets(fleets: Sequence[FleetSpec],
               parallel: ParallelSpec = None,
               chunk_size: int = 1,
               start_method: Optional[str] = None) -> List[FleetResult]:
    """Fan fleet runs across an execution backend, merging in order.

    Each fleet is one task unit (its nodes step in lockstep inside one
    worker); workers pre-warm the perf caches for every distinct
    cycle-fidelity node config across all fleets, exactly like
    :func:`~repro.api.session.run_scenarios` does for scenarios.
    Results are bit-identical to a serial loop for any worker count.
    """
    fleets = list(fleets)
    node_specs = [node for fleet in fleets for node in fleet.nodes]
    runner = ParallelRunner(parallel, chunk_size=chunk_size,
                            start_method=start_method,
                            warmup=scenario_warmup(node_specs))
    return runner.map(run_fleet, fleets)
