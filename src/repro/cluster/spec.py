"""Declarative fleet descriptions: N node scenarios + one traffic stream.

A :class:`FleetSpec` is to the cluster tier what
:class:`~repro.api.spec.ScenarioSpec` is to a single node: a frozen,
picklable, JSON-round-tripping value that fully determines a run.  It
holds the per-node :class:`~repro.api.spec.ScenarioSpec` stack (nodes
may be homogeneous or heterogeneous), the *fleet-level*
:class:`~repro.api.spec.TrafficSpec` whose arrivals the
:class:`~repro.cluster.router.Router` dispatches across nodes, the
routing ``policy`` (a ``router`` registry component), the health-model
knobs (:class:`FleetHealthSpec`), and an optional seeded node-fault
schedule (``fault_seed`` + ``fault_options`` feeding
:func:`repro.faults.plan.make_node_fault_plan`).

Each node's own ``traffic`` is replaced with the ``"external"`` kind at
materialization — the router is the only arrival source — so the same
node spec can be reused both standalone and inside a fleet.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro.api.spec import ScenarioSpec, TrafficSpec, _decode, _encode
from repro.registry import (FrozenOptions, component_names, freeze_options,
                            thaw_options)

__all__ = ["FleetHealthSpec", "FleetSpec"]


@dataclass(frozen=True)
class FleetHealthSpec:
    """Router health-model knobs (probe cadence, thresholds, cooldown).

    The router probes every node each ``probe_interval_cycles``; a node
    is marked down after ``fail_threshold`` consecutive failed probes
    and re-admitted only after a probe succeeds at least
    ``cooldown_cycles`` after its last failure (a half-open window: the
    node keeps being probed while down, but traffic stays away until
    the cooldown elapses).
    """

    probe_interval_cycles: float = 2e5
    fail_threshold: int = 2
    cooldown_cycles: float = 1e6

    def __post_init__(self) -> None:
        if self.probe_interval_cycles <= 0:
            raise ValueError("probe_interval_cycles must be positive")
        if self.fail_threshold < 1:
            raise ValueError("fail_threshold must be >= 1")
        if self.cooldown_cycles < 0:
            raise ValueError("cooldown_cycles must be >= 0")


@dataclass(frozen=True)
class FleetSpec:
    """Frozen description of a fault-tolerant serving fleet.

    ``nodes`` are full per-node scenario stacks (their ``traffic`` is
    ignored — the fleet-level ``traffic`` stream is the only arrival
    source).  ``policy``/``policy_options`` name a registered ``router``
    component; ``fault_seed`` (with ``fault_options`` forwarded to
    :func:`repro.faults.plan.make_node_fault_plan`) enables the seeded
    node-kill/degrade schedule; ``shed_watermark`` turns on router-level
    admission backpressure when the surviving fleet's recent
    ``KvPressure`` event count (within ``pressure_window_cycles``)
    crosses the watermark.
    """

    nodes: Tuple[ScenarioSpec, ...] = ()
    traffic: TrafficSpec = dataclasses.field(
        default_factory=lambda: TrafficSpec.poisson())
    policy: str = "round-robin"
    policy_options: FrozenOptions = ()
    health: FleetHealthSpec = dataclasses.field(
        default_factory=FleetHealthSpec)
    fault_seed: Optional[int] = None
    fault_options: FrozenOptions = ()
    shed_watermark: Optional[int] = None
    pressure_window_cycles: float = 2e6
    label: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.nodes, tuple):
            object.__setattr__(self, "nodes", tuple(self.nodes))
        if not self.nodes:
            raise ValueError("FleetSpec needs at least one node")
        for node in self.nodes:
            if not isinstance(node, ScenarioSpec):
                raise TypeError(f"nodes must be ScenarioSpec instances, "
                                f"got {type(node).__name__}")
        if self.traffic.kind not in ("poisson", "replay"):
            raise ValueError(f"fleet traffic must be poisson or replay, "
                             f"got {self.traffic.kind!r} (nodes receive "
                             f"arrivals from the router, not their own "
                             f"traffic spec)")
        if self.policy not in component_names("router"):
            raise ValueError(f"unknown router policy {self.policy!r}; "
                             f"registered: "
                             f"{sorted(component_names('router'))}")
        for name in ("policy_options", "fault_options"):
            object.__setattr__(self, name,
                               freeze_options(getattr(self, name)))
        if self.shed_watermark is not None and self.shed_watermark < 1:
            raise ValueError("shed_watermark must be >= 1 when set")
        if self.pressure_window_cycles <= 0:
            raise ValueError("pressure_window_cycles must be positive")

    # -- constructors ---------------------------------------------------

    @classmethod
    def homogeneous(cls, node: ScenarioSpec, count: int,
                    **updates: Any) -> "FleetSpec":
        """A fleet of ``count`` identical nodes (plus field overrides)."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        return cls(nodes=(node,) * count, **updates)

    # -- convenience ----------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """The fleet size."""
        return len(self.nodes)

    def override(self, **updates: Any) -> "FleetSpec":
        """A copy with top-level fields replaced (specs are immutable)."""
        return replace(self, **updates) if updates else self

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Encode as a JSON-serializable plain dict (round-trips)."""
        data: Dict[str, Any] = {
            "nodes": [node.to_dict() for node in self.nodes],
            "traffic": _encode(self.traffic),
            "policy": self.policy,
            "health": _encode(self.health),
            "pressure_window_cycles": self.pressure_window_cycles,
            "label": self.label,
        }
        if self.policy_options:
            data["policy_options"] = thaw_options(self.policy_options)
        if self.fault_seed is not None:
            data["fault_seed"] = self.fault_seed
        if self.fault_options:
            data["fault_options"] = thaw_options(self.fault_options)
        if self.shed_watermark is not None:
            data["shed_watermark"] = self.shed_watermark
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FleetSpec":
        """Rebuild a fleet spec from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise TypeError("FleetSpec.from_dict expects a mapping")
        field_names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - field_names
        if unknown:
            raise ValueError(f"unknown FleetSpec field(s) "
                             f"{sorted(unknown)}; known: "
                             f"{sorted(field_names)}")
        kwargs: Dict[str, Any] = {
            k: v for k, v in data.items()
            if k not in ("nodes", "traffic", "health")}
        if "nodes" in data:
            kwargs["nodes"] = tuple(ScenarioSpec.from_dict(node)
                                    for node in data["nodes"])
        if "traffic" in data:
            kwargs["traffic"] = _decode(TrafficSpec, data["traffic"])
        if "health" in data:
            kwargs["health"] = _decode(FleetHealthSpec, data["health"])
        return cls(**kwargs)
