"""MHA latency estimation — Algorithm 1 of the paper.

The scheduler needs the PIM execution time of a request's multi-head
attention *without* running the command-level simulation.  Algorithm 1
derives it from the KV-cache memory layout (§6.3): the logit GEMV
(K^T x q) reads ``seq_len`` key rows interleaved across the channel's
banks, ``E / P_DRAM`` pages each; the attend GEMV (logits x V) reads each
head's values with the head embedding interleaved across banks.  Both
contribute GWRITE commands to stage their operand vectors plus ``L_tile``
per dot-product wave.

``L_tile`` and ``L_GWRITE`` are hardware constants; this module takes them
from a :class:`~repro.pim.engine.CalibratedLatencies`, which can either be
measured from the command-level simulation (:func:`repro.pim.engine.calibrate`)
or derived analytically (:func:`analytic_latencies`) — the test suite
checks the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Iterable, Optional, Tuple

from repro.dram.timing import HbmOrganization, PimTiming, TimingParams
from repro.model.spec import ModelSpec
from repro.pim.engine import CalibratedLatencies
from repro.pim.gemv import GemvOp, mha_gemv_ops


def analytic_latencies(timing: Optional[TimingParams] = None,
                       org: Optional[HbmOrganization] = None,
                       pim_timing: Optional[PimTiming] = None
                       ) -> CalibratedLatencies:
    """Closed-form L_tile / L_GWRITE matching the channel's wave pitch.

    Successive GEMV waves pipeline at the maximum of the page MAC time and
    half the row cycle (activation of the next wave overlaps the MAC of
    the current one); GWRITE cost comes straight from the PIM timing.
    """
    timing = timing or TimingParams()
    org = org or HbmOrganization()
    pim_timing = pim_timing or PimTiming()
    mac = pim_timing.dotprod_cycles_per_page(org.page_bytes)
    l_tile = float(max(mac, timing.row_cycle // 2))
    return CalibratedLatencies(l_tile=l_tile,
                               l_gwrite=float(pim_timing.gwrite_cycles))


@dataclass(frozen=True)
class MhaLatencyEstimator:
    """Algorithm 1, parameterized by model, layout and calibration.

    Parameters
    ----------
    spec:
        Model (shard) whose MHA is being estimated.
    org:
        HBM organization (``B_chnl`` banks per channel, ``P_DRAM`` page).
    latencies:
        Calibrated ``L_tile`` / ``L_GWRITE``.
    """

    spec: ModelSpec
    org: HbmOrganization
    latencies: CalibratedLatencies

    @property
    def _p_dram(self) -> int:
        """P_DRAM: elements per DRAM page."""
        return self.org.elements_per_page(self.spec.dtype_bytes)

    @property
    def _b_chnl(self) -> int:
        """B_chnl: PIM banks per channel."""
        return self.org.banks_per_channel

    def logit_latency(self, seq_len: int) -> float:
        """GEMV latency for ``K^T x Query`` (Algorithm 1, lines 2-4).

        Algorithm 1 uses true (fractional) quotients — partially filled
        pages of different requests/heads pack together in the KV layout —
        with at least one full tile per GEMV.
        """
        if seq_len <= 0:
            raise ValueError("seq_len must be positive")
        embed_pages = self.spec.d_model / self._p_dram
        n_tiles = max(1.0, (seq_len / self._b_chnl) * embed_pages)
        latency = self.latencies.l_gwrite * ceil(embed_pages)
        latency += self.latencies.l_tile * n_tiles
        return latency

    def attend_latency(self, seq_len: int) -> float:
        """GEMV latency for ``Logits x Value`` (Algorithm 1, lines 5-7)."""
        if seq_len <= 0:
            raise ValueError("seq_len must be positive")
        head_rounds = self.spec.head_dim / self._b_chnl
        logit_pages = seq_len / self._p_dram
        n_tiles = max(1.0, head_rounds * logit_pages * self.spec.num_heads)
        latency = self.latencies.l_gwrite * max(
            1.0, logit_pages * self.spec.num_heads)
        latency += self.latencies.l_tile * n_tiles
        return latency

    def mha_gemv_ops(self, seq_len: int) -> Tuple[GemvOp, GemvOp]:
        """The logit/attend GEMV geometry this estimator prices.

        Counters hook: the refutation harness and the analytic counter
        model derive wave counts, row activations and C/A-bus cost from
        these ops — the same shapes the cycle tier lowers to command
        streams (:func:`repro.pim.gemv.mha_gemv_ops` is the single
        source) — so cross-tier counter diffs compare like with like.
        """
        return mha_gemv_ops(self.spec.num_heads, self.spec.head_dim, seq_len)

    def estimate(self, seq_len: int) -> float:
        """Total estimated MHA latency for one request (Algorithm 1)."""
        return self.logit_latency(seq_len) + self.attend_latency(seq_len)

    def estimate_batch(self, seq_lens: Iterable[int]) -> float:
        """Sum of estimates — the per-channel load metric of Algorithm 2.

        Accumulates per seq_len equivalence class in ascending order (the
        serving stack's canonical grouped arithmetic), so the result
        matches the class-histogram load computations bit for bit.
        """
        counts: dict = {}
        for seq_len in seq_lens:
            counts[seq_len] = counts.get(seq_len, 0) + 1
        total = 0.0
        for seq_len in sorted(counts):
            total += self.estimate(seq_len) * counts[seq_len]
        return total
