"""Head-granularity MHA overlap model (paper Figure 10).

Within the MHA layer, NeuPIMs overlaps the PIM-side logit/attend GEMVs
with the NPU-side softmax at *head* granularity: as soon as head h's
logit GEMV finishes on the PIM, its softmax runs on a vector unit while
head h+1's logit GEMV proceeds on the PIM; attend GEMVs follow the same
pattern.  Blocked-mode PIMs cannot do this because results cannot move
between the PIM and the vector units mid-operation.

This module builds the per-head pipeline explicitly with resources and
exposes the resulting stage latency — validating (and refining) the
``max(pim, softmax)`` approximation the device model uses, and directly
quantifying Figure 10's "idleness" bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.estimator import MhaLatencyEstimator, analytic_latencies
from repro.dram.timing import HbmOrganization
from repro.model.spec import ModelSpec
from repro.npu.chip import NpuChip
from repro.sim.engine import Resource


@dataclass
class OverlapTimeline:
    """Outcome of one request's head-pipelined MHA execution."""

    total_cycles: float
    pim_busy: float
    vector_busy: float

    @property
    def pim_idle_fraction(self) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return 1.0 - min(1.0, self.pim_busy / self.total_cycles)

    @property
    def vector_idle_fraction(self) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return 1.0 - min(1.0, self.vector_busy / self.total_cycles)


class HeadPipelineModel:
    """Schedules one request's MHA at head granularity.

    Parameters
    ----------
    spec:
        Model describing head count and dimensions.
    dual_row_buffer:
        With dual row buffers the three per-head operations pipeline
        (logit on PIM, softmax on NPU-V, attend on PIM); blocked mode
        serializes them and adds the PIM<->host transfer per head.
    """

    def __init__(self, spec: ModelSpec,
                 org: Optional[HbmOrganization] = None,
                 estimator: Optional[MhaLatencyEstimator] = None,
                 npu: Optional[NpuChip] = None,
                 dual_row_buffer: bool = True,
                 transfer_cycles: float = 50.0) -> None:
        if transfer_cycles < 0:
            raise ValueError("transfer_cycles must be non-negative")
        self.spec = spec
        self.org = org or HbmOrganization()
        self.estimator = estimator or MhaLatencyEstimator(
            spec, self.org, analytic_latencies())
        self.npu = npu or NpuChip(org=self.org)
        self.dual_row_buffer = dual_row_buffer
        self.transfer_cycles = transfer_cycles

    def _per_head_cycles(self, seq_len: int):
        """(logit, softmax, attend) cycles for one head."""
        heads = self.spec.num_heads
        logit = self.estimator.logit_latency(seq_len) / heads
        attend = self.estimator.attend_latency(seq_len) / heads
        softmax = self.npu.softmax_latency(seq_len, 1)
        return logit, softmax, attend

    def run(self, seq_len: int) -> OverlapTimeline:
        """Execute the per-head pipeline; returns the timeline."""
        if seq_len <= 0:
            raise ValueError("seq_len must be positive")
        logit, softmax, attend = self._per_head_cycles(seq_len)
        pim = Resource("pim")
        vector = Resource("npu_v")

        if self.dual_row_buffer:
            # Heads flow through a 3-stage pipeline.
            for _ in range(self.spec.num_heads):
                _, logit_end = pim.acquire_for(logit)
                _, softmax_end = vector.acquire_for(softmax,
                                                    earliest=logit_end)
                pim.acquire_for(attend, earliest=softmax_end)
            total = pim.free_at
        else:
            # Blocked mode: logit -> transfer out -> softmax -> transfer
            # back -> attend, strictly serial per head, PIM held throughout.
            clock = 0.0
            for _ in range(self.spec.num_heads):
                _, end = pim.acquire_for(logit, earliest=clock)
                clock = end + self.transfer_cycles
                _, end = vector.acquire_for(softmax, earliest=clock)
                clock = end + self.transfer_cycles
                _, end = pim.acquire_for(attend, earliest=clock)
                clock = end
            total = clock
        return OverlapTimeline(total_cycles=total,
                               pim_busy=pim.busy_time,
                               vector_busy=vector.busy_time)

    def overlap_speedup(self, seq_len: int) -> float:
        """Blocked-mode time over dual-row-buffer time for one request."""
        dual = HeadPipelineModel(self.spec, self.org, self.estimator,
                                 self.npu, dual_row_buffer=True,
                                 transfer_cycles=self.transfer_cycles)
        blocked = HeadPipelineModel(self.spec, self.org, self.estimator,
                                    self.npu, dual_row_buffer=False,
                                    transfer_cycles=self.transfer_cycles)
        return blocked.run(seq_len).total_cycles \
            / dual.run(seq_len).total_cycles
