"""Multi-device NeuPIMs system: tensor + pipeline parallelism (paper §7).

Scales the single-device model to ``tp x pp`` devices:

* **Tensor parallelism** shards every weight GEMM ``tp`` ways; an
  all-reduce of the activations follows the attention projection and the
  second FFN GEMM of every block.  Sub-batch interleaving doubles the
  number of all-reduces but halves their size, and the communication of
  one sub-batch overlaps the computation of the other (paper §7.2), so
  only part of the communication latency is exposed.
* **Pipeline parallelism** splits the decoder stack into ``pp`` stages;
  the batch is divided into ``pp`` micro-batches processed in a pipelined
  fashion.  Steady-state throughput is one micro-batch iteration per
  pipeline pitch (the per-device iteration latency).

Figure 14 fixes the *total* request count and varies (TP, PP), showing
TP-heavy schemes win because they keep the per-device batch large.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import List, Optional, Sequence

from repro.core.config import NeuPimsConfig
from repro.core.device import NeuPimsDevice
from repro.model.spec import ModelSpec
from repro.serving.grouping import SystemClassPlan
from repro.serving.request import InferenceRequest


@dataclass(frozen=True)
class ParallelismScheme:
    """A (tensor-parallel, pipeline-parallel) partitioning."""

    tp: int
    pp: int

    def __post_init__(self) -> None:
        if self.tp <= 0 or self.pp <= 0:
            raise ValueError("tp and pp must be positive")

    @property
    def num_devices(self) -> int:
        return self.tp * self.pp

    def __str__(self) -> str:
        return f"(TP={self.tp}, PP={self.pp})"


class NeuPimsSystem:
    """A cluster of NeuPIMs devices running one model.

    Parameters
    ----------
    spec:
        Model to serve.
    scheme:
        Parallelism partitioning; defaults to the model's Table 3 entry.
    config:
        Per-device configuration.
    interconnect_bandwidth:
        Bytes/second of the inter-device link (PCIe/CXL class).
    """

    def __init__(self, spec: ModelSpec,
                 scheme: Optional[ParallelismScheme] = None,
                 config: Optional[NeuPimsConfig] = None,
                 interconnect_bandwidth: float = 100e9) -> None:
        if interconnect_bandwidth <= 0:
            raise ValueError("interconnect_bandwidth must be positive")
        self.spec = spec
        self.scheme = scheme or ParallelismScheme(spec.tensor_parallel,
                                                  spec.pipeline_parallel)
        self.config = config or NeuPimsConfig()
        self.interconnect_bandwidth = interconnect_bandwidth
        self.layers_per_stage = spec.layers_per_stage(self.scheme.pp)
        # A TP group pools its members' PIM channels: each request's KV
        # cache lives on one channel of one group member, so the MHA load
        # spreads across tp x channels while weight GEMMs shard tp ways.
        self.device = NeuPimsDevice(
            spec, self.config, tp=self.scheme.tp,
            layers_resident=self.layers_per_stage,
            channel_pool=self.scheme.tp * self.config.num_channels,
        )

    # ------------------------------------------------------------------

    def _allreduce_cycles(self, batch_tokens: int) -> float:
        """Exposed all-reduce cycles per decoder block for one sub-batch.

        Ring all-reduce moves ``2 (tp-1)/tp`` of the activation bytes per
        participant; two all-reduces per block (after projection and after
        FFN2).  Under sub-batch interleaving half of it hides behind the
        other sub-batch's compute.
        """
        if self.scheme.tp == 1:
            return 0.0
        bytes_per = (2 * (self.scheme.tp - 1) / self.scheme.tp
                     * batch_tokens * self.spec.d_model * self.spec.dtype_bytes)
        total_bytes = 2 * bytes_per  # two all-reduces per block
        seconds = total_bytes / self.interconnect_bandwidth
        cycles = seconds * 1e9
        if self.config.sub_batch_interleaving:
            cycles *= 0.5
        return cycles

    def micro_batches(self, requests: Sequence[InferenceRequest]
                      ) -> List[List[InferenceRequest]]:
        """Split the batch into ``pp`` micro-batches (contiguous slices)."""
        pp = self.scheme.pp
        size = ceil(len(requests) / pp)
        slices = [list(requests[i * size:(i + 1) * size]) for i in range(pp)]
        return [s for s in slices if s]

    def pipeline_pitch(self, requests: Sequence[InferenceRequest]) -> float:
        """Steady-state pitch: per-device iteration latency on a micro-batch."""
        if not requests:
            raise ValueError("empty batch")
        micro = self.micro_batches(requests)[0]
        result = self.device.iteration(micro)
        comm = self._allreduce_cycles(len(micro)) * self.layers_per_stage
        return result.latency + comm

    def iteration_latency(self, requests: Sequence[InferenceRequest]) -> float:
        """Latency for every request to advance one token.

        With ``pp`` micro-batches in flight, the pipeline completes one
        micro-batch per pitch; a full batch iteration spans ``pp`` pitches.
        """
        return self.pipeline_pitch(requests) * self.scheme.pp

    # ------------------------------------------------------------------
    # Class-grouped execution (see repro.serving.grouping).
    # ------------------------------------------------------------------

    def prepare_class_plan(self, requests: Sequence[InferenceRequest]
                           ) -> SystemClassPlan:
        """Freeze the batch's class structure for the pipeline engine.

        Steady-state pipeline timing is driven by the leading micro-batch
        (the same slice :meth:`pipeline_pitch` simulates), so the plan
        wraps that micro-batch's device plan plus its size for the
        all-reduce term.
        """
        if not requests:
            raise ValueError("empty batch")
        micro = self.micro_batches(requests)[0]
        return SystemClassPlan(inner=self.device.prepare_class_plan(micro),
                               micro_size=len(micro))

    def iteration_from_plan(self, plan: SystemClassPlan,
                            shift: int = 0) -> float:
        """Full-batch iteration latency after ``shift`` decode steps.

        Mirrors :meth:`iteration_latency` arithmetic exactly:
        ``(device latency + exposed all-reduce) * pp``.
        """
        result = self.device.iteration_from_plan(plan.inner, shift)
        comm = self._allreduce_cycles(plan.micro_size) * self.layers_per_stage
        return (result.latency + comm) * self.scheme.pp

    def throughput_tokens_per_second(self, requests: Sequence[InferenceRequest],
                                     clock_hz: float = 1e9) -> float:
        """Steady-state generation throughput for the given batch."""
        if not requests:
            return 0.0
        micro = self.micro_batches(requests)[0]
        pitch = self.pipeline_pitch(requests)
        return len(micro) / (pitch / clock_hz)

    def executor(self):
        """A :data:`~repro.serving.scheduler.BatchExecutor` for the system."""
        def run(batch: Sequence[InferenceRequest]) -> float:
            return self.iteration_latency(batch)
        return run
