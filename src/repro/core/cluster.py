"""Multi-node NeuPIMs cluster (paper §4: "the system can scale to
multiple nodes").

A cluster replicates complete :class:`~repro.core.system.NeuPimsSystem`
instances (each a TP x PP group serving the full model) and routes
arriving requests across the replicas — data parallelism on top of the
paper's tensor/pipeline parallelism.  Two routing policies are provided:

* round robin — the baseline;
* join-shortest-queue (JSQ) by estimated MHA load, reusing the same
  Algorithm-1 estimator that balances channels *within* a device —
  the natural extension of greedy min-load bin packing to node scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

from repro.core.config import NeuPimsConfig
from repro.core.estimator import MhaLatencyEstimator, analytic_latencies
from repro.core.system import NeuPimsSystem, ParallelismScheme
from repro.model.spec import ModelSpec
from repro.serving.request import InferenceRequest


class RoutingPolicy(Enum):
    ROUND_ROBIN = "round_robin"
    JOIN_SHORTEST_QUEUE = "jsq"


@dataclass
class NodeState:
    """One replica and its currently assigned requests."""

    index: int
    system: NeuPimsSystem
    requests: List[InferenceRequest] = field(default_factory=list)

    def load_tokens(self) -> int:
        """Total context tokens currently assigned to this node."""
        return sum(r.seq_len for r in self.requests)


class NeuPimsCluster:
    """Data-parallel replicas of a NeuPIMs system.

    Parameters
    ----------
    spec:
        Model served by every replica.
    num_nodes:
        Replica count.
    scheme:
        Per-replica parallelism (defaults to the model's Table 3 entry).
    policy:
        Request routing policy.
    """

    def __init__(self, spec: ModelSpec, num_nodes: int,
                 scheme: Optional[ParallelismScheme] = None,
                 config: Optional[NeuPimsConfig] = None,
                 policy: RoutingPolicy = RoutingPolicy.JOIN_SHORTEST_QUEUE
                 ) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.spec = spec
        self.policy = policy
        self.config = config or NeuPimsConfig()
        self.nodes = [
            NodeState(index=i,
                      system=NeuPimsSystem(spec, scheme, config=self.config))
            for i in range(num_nodes)
        ]
        self._rr_cursor = 0
        self._estimator = MhaLatencyEstimator(spec, self.config.org,
                                              analytic_latencies())

    # ------------------------------------------------------------------

    @property
    def num_devices(self) -> int:
        return sum(node.system.scheme.num_devices for node in self.nodes)

    def _estimated_load(self, node: NodeState) -> float:
        return sum(self._estimator.estimate(r.seq_len)
                   for r in node.requests)

    def route(self, request: InferenceRequest) -> int:
        """Assign one request to a node; returns the node index."""
        if self.policy is RoutingPolicy.ROUND_ROBIN:
            index = self._rr_cursor % len(self.nodes)
            self._rr_cursor += 1
        else:
            index = min(range(len(self.nodes)),
                        key=lambda i: (self._estimated_load(self.nodes[i]),
                                       i))
        self.nodes[index].requests.append(request)
        return index

    def route_all(self, requests: Sequence[InferenceRequest]) -> Dict[int, int]:
        """Route a burst; longest-first under JSQ (LPT, like Algorithm 2)."""
        ordered = list(requests)
        if self.policy is RoutingPolicy.JOIN_SHORTEST_QUEUE:
            ordered.sort(key=lambda r: (-r.seq_len, r.request_id))
        return {r.request_id: self.route(r) for r in ordered}

    def remove_finished(self) -> int:
        """Drop finished requests from every node; returns count removed."""
        removed = 0
        for node in self.nodes:
            before = len(node.requests)
            node.requests = [r for r in node.requests if not r.is_finished]
            removed += before - len(node.requests)
        return removed

    # ------------------------------------------------------------------

    def iteration_latency(self) -> float:
        """One cluster-wide iteration: nodes run in parallel (makespan)."""
        latencies = [
            node.system.iteration_latency(node.requests)
            for node in self.nodes if node.requests
        ]
        return max(latencies) if latencies else 0.0

    def throughput_tokens_per_second(self, clock_hz: float = 1e9) -> float:
        """Aggregate steady-state throughput of the current assignment."""
        return sum(
            node.system.throughput_tokens_per_second(node.requests, clock_hz)
            for node in self.nodes if node.requests
        )

    def load_imbalance(self) -> float:
        """Max node load over mean node load (1.0 = even)."""
        loads = [self._estimated_load(node) for node in self.nodes]
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 1.0
        return max(loads) / mean
