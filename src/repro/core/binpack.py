"""Channel load balancing — Algorithm 2 (greedy min-load bin packing).

Each request's KV cache lives in one PIM channel, and a channel executes
its requests' MHA sequentially; the MHA phase of an iteration therefore
lasts as long as the *most loaded* channel.  Algorithm 2 minimizes that
makespan greedily: sort incoming requests by sequence length descending
and place each on the channel with the smallest estimated load (LPT
scheduling, a 4/3-approximation of the optimal makespan).

The naive NPU+PIM baseline assigns requests round-robin instead
(:func:`round_robin_assign`), which Figure 13 shows costs throughput
whenever sequence lengths are skewed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.estimator import MhaLatencyEstimator
from repro.serving.request import InferenceRequest


class ChannelLoadTracker:
    """Incrementally maintained per-channel load (Algorithm 2's metric).

    Algorithm 2 starts from the per-channel loads of the *resident*
    requests before placing new ones; recomputing ``estimate_batch`` over
    every channel's whole resident set at each admission boundary would be
    O(batch x channels x iterations), so this tracker keeps those loads
    live instead.  The scheduler calls :meth:`add` on admission,
    :meth:`update` when a request's context grows, and :meth:`remove` on
    retirement; the bin packer starts from :attr:`loads` instead of
    re-estimating the resident set.

    Note this is a *behavioral* upgrade where wired in, not only a fast
    path: the untracked scheduler wiring passes no resident set, so
    admission packs against idle channels.  Attaching a tracker makes
    placement follow the paper's algorithm (and changes serving numbers
    accordingly); the untracked default is unchanged.

    Pairs well with :func:`repro.perf.memoized_estimator`, which makes the
    per-request re-estimates O(1) dictionary hits.
    """

    def __init__(self, estimator: MhaLatencyEstimator,
                 num_channels: int) -> None:
        if num_channels <= 0:
            raise ValueError("num_channels must be positive")
        self.estimator = estimator
        self.num_channels = num_channels
        self._loads = [0.0] * num_channels
        #: request id -> (channel, load contribution)
        self._contrib: Dict[int, Tuple[int, float]] = {}

    @property
    def loads(self) -> List[float]:
        """Current estimated load per channel (live copy)."""
        return list(self._loads)

    def __len__(self) -> int:
        return len(self._contrib)

    def _check_channel(self, request: InferenceRequest) -> int:
        channel = request.channel
        if channel is None or not 0 <= channel < self.num_channels:
            raise ValueError(
                f"request {request.request_id} has no valid channel "
                f"(got {channel})"
            )
        return channel

    def add(self, request: InferenceRequest) -> float:
        """Track an admitted request; returns its load contribution."""
        channel = self._check_channel(request)
        if request.request_id in self._contrib:
            raise ValueError(f"request {request.request_id} already tracked")
        load = self.estimator.estimate(request.seq_len)
        self._loads[channel] += load
        self._contrib[request.request_id] = (channel, load)
        return load

    def update(self, request: InferenceRequest) -> None:
        """Refresh a request's contribution (context grew).

        Upserts: a running request the tracker has not seen — e.g. a
        pre-warmed batch submitted directly in the RUNNING state, which
        never crosses the admission path — is adopted once it has a
        channel, so per-iteration refreshes self-heal coverage.
        """
        entry = self._contrib.get(request.request_id)
        if entry is None:
            channel = request.channel
            if channel is not None and 0 <= channel < self.num_channels:
                self.add(request)
            return
        old_channel, old_load = entry
        if request.channel != old_channel:
            # The request was re-homed (e.g. re-assigned for a smaller
            # channel pool): migrate its contribution.
            self.remove(request)
            self.update(request)
            return
        new_load = self.estimator.estimate(request.seq_len)
        self._loads[old_channel] += new_load - old_load
        self._contrib[request.request_id] = (old_channel, new_load)

    def remove(self, request: InferenceRequest) -> None:
        """Stop tracking a retired request (no-op when untracked)."""
        entry = self._contrib.pop(request.request_id, None)
        if entry is None:
            return
        channel, load = entry
        self._loads[channel] -= load

    def clear(self) -> None:
        """Forget every tracked request."""
        self._loads = [0.0] * self.num_channels
        self._contrib.clear()


def channel_loads(requests: Iterable[InferenceRequest],
                  estimator: MhaLatencyEstimator,
                  num_channels: int) -> List[float]:
    """Estimated MHA load (cycles) per channel for assigned requests."""
    loads = [0.0] * num_channels
    for request in requests:
        if request.channel is None:
            continue
        if not 0 <= request.channel < num_channels:
            raise ValueError(
                f"request {request.request_id} on invalid channel "
                f"{request.channel}"
            )
        loads[request.channel] += estimator.estimate(request.seq_len)
    return loads


def greedy_min_load_assign(
    new_requests: Sequence[InferenceRequest],
    estimator: MhaLatencyEstimator,
    num_channels: int,
    existing: Sequence[InferenceRequest] = (),
    initial_loads: Optional[Sequence[float]] = None,
) -> Dict[int, int]:
    """Algorithm 2: assign ``new_requests`` to channels, mutating them.

    Parameters
    ----------
    new_requests:
        Requests without a channel assignment.
    existing:
        Already-placed requests contributing to current channel loads
        (Algorithm 2's initial per-channel load computation).
    initial_loads:
        Pre-computed starting loads (e.g. a :class:`ChannelLoadTracker`'s
        :attr:`~ChannelLoadTracker.loads`); when given, ``existing`` is
        not re-estimated.

    Returns
    -------
    Mapping of request id to assigned channel (also written into each
    request's ``channel`` field).
    """
    if num_channels <= 0:
        raise ValueError("num_channels must be positive")
    if initial_loads is not None:
        if len(initial_loads) != num_channels:
            raise ValueError("initial_loads length must equal num_channels")
        loads = list(initial_loads)
    else:
        loads = channel_loads(existing, estimator, num_channels)

    assignment: Dict[int, int] = {}
    # Sort by sequence length descending (longest-processing-time first).
    ordered = sorted(new_requests, key=lambda r: (-r.seq_len, r.request_id))
    for request in ordered:
        min_index = min(range(num_channels), key=lambda c: (loads[c], c))
        request.channel = min_index
        load = estimator.estimate(request.seq_len)
        loads[min_index] += load
        assignment[request.request_id] = min_index
    return assignment


def round_robin_assign(
    new_requests: Sequence[InferenceRequest],
    num_channels: int,
    start: int = 0,
) -> Dict[int, int]:
    """Baseline policy: requests go to channels round-robin (paper §8.1)."""
    if num_channels <= 0:
        raise ValueError("num_channels must be positive")
    assignment: Dict[int, int] = {}
    for offset, request in enumerate(new_requests):
        channel = (start + offset) % num_channels
        request.channel = channel
        assignment[request.request_id] = channel
    return assignment


def load_imbalance(loads: Sequence[float]) -> float:
    """Makespan imbalance: max load over mean load (1.0 = perfectly even)."""
    if not loads:
        return 1.0
    mean = sum(loads) / len(loads)
    if mean == 0:
        return 1.0
    return max(loads) / mean
