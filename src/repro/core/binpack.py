"""Channel load balancing — Algorithm 2 (greedy min-load bin packing).

Each request's KV cache lives in one PIM channel, and a channel executes
its requests' MHA sequentially; the MHA phase of an iteration therefore
lasts as long as the *most loaded* channel.  Algorithm 2 minimizes that
makespan greedily: sort incoming requests by sequence length descending
and place each on the channel with the smallest estimated load (LPT
scheduling, a 4/3-approximation of the optimal makespan).

The naive NPU+PIM baseline assigns requests round-robin instead
(:func:`round_robin_assign`), which Figure 13 shows costs throughput
whenever sequence lengths are skewed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.estimator import MhaLatencyEstimator
from repro.serving.request import InferenceRequest


class ChannelLoadTracker:
    """Incrementally maintained per-channel load (Algorithm 2's metric).

    Algorithm 2 starts from the per-channel loads of the *resident*
    requests before placing new ones; recomputing ``estimate_batch`` over
    every channel's whole resident set at each admission boundary would be
    O(batch x channels x iterations), so this tracker keeps those loads
    live instead.  The scheduler calls :meth:`add` on admission,
    :meth:`update` when a request's context grows, and :meth:`remove` on
    retirement; the bin packer starts from :attr:`loads` instead of
    re-estimating the resident set.

    The tracker stores a per-channel **seq_len histogram** (integer
    multiplicities of each equivalence class) and derives loads from it
    lazily, accumulating ``estimate(seq_len) * count`` in ascending
    seq_len order.  Integer histogram updates commute, so the loads are a
    pure function of the resident class multiset — the per-request
    update path and the grouped engine's batched resync produce
    bit-identical loads, and :func:`channel_loads` (the scan-based
    recompute) uses the same canonical accumulation.

    Note this is a *behavioral* upgrade where wired in, not only a fast
    path: the untracked scheduler wiring passes no resident set, so
    admission packs against idle channels.  Attaching a tracker makes
    placement follow the paper's algorithm (and changes serving numbers
    accordingly); the untracked default is unchanged.

    Pairs well with :func:`repro.perf.memoized_estimator`, which makes the
    per-request re-estimates O(1) dictionary hits.
    """

    def __init__(self, estimator: MhaLatencyEstimator,
                 num_channels: int) -> None:
        if num_channels <= 0:
            raise ValueError("num_channels must be positive")
        self.estimator = estimator
        self.num_channels = num_channels
        #: per-channel {seq_len: count} histograms
        self._hist: List[Dict[int, int]] = [{} for _ in range(num_channels)]
        #: request id -> (channel, seq_len at last refresh)
        self._contrib: Dict[int, Tuple[int, int]] = {}
        #: per-channel cached load (None = recompute from histogram)
        self._cache: List[Optional[float]] = [0.0] * num_channels

    @property
    def loads(self) -> List[float]:
        """Current estimated load per channel (live copy)."""
        return [self._channel_load(c) for c in range(self.num_channels)]

    def _channel_load(self, channel: int) -> float:
        cached = self._cache[channel]
        if cached is None:
            hist = self._hist[channel]
            cached = 0.0
            for seq_len in sorted(hist):
                cached += self.estimator.estimate(seq_len) * hist[seq_len]
            self._cache[channel] = cached
        return cached

    def __len__(self) -> int:
        return len(self._contrib)

    def _check_channel(self, request: InferenceRequest) -> int:
        channel = request.channel
        if channel is None or not 0 <= channel < self.num_channels:
            raise ValueError(
                f"request {request.request_id} has no valid channel "
                f"(got {channel})"
            )
        return channel

    def _hist_add(self, channel: int, seq_len: int, count: int = 1) -> None:
        hist = self._hist[channel]
        hist[seq_len] = hist.get(seq_len, 0) + count
        self._cache[channel] = None

    def _hist_remove(self, channel: int, seq_len: int,
                     count: int = 1) -> None:
        hist = self._hist[channel]
        remaining = hist.get(seq_len, 0) - count
        if remaining < 0:
            raise ValueError(
                f"channel {channel} histogram underflow at seq_len {seq_len}")
        if remaining:
            hist[seq_len] = remaining
        else:
            hist.pop(seq_len, None)
        self._cache[channel] = None

    def add(self, request: InferenceRequest) -> float:
        """Track an admitted request; returns its load contribution."""
        channel = self._check_channel(request)
        if request.request_id in self._contrib:
            raise ValueError(f"request {request.request_id} already tracked")
        seq_len = request.seq_len
        self._hist_add(channel, seq_len)
        self._contrib[request.request_id] = (channel, seq_len)
        return self.estimator.estimate(seq_len)

    def update(self, request: InferenceRequest) -> None:
        """Refresh a request's contribution (context grew).

        Upserts: a running request the tracker has not seen — e.g. a
        pre-warmed batch submitted directly in the RUNNING state, which
        never crosses the admission path — is adopted once it has a
        channel, so per-iteration refreshes self-heal coverage.
        """
        entry = self._contrib.get(request.request_id)
        if entry is None:
            channel = request.channel
            if channel is not None and 0 <= channel < self.num_channels:
                self.add(request)
            return
        old_channel, old_seq = entry
        if request.channel != old_channel:
            # The request was re-homed (e.g. re-assigned for a smaller
            # channel pool): migrate its contribution.
            self.remove(request)
            self.update(request)
            return
        new_seq = request.seq_len
        if new_seq == old_seq:
            return
        self._hist_remove(old_channel, old_seq)
        self._hist_add(old_channel, new_seq)
        self._contrib[request.request_id] = (old_channel, new_seq)

    def sync_member(self, request_id: int, channel: int,
                    seq_len: int) -> None:
        """Batched resync from the grouped engine (upserting, like
        :meth:`update`, but without touching the request object)."""
        entry = self._contrib.get(request_id)
        if entry is not None:
            old_channel, old_seq = entry
            if (old_channel, old_seq) == (channel, seq_len):
                return
            self._hist_remove(old_channel, old_seq)
        self._hist_add(channel, seq_len)
        self._contrib[request_id] = (channel, seq_len)

    def remove(self, request: InferenceRequest) -> None:
        """Stop tracking a retired request (no-op when untracked)."""
        entry = self._contrib.pop(request.request_id, None)
        if entry is None:
            return
        channel, seq_len = entry
        self._hist_remove(channel, seq_len)

    def channel_histogram(self, channel: int) -> Dict[int, int]:
        """The channel's live {seq_len: count} class histogram (copy)."""
        if not 0 <= channel < self.num_channels:
            raise ValueError(f"invalid channel {channel}")
        return dict(self._hist[channel])

    def clear(self) -> None:
        """Forget every tracked request."""
        self._hist = [{} for _ in range(self.num_channels)]
        self._cache = [0.0] * self.num_channels
        self._contrib.clear()


def channel_loads(requests: Iterable[InferenceRequest],
                  estimator: MhaLatencyEstimator,
                  num_channels: int) -> List[float]:
    """Estimated MHA load (cycles) per channel for assigned requests.

    Accumulates per (channel, seq_len) equivalence class in ascending
    seq_len order — the same canonical arithmetic as
    :class:`ChannelLoadTracker`, so a scan-based recompute matches the
    incrementally tracked loads bit for bit.
    """
    hists: List[Dict[int, int]] = [{} for _ in range(num_channels)]
    for request in requests:
        if request.channel is None:
            continue
        if not 0 <= request.channel < num_channels:
            raise ValueError(
                f"request {request.request_id} on invalid channel "
                f"{request.channel}"
            )
        hist = hists[request.channel]
        hist[request.seq_len] = hist.get(request.seq_len, 0) + 1
    loads = [0.0] * num_channels
    for channel, hist in enumerate(hists):
        for seq_len in sorted(hist):
            loads[channel] += estimator.estimate(seq_len) * hist[seq_len]
    return loads


def greedy_min_load_assign(
    new_requests: Sequence[InferenceRequest],
    estimator: MhaLatencyEstimator,
    num_channels: int,
    existing: Sequence[InferenceRequest] = (),
    initial_loads: Optional[Sequence[float]] = None,
) -> Dict[int, int]:
    """Algorithm 2: assign ``new_requests`` to channels, mutating them.

    Parameters
    ----------
    new_requests:
        Requests without a channel assignment.
    existing:
        Already-placed requests contributing to current channel loads
        (Algorithm 2's initial per-channel load computation).
    initial_loads:
        Pre-computed starting loads (e.g. a :class:`ChannelLoadTracker`'s
        :attr:`~ChannelLoadTracker.loads`); when given, ``existing`` is
        not re-estimated.

    Returns
    -------
    Mapping of request id to assigned channel (also written into each
    request's ``channel`` field).
    """
    if num_channels <= 0:
        raise ValueError("num_channels must be positive")
    if initial_loads is not None:
        if len(initial_loads) != num_channels:
            raise ValueError("initial_loads length must equal num_channels")
        loads = list(initial_loads)
    else:
        loads = channel_loads(existing, estimator, num_channels)

    assignment: Dict[int, int] = {}
    # Sort by sequence length descending (longest-processing-time first).
    ordered = sorted(new_requests, key=lambda r: (-r.seq_len, r.request_id))
    for request in ordered:
        min_index = min(range(num_channels), key=lambda c: (loads[c], c))
        request.channel = min_index
        load = estimator.estimate(request.seq_len)
        loads[min_index] += load
        assignment[request.request_id] = min_index
    return assignment


def round_robin_assign(
    new_requests: Sequence[InferenceRequest],
    num_channels: int,
    start: int = 0,
) -> Dict[int, int]:
    """Baseline policy: requests go to channels round-robin (paper §8.1)."""
    if num_channels <= 0:
        raise ValueError("num_channels must be positive")
    assignment: Dict[int, int] = {}
    for offset, request in enumerate(new_requests):
        channel = (start + offset) % num_channels
        request.channel = channel
        assignment[request.request_id] = channel
    return assignment


def load_imbalance(loads: Sequence[float]) -> float:
    """Makespan imbalance: max load over mean load (1.0 = perfectly even)."""
    if not loads:
        return 1.0
    mean = sum(loads) / len(loads)
    if mean == 0:
        return 1.0
    return max(loads) / mean
