"""Channel load balancing — Algorithm 2 (greedy min-load bin packing).

Each request's KV cache lives in one PIM channel, and a channel executes
its requests' MHA sequentially; the MHA phase of an iteration therefore
lasts as long as the *most loaded* channel.  Algorithm 2 minimizes that
makespan greedily: sort incoming requests by sequence length descending
and place each on the channel with the smallest estimated load (LPT
scheduling, a 4/3-approximation of the optimal makespan).

The naive NPU+PIM baseline assigns requests round-robin instead
(:func:`round_robin_assign`), which Figure 13 shows costs throughput
whenever sequence lengths are skewed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.core.estimator import MhaLatencyEstimator
from repro.serving.request import InferenceRequest


def channel_loads(requests: Iterable[InferenceRequest],
                  estimator: MhaLatencyEstimator,
                  num_channels: int) -> List[float]:
    """Estimated MHA load (cycles) per channel for assigned requests."""
    loads = [0.0] * num_channels
    for request in requests:
        if request.channel is None:
            continue
        if not 0 <= request.channel < num_channels:
            raise ValueError(
                f"request {request.request_id} on invalid channel "
                f"{request.channel}"
            )
        loads[request.channel] += estimator.estimate(request.seq_len)
    return loads


def greedy_min_load_assign(
    new_requests: Sequence[InferenceRequest],
    estimator: MhaLatencyEstimator,
    num_channels: int,
    existing: Sequence[InferenceRequest] = (),
) -> Dict[int, int]:
    """Algorithm 2: assign ``new_requests`` to channels, mutating them.

    Parameters
    ----------
    new_requests:
        Requests without a channel assignment.
    existing:
        Already-placed requests contributing to current channel loads
        (Algorithm 2's initial per-channel load computation).

    Returns
    -------
    Mapping of request id to assigned channel (also written into each
    request's ``channel`` field).
    """
    if num_channels <= 0:
        raise ValueError("num_channels must be positive")
    loads = channel_loads(existing, estimator, num_channels)

    assignment: Dict[int, int] = {}
    # Sort by sequence length descending (longest-processing-time first).
    ordered = sorted(new_requests, key=lambda r: (-r.seq_len, r.request_id))
    for request in ordered:
        min_index = min(range(num_channels), key=lambda c: (loads[c], c))
        request.channel = min_index
        load = estimator.estimate(request.seq_len)
        loads[min_index] += load
        assignment[request.request_id] = min_index
    return assignment


def round_robin_assign(
    new_requests: Sequence[InferenceRequest],
    num_channels: int,
    start: int = 0,
) -> Dict[int, int]:
    """Baseline policy: requests go to channels round-robin (paper §8.1)."""
    if num_channels <= 0:
        raise ValueError("num_channels must be positive")
    assignment: Dict[int, int] = {}
    for offset, request in enumerate(new_requests):
        channel = (start + offset) % num_channels
        request.channel = channel
        assignment[request.request_id] = channel
    return assignment


def load_imbalance(loads: Sequence[float]) -> float:
    """Makespan imbalance: max load over mean load (1.0 = perfectly even)."""
    if not loads:
        return 1.0
    mean = sum(loads) / len(loads)
    if mean == 0:
        return 1.0
    return max(loads) / mean
