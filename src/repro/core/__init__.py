"""NeuPIMs core: configuration, algorithms 1-3, device and system models."""

from repro.core.binpack import (
    ChannelLoadTracker,
    channel_loads,
    greedy_min_load_assign,
    load_imbalance,
    round_robin_assign,
)
from repro.core.config import NeuPimsConfig
from repro.core.device import (
    IterationResult,
    MhaStageTiming,
    NeuPimsDevice,
    shard_for_mha,
)
from repro.core.estimator import MhaLatencyEstimator, analytic_latencies
from repro.core.partition import (
    group_by_channel,
    partition_batch,
    partition_stats,
    partition_sub_batches,
)
from repro.core.system import NeuPimsSystem, ParallelismScheme

from repro.core.overlap import HeadPipelineModel, OverlapTimeline
from repro.core.planner import DeploymentPlan, PlanPoint, plan_deployment
from repro.core.prefill import EndToEndResult, StandaloneNpu, end_to_end_request

from repro.core.cluster import NeuPimsCluster, RoutingPolicy

__all__ = [
    "ChannelLoadTracker",
    "channel_loads",
    "greedy_min_load_assign",
    "load_imbalance",
    "round_robin_assign",
    "NeuPimsConfig",
    "IterationResult",
    "MhaStageTiming",
    "NeuPimsDevice",
    "shard_for_mha",
    "MhaLatencyEstimator",
    "analytic_latencies",
    "group_by_channel",
    "partition_batch",
    "partition_stats",
    "partition_sub_batches",
    "NeuPimsSystem",
    "ParallelismScheme",
    "HeadPipelineModel",
    "OverlapTimeline",
    "DeploymentPlan",
    "PlanPoint",
    "plan_deployment",
    "EndToEndResult",
    "StandaloneNpu",
    "end_to_end_request",
    "NeuPimsCluster",
    "RoutingPolicy",
]
