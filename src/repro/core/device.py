"""The NeuPIMs device model: one NPU+PIM accelerator executing iterations.

This is the event/tile-level model used by the end-to-end experiments
(Figures 12-15, Table 4).  One generation iteration of the resident
decoder blocks is composed from:

* **GEMM stages** on the NPU systolic arrays (QKV generation and
  projection + FFNs), timed by :class:`repro.npu.chip.NpuChip` — these are
  sharded by tensor parallelism;
* **MHA stages** on the PIM channels (logit/attend GEMVs per request,
  estimated by Algorithm 1) and the NPU vector units (softmax).  Following
  the paper's Algorithm 1 (which uses the full ``E`` and ``N_head``), MHA
  work is *not* sharded by TP: a request's KV cache lives whole in its
  assigned channel, and tensor parallelism shards the weight GEMMs only.

Execution composition depends on the feature flags:

* ``sub_batch_interleaving`` off -> the serialized timeline of Figure
  11(a): N x (QKV -> MHA -> Proj&FFNs).
* on -> the Figure 11(b) pipeline: the batch splits per Algorithm 3 and
  the two sub-batches are list-scheduled onto the NPU-S and PIM resources,
  overlapping one sub-batch's GEMMs with the other's MHA.
* ``dual_row_buffer`` off (blocked mode) additionally serializes the
  per-head PIM->vector-unit handoffs inside MHA and pays the fine-grained
  command overhead (no composite ISA without the NeuPIMs bank).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.binpack import (ChannelLoadTracker, greedy_min_load_assign,
                                round_robin_assign)
from repro.core.config import NeuPimsConfig
from repro.core.estimator import MhaLatencyEstimator, analytic_latencies
from repro.perf.calibration import memoized_estimator
from repro.core.partition import partition_batch
from repro.model.layers import ffn_gemms, projection_gemm, qkv_generation_gemm
from repro.model.spec import ModelSpec
from repro.npu.chip import NpuChip
from repro.serving.grouping import (DeviceClassPlan, MhaHistogram,
                                    SubBatchClasses, mha_histogram,
                                    shift_histogram)
from repro.serving.request import InferenceRequest
from repro.sim.engine import Resource


@dataclass
class IterationResult:
    """Timing and accounting of one generation iteration."""

    latency: float
    busy: Dict[str, float] = field(default_factory=dict)
    external_bytes: float = 0.0
    internal_pim_bytes: float = 0.0
    #: typed counter vector of the iteration (empty unless a counter
    #: model is attached; see :mod:`repro.counters`)
    counters: Dict[str, float] = field(default_factory=dict)

    def utilization(self, name: str) -> float:
        """Busy fraction of the named unit over the iteration."""
        if self.latency <= 0:
            return 0.0
        return min(1.0, self.busy.get(name, 0.0) / self.latency)

    def bandwidth_utilization(self, effective_bandwidth: float,
                              clock_hz: float = 1e9) -> float:
        """External bandwidth utilization over the iteration."""
        if self.latency <= 0:
            return 0.0
        seconds = self.latency / clock_hz
        return min(1.0, self.external_bytes / (effective_bandwidth * seconds))


@dataclass(frozen=True)
class GemmStage:
    """Timing of one sub-batch's GEMM stages (QKV, projection + FFNs)."""

    qkv_cycles: float       #: QKV generation latency (roofline)
    projffn_cycles: float   #: projection + both FFN GEMMs latency
    external_bytes: float   #: weight + activation HBM traffic
    compute_cycles: float   #: ideal MAC-limited cycles (utilization acct)

    @property
    def total_cycles(self) -> float:
        return self.qkv_cycles + self.projffn_cycles


@dataclass(frozen=True)
class MhaStageTiming:
    """Timing components of one sub-batch's MHA stage."""

    pim_cycles: float       #: most-loaded channel's GEMV time (with stalls)
    softmax_cycles: float   #: vector-unit time across the sub-batch
    transfer_cycles: float  #: blocked-mode PIM<->host handoff overhead
    internal_bytes: float   #: KV bytes streamed inside the PIM banks
    pim_busy_cycles: float = 0.0  #: stall-free GEMV time (utilization acct)

    def duration(self, dual_row_buffer: bool) -> float:
        """Stage duration under the given bank microarchitecture.

        Dual row buffers let the vector units consume partial logits while
        the PIM keeps computing (Figure 10), so the stage is the max of
        the two flows; blocked mode serializes the PIM execution (whose
        per-channel loads already include the host handoffs) with softmax.
        """
        if dual_row_buffer:
            return max(self.pim_cycles, self.softmax_cycles)
        return self.pim_cycles + self.softmax_cycles


class NeuPimsDevice:
    """One NeuPIMs accelerator (NPU + PIM channels).

    Parameters
    ----------
    spec:
        Full model specification.
    config:
        Hardware + feature configuration.
    tp:
        Tensor-parallel degree sharding the weight GEMMs.
    layers_resident:
        Decoder blocks executed per iteration on this device
        (``num_layers / pp`` under pipeline parallelism).
    estimator:
        Algorithm-1 estimator; defaults to the analytic calibration.
    channel_pool:
        PIM channels available for request placement.  Defaults to one
        device's channels; a tensor-parallel group pools the channels of
        all its devices (each request's KV cache lives on one channel of
        one group member), so :class:`~repro.core.system.NeuPimsSystem`
        passes ``tp * channels``.
    """

    def __init__(self, spec: ModelSpec, config: Optional[NeuPimsConfig] = None,
                 tp: int = 1, layers_resident: Optional[int] = None,
                 estimator: Optional[MhaLatencyEstimator] = None,
                 channel_pool: Optional[int] = None) -> None:
        self.spec = spec
        self.config = config or NeuPimsConfig()
        self.tp = tp
        self.layers = (spec.num_layers if layers_resident is None
                       else layers_resident)
        if self.layers <= 0:
            raise ValueError("layers_resident must be positive")
        spec.heads_per_shard(tp)  # validates divisibility
        self.channel_pool = (self.config.num_channels if channel_pool is None
                             else channel_pool)
        if self.channel_pool <= 0:
            raise ValueError("channel_pool must be positive")
        self.npu = NpuChip(self.config.npu, self.config.org,
                           self.config.bandwidth_derate)
        # Algorithm-1 estimates are pure per seq_len; the memo makes the
        # per-iteration MHA loads and admission bin packing O(1) lookups.
        self.estimator = memoized_estimator(estimator or MhaLatencyEstimator(
            spec=spec, org=self.config.org,
            latencies=analytic_latencies(self.config.timing, self.config.org,
                                         self.config.pim_timing),
        ))
        #: Optional live per-channel load tracker (see
        #: :class:`~repro.core.binpack.ChannelLoadTracker`); when attached,
        #: admission-time bin packing starts from its loads instead of
        #: assuming idle channels.
        self.load_tracker: Optional[ChannelLoadTracker] = None
        #: Optional analytic-tier counter model (see
        #: :meth:`attach_counters`); when attached, iteration results are
        #: annotated with typed counter vectors before entering the
        #: replay memo, so memo hits replay counters too.
        self.counter_model = None
        self._rr_cursor = 0
        # Per-class MHA contributions, keyed by seq_len.  Every
        # contribution (GEMV estimate, softmax time, internal KV bytes)
        # is a pure function of seq_len under this device's fixed
        # spec/config/estimator and independent of channel placement, so
        # all requests in a (channel, seq_len) equivalence class share
        # one entry and repeated mha_stage calls (sub-batches plus the
        # serialized comparison under adaptive SBI) recompute nothing.
        self._class_contrib: Dict[int, Tuple[float, float, float]] = {}
        # Stage/iteration replay memos: GEMM stages are pure in the
        # sub-batch token count, MHA stages pure in the class histogram,
        # and whole iteration results pure in the plan signature — so a
        # batch whose class signature recurs (steady-state decode,
        # symmetric Algorithm-3 sub-batches, repeated warmed batches)
        # replays the memoized result instead of re-simulating.
        self._gemm_memo: Dict[int, GemmStage] = {}
        self._mha_memo: Dict[MhaHistogram, MhaStageTiming] = {}
        self._iteration_memo: Dict[Tuple, IterationResult] = {}
        self._interleave_memo: Dict[Tuple, IterationResult] = {}
        # Scratch resources for the interleaved list scheduler (reset per
        # call; busy-interval recording off — only busy totals are read).
        self._res_npu_s = Resource("npu_s", record_intervals=False)
        self._res_pim = Resource("pim", record_intervals=False)
        self._res_npu_v = Resource("npu_v", record_intervals=False)
        # Config-derived MHA constants, hoisted out of the per-request loop.
        overhead = 1.0
        if not self.config.composite_isa:
            overhead *= 1.0 + self.config.fine_grained_overhead
        if not self.config.dual_row_buffer:
            overhead *= 1.0 + self.config.blocked_mode_overhead
        self._mha_overhead = overhead
        # Blocked-mode handoffs: per head, the logits leave the PIM via
        # RDRESULT and the softmax results return via GWRITE through the
        # single row buffer, serializing with the GEMVs on that channel.
        pim = self.config.pim_timing
        self._transfer_per_request = spec.num_heads * (
            pim.rdresult_cycles + pim.gwrite_cycles)

    def attach_load_tracker(self) -> ChannelLoadTracker:
        """Create and attach a load tracker over this device's channels."""
        self.load_tracker = ChannelLoadTracker(self.estimator,
                                               self.channel_pool)
        return self.load_tracker

    def attach_counters(self):
        """Create and attach the analytic-tier typed counter model.

        Returns the :class:`~repro.counters.model.DeviceCounterModel`;
        subsequent iterations carry their counter vectors on
        :attr:`IterationResult.counters`.
        """
        from repro.counters.model import DeviceCounterModel
        self.counter_model = DeviceCounterModel(self)
        return self.counter_model

    # ------------------------------------------------------------------
    # Channel assignment (Algorithm 2 or round robin).
    # ------------------------------------------------------------------

    def assign_channels(self, new_requests: Sequence[InferenceRequest],
                        existing: Sequence[InferenceRequest] = ()) -> None:
        """Place unassigned requests onto PIM channels per the config."""
        if self.config.greedy_binpack:
            initial = (self.load_tracker.loads
                       if self.load_tracker is not None and not existing
                       else None)
            greedy_min_load_assign(new_requests, self.estimator,
                                   self.channel_pool, existing,
                                   initial_loads=initial)
        else:
            round_robin_assign(new_requests, self.channel_pool,
                               start=self._rr_cursor)
            self._rr_cursor = (self._rr_cursor + len(new_requests)) \
                % self.channel_pool

    def _ensure_assigned(self, requests: Sequence[InferenceRequest]) -> None:
        """Assign channels to new requests (and re-home out-of-range ones,
        e.g. requests previously placed by a system with a larger pool)."""
        unassigned = []
        for request in requests:
            if request.channel is None or request.channel >= self.channel_pool:
                request.channel = None
                unassigned.append(request)
        if unassigned:
            assigned = [r for r in requests if r.channel is not None]
            self.assign_channels(unassigned, assigned)

    # ------------------------------------------------------------------
    # Stage timing.
    # ------------------------------------------------------------------

    def gemm_stage_cycles(self, batch_tokens: int) -> "GemmStage":
        """GEMM-stage timing for a sub-batch of ``batch_tokens`` tokens.

        Pure in ``batch_tokens`` under the fixed spec/config, so the
        stage is memoized — steady-state serving recomputes nothing.
        """
        if batch_tokens <= 0:
            raise ValueError("batch_tokens must be positive")
        cached = self._gemm_memo.get(batch_tokens)
        if cached is not None:
            return cached
        if len(self._gemm_memo) >= 1024:
            self._gemm_memo.clear()
        dtype = self.spec.dtype_bytes
        qkv = qkv_generation_gemm(self.spec, batch_tokens, self.tp)
        proj = projection_gemm(self.spec, batch_tokens, self.tp)
        ffns = ffn_gemms(self.spec, batch_tokens, self.tp)
        t_qkv = self.npu.gemm_cycles(qkv, dtype)
        t_proj = self.npu.gemm_cycles(proj, dtype)
        t_ffn = sum(self.npu.gemm_cycles(g, dtype) for g in ffns)
        bytes_moved = (qkv.bytes_moved(dtype) + proj.bytes_moved(dtype)
                       + sum(g.bytes_moved(dtype) for g in ffns))
        ideal = self.npu.systolic_busy_cycles(qkv, proj, *ffns)
        stage = GemmStage(qkv_cycles=t_qkv, projffn_cycles=t_proj + t_ffn,
                          external_bytes=float(bytes_moved),
                          compute_cycles=float(ideal))
        self._gemm_memo[batch_tokens] = stage
        return stage

    def _class_contribution(self, seq_len: int
                            ) -> Tuple[float, float, float]:
        """One seq_len class's (estimate, softmax, KV bytes), memoized."""
        entry = self._class_contrib.get(seq_len)
        if entry is None:
            if len(self._class_contrib) >= 32768:
                self._class_contrib.clear()
            entry = (
                self.estimator.estimate(seq_len),
                self.npu.softmax_latency(seq_len, self.spec.num_heads),
                2.0 * seq_len * self.spec.d_model * self.spec.dtype_bytes,
            )
            self._class_contrib[seq_len] = entry
        return entry

    def mha_stage(self, requests: Sequence[InferenceRequest]) -> MhaStageTiming:
        """MHA timing for a sub-batch already assigned to channels."""
        return self.mha_stage_classes(mha_histogram(requests))

    def mha_stage_classes(self, hist: MhaHistogram) -> MhaStageTiming:
        """MHA timing from a canonical class histogram.

        This is the **single** arithmetic for both serving paths: the
        per-request path builds ``hist`` by scanning the batch, the
        grouped path maintains it incrementally, and the sums accumulate
        in the histogram's canonical ``(channel, seq_len)`` order either
        way — so identical histograms give bit-identical timings.
        """
        if not hist:
            return MhaStageTiming(0.0, 0.0, 0.0, 0.0)
        cached = self._mha_memo.get(hist)
        if cached is not None:
            return cached
        loads: Dict[int, float] = {}
        raw_total = 0.0
        softmax_total = 0.0
        internal_bytes = 0.0
        batch_size = 0
        overhead = self._mha_overhead
        dual_row_buffer = self.config.dual_row_buffer
        transfer_per_request = self._transfer_per_request
        for channel, seq_len, count in hist:
            estimate, softmax, kv_bytes = self._class_contribution(seq_len)
            batch_size += count
            raw_total += estimate * count
            load = estimate * overhead
            if not dual_row_buffer:
                load += transfer_per_request
            loads[channel] = loads.get(channel, 0.0) + load * count
            softmax_total += softmax * count
            internal_bytes += kv_bytes * count
        pim_cycles = max(loads.values())
        transfers = (0.0 if dual_row_buffer
                     else transfer_per_request * batch_size
                     / self.channel_pool)
        # PIM *compute* utilization averages the in-bank units across all
        # channels (Table 4's accounting), so busy time is the mean
        # stall-free channel load.
        mean_raw = raw_total / self.channel_pool
        result = MhaStageTiming(pim_cycles=pim_cycles,
                                softmax_cycles=softmax_total,
                                transfer_cycles=transfers,
                                internal_bytes=internal_bytes,
                                pim_busy_cycles=mean_raw)
        if len(self._mha_memo) >= 4096:
            self._mha_memo.clear()
        self._mha_memo[hist] = result
        return result

    # ------------------------------------------------------------------
    # Iteration execution.
    # ------------------------------------------------------------------

    def prepare_class_plan(self, requests: Sequence[InferenceRequest]
                           ) -> DeviceClassPlan:
        """Freeze the batch's class structure at a batch boundary.

        Assigns channels to unplaced requests (exactly as a per-request
        iteration would), then captures the full class histogram and —
        when sub-batch interleaving applies — the Algorithm-3 split.
        Between boundaries the plan is reused with a uniform seq_len
        shift (the batch membership and channel placement are fixed, so
        the split is translation-invariant).
        """
        if not requests:
            raise ValueError("empty batch")
        self._ensure_assigned(requests)
        split = None
        if self.config.sub_batch_interleaving and len(requests) >= 2:
            sb1, sb2 = partition_batch(requests, self.channel_pool)
            split = (SubBatchClasses(len(sb1), mha_histogram(sb1)),
                     SubBatchClasses(len(sb2), mha_histogram(sb2)))
        return DeviceClassPlan(batch_size=len(requests),
                               hist=mha_histogram(requests), split=split)

    def iteration(self, requests: Sequence[InferenceRequest]) -> IterationResult:
        """Execute one generation iteration over the batch.

        With sub-batch interleaving enabled, the runtime compares the
        interleaved pipeline against the serialized schedule using the
        same latency model and keeps the faster one (``adaptive_sbi``);
        the paper notes SBI's pipelining penalty can outweigh its benefit
        below batch 256, which this fallback avoids paying.

        The per-request batch is reduced to its class histogram first and
        all timing flows through :meth:`iteration_from_plan`, so this
        path and the grouped serving engine share one arithmetic.
        """
        return self.iteration_from_plan(self.prepare_class_plan(requests), 0)

    def iteration_from_plan(self, plan: DeviceClassPlan,
                            shift: int = 0) -> IterationResult:
        """One iteration of a planned batch after ``shift`` decode steps.

        Results are memoized by the shifted class signature (the
        iteration replay cache): when a signature recurs the memoized
        :class:`IterationResult` is returned as-is, which is exact
        because the result is a pure function of the signature under this
        device's fixed configuration.
        """
        hist = shift_histogram(plan.hist, shift)
        if plan.split is not None and plan.split[0].size \
                and plan.split[1].size:
            sb1, sb2 = plan.split
            sub1 = (sb1.size, shift_histogram(sb1.hist, shift))
            sub2 = (sb2.size, shift_histogram(sb2.hist, shift))
            signature = (plan.batch_size, hist, sub1, sub2)
            cached = self._iteration_memo.get(signature)
            if cached is not None:
                return cached
            result = self._interleaved_classes(sub1, sub2)
            if self.config.adaptive_sbi:
                serialized = self._serialized_classes(plan.batch_size, hist)
                if serialized.latency < result.latency:
                    result = serialized
        else:
            signature = (plan.batch_size, hist)
            cached = self._iteration_memo.get(signature)
            if cached is not None:
                return cached
            result = self._serialized_classes(plan.batch_size, hist)
        if self.counter_model is not None:
            # Annotate a copy (interleave-memo objects are shared across
            # plan signatures) so the counter vector enters the replay
            # memo with the timing — memo hits replay counters exactly.
            result = self.counter_model.annotate(result, hist)
        if len(self._iteration_memo) >= 2048:
            self._iteration_memo.clear()
        self._iteration_memo[signature] = result
        return result

    def _serialized_classes(self, batch_tokens: int,
                            hist: MhaHistogram) -> IterationResult:
        """Figure 11(a): QKV -> MHA -> Proj&FFN per block, serialized."""
        gemm = self.gemm_stage_cycles(batch_tokens)
        mha = self.mha_stage_classes(hist)
        t_mha = mha.duration(self.config.dual_row_buffer)
        per_block = gemm.qkv_cycles + t_mha + gemm.projffn_cycles
        latency = per_block * self.layers
        busy = {
            "npu": gemm.compute_cycles * self.layers,
            "npu_vector": mha.softmax_cycles * self.layers,
            "pim": mha.pim_busy_cycles * self.layers,
        }
        return IterationResult(
            latency=latency,
            busy=busy,
            external_bytes=gemm.external_bytes * self.layers,
            internal_pim_bytes=mha.internal_bytes * self.layers,
        )

    def _interleaved_classes(self, sub1: Tuple[int, MhaHistogram],
                             sub2: Tuple[int, MhaHistogram]
                             ) -> IterationResult:
        """Figure 11(b): two sub-batches pipelined across NPU-S and PIM.

        The list-scheduled timeline is a pure function of the two
        sub-batches' frozen stage timings, so it is memoized on them —
        decode plateaus where the stage scalars repeat (MHA hidden under
        the GEMM stages) replay the schedule instead of re-running it.
        """
        stage_plans: List[Tuple[GemmStage, MhaStageTiming]] = []
        gemm_bytes = 0.0
        internal_bytes = 0.0
        compute_busy = 0.0
        for size, hist in (sub1, sub2):
            gemm = self.gemm_stage_cycles(size)
            mha = self.mha_stage_classes(hist)
            stage_plans.append((gemm, mha))
            gemm_bytes += gemm.external_bytes * self.layers
            internal_bytes += mha.internal_bytes * self.layers
            compute_busy += gemm.compute_cycles * self.layers
        memo_key = (stage_plans[0], stage_plans[1])
        cached = self._interleave_memo.get(memo_key)
        if cached is not None:
            return cached

        npu_s = self._res_npu_s
        pim = self._res_pim
        npu_v = self._res_npu_v
        npu_s.reset()
        pim.reset()
        npu_v.reset()

        # Build each sub-batch's operator sequence over the resident layers.
        sequences: List[List[Tuple[str, float]]] = []
        for gemm, mha in stage_plans:
            t_mha = mha.duration(self.config.dual_row_buffer)
            seq: List[Tuple[str, float]] = []
            for _ in range(self.layers):
                seq.append(("npu_s", gemm.qkv_cycles))
                seq.append(("pim", t_mha))
                seq.append(("npu_s", gemm.projffn_cycles))
            sequences.append(seq)

        resources = {"npu_s": npu_s, "pim": pim}
        ready = [0.0, 0.0]
        cursor = [0, 0]
        softmax_share = [plan[1].softmax_cycles for plan in stage_plans]
        while any(cursor[s] < len(sequences[s]) for s in (0, 1)):
            # Pick the sub-batch whose next operator can start earliest
            # (list scheduling); ties favour sub-batch order.
            best_s, best_start = None, None
            for s in (0, 1):
                if cursor[s] >= len(sequences[s]):
                    continue
                res_name, _ = sequences[s][cursor[s]]
                candidate = max(ready[s], resources[res_name].free_at)
                if best_start is None or candidate < best_start:
                    best_s, best_start = s, candidate
            res_name, duration = sequences[best_s][cursor[best_s]]
            _, end = resources[res_name].acquire_for(duration,
                                                     earliest=ready[best_s])
            if res_name == "pim":
                npu_v.acquire_for(softmax_share[best_s],
                                  earliest=end - duration)
            ready[best_s] = end
            cursor[best_s] += 1

        latency = max(ready)
        pim_busy = sum(plan[1].pim_busy_cycles
                       for plan in stage_plans) * self.layers
        busy = {
            "npu": compute_busy,
            "npu_vector": npu_v.busy_time,
            "pim": pim_busy,
        }
        result = IterationResult(
            latency=latency,
            busy=busy,
            external_bytes=gemm_bytes,
            internal_pim_bytes=internal_bytes,
        )
        if len(self._interleave_memo) >= 2048:
            self._interleave_memo.clear()
        self._interleave_memo[memo_key] = result
        return result

    # ------------------------------------------------------------------

    def executor(self):
        """A :data:`~repro.serving.scheduler.BatchExecutor` for this device."""
        def run(batch: Sequence[InferenceRequest]) -> float:
            return self.iteration(batch).latency
        return run


def shard_for_mha(spec: ModelSpec, tp: int) -> ModelSpec:
    """Per-device MHA shard (heads divided by TP).

    The default NeuPIMs model follows Algorithm 1 and keeps MHA unsharded;
    this helper exists for sensitivity studies that shard attention too.
    """
    heads = spec.heads_per_shard(tp)
    return replace(spec, name=f"{spec.name}-mha-tp{tp}",
                   num_heads=heads, d_model=heads * spec.head_dim)
