"""NeuPIMs device configuration and feature flags.

Bundles the hardware parameters of Table 2 with the three technique flags
the ablation study (Figure 13) toggles:

* ``dual_row_buffer`` — the microarchitectural contribution (DRB);
* ``greedy_binpack`` — greedy min-load bin packing channel balancing
  (GMLBP, Algorithm 2) vs round-robin assignment;
* ``sub_batch_interleaving`` — the scheduling contribution (SBI,
  Algorithms 1/3 + the interleaved executor).

``composite_isa`` selects the NeuPIMs command encoding (PIM_HEADER /
PIM_GEMV / PIM_PRECHARGE) over the baseline fine-grained Newton commands;
it is enabled together with DRB in the paper's NeuPIMs configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.dram.timing import HbmOrganization, PimTiming, TimingParams
from repro.npu.chip import NpuConfig


@dataclass(frozen=True)
class NeuPimsConfig:
    """Full device configuration."""

    npu: NpuConfig = field(default_factory=NpuConfig)
    org: HbmOrganization = field(default_factory=HbmOrganization)
    timing: TimingParams = field(default_factory=TimingParams)
    pim_timing: PimTiming = field(default_factory=PimTiming)

    dual_row_buffer: bool = True
    composite_isa: bool = True
    greedy_binpack: bool = True
    sub_batch_interleaving: bool = True
    #: compare the interleaved and serialized schedules with the latency
    #: model each iteration and run the faster one; avoids SBI's pipelining
    #: penalty at small batch sizes (paper §8.2, ablation discussion)
    adaptive_sbi: bool = True

    #: achievable fraction of peak external bandwidth for streamed traffic
    bandwidth_derate: float = 0.8
    #: C/A-bus inflation of PIM execution when using the fine-grained
    #: command encoding (measured from the command-level simulation; see
    #: tests/test_calibration.py)
    fine_grained_overhead: float = 0.18
    #: PIM slowdown in blocked mode (single row buffer): without the dual
    #: row buffer the per-head PIM<->vector-unit handoffs break the wave
    #: pipeline (each head's GEMV re-activates rows from a closed bank and
    #: partial pages cannot be coalesced across heads), which the paper's
    #: Figure 6/13 data puts at roughly 1.75x the pipelined execution.
    blocked_mode_overhead: float = 1.1

    def __post_init__(self) -> None:
        if not 0.0 < self.bandwidth_derate <= 1.0:
            raise ValueError("bandwidth_derate must be in (0, 1]")
        if self.fine_grained_overhead < 0:
            raise ValueError("fine_grained_overhead must be non-negative")
        if self.blocked_mode_overhead < 0:
            raise ValueError("blocked_mode_overhead must be non-negative")

    # ------------------------------------------------------------------
    # Named configurations used throughout the evaluation.
    # ------------------------------------------------------------------

    @classmethod
    def neupims(cls) -> "NeuPimsConfig":
        """The full NeuPIMs system (all techniques on)."""
        return cls()

    @classmethod
    def naive_npu_pim(cls) -> "NeuPimsConfig":
        """The naive NPU+PIM baseline: blocked-mode PIM, round-robin
        channel assignment, serialized execution."""
        return cls(dual_row_buffer=False, composite_isa=False,
                   greedy_binpack=False, sub_batch_interleaving=False)

    @classmethod
    def ablation(cls, *, dual_row_buffer: bool = False,
                 greedy_binpack: bool = False,
                 sub_batch_interleaving: bool = False) -> "NeuPimsConfig":
        """A Figure-13 ablation point, from the naive starting state.

        The composite ISA ships with the dual-row-buffer bank (it exists
        to keep the shared C/A bus off the critical path once both flows
        run concurrently), so it toggles together with
        ``dual_row_buffer`` — the single place that encodes the pairing.
        """
        return cls(
            dual_row_buffer=dual_row_buffer,
            composite_isa=dual_row_buffer,
            greedy_binpack=greedy_binpack,
            sub_batch_interleaving=sub_batch_interleaving,
        )

    def with_features(self, *, dual_row_buffer: Optional[bool] = None,
                      composite_isa: Optional[bool] = None,
                      greedy_binpack: Optional[bool] = None,
                      sub_batch_interleaving: Optional[bool] = None,
                      ) -> "NeuPimsConfig":
        """Return a copy with the given feature flags overridden."""
        updates = {}
        if dual_row_buffer is not None:
            updates["dual_row_buffer"] = dual_row_buffer
        if composite_isa is not None:
            updates["composite_isa"] = composite_isa
        if greedy_binpack is not None:
            updates["greedy_binpack"] = greedy_binpack
        if sub_batch_interleaving is not None:
            updates["sub_batch_interleaving"] = sub_batch_interleaving
        return replace(self, **updates)

    @property
    def num_channels(self) -> int:
        return self.org.channels

    @property
    def effective_bandwidth(self) -> float:
        """Achievable external bytes/second."""
        return self.org.total_bandwidth * self.bandwidth_derate
