"""Sub-batch partitioning — Algorithm 3 of the paper.

Sub-batch interleaving pipelines two *independent* halves of the batch, so
each half should (a) keep roughly half of every channel's requests — the
MHA time of a sub-batch is its most-loaded channel — and (b) have similar
total size — the GEMM time of a sub-batch grows with its token count.

Algorithm 3 achieves both by splitting each channel's request list in half
and alternating which sub-batch receives the extra request when a channel
holds an odd count (the ``turn`` flip).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.serving.request import InferenceRequest


def group_by_channel(requests: Sequence[InferenceRequest],
                     num_channels: int) -> List[List[InferenceRequest]]:
    """Bucket requests by their assigned channel (unassigned -> channel 0)."""
    buckets: List[List[InferenceRequest]] = [[] for _ in range(num_channels)]
    for request in requests:
        channel = request.channel if request.channel is not None else 0
        if not 0 <= channel < num_channels:
            raise ValueError(
                f"request {request.request_id} on invalid channel {channel}"
            )
        buckets[channel].append(request)
    return buckets


def partition_sub_batches(
    requests_per_channel: Sequence[Sequence[InferenceRequest]],
) -> Tuple[List[InferenceRequest], List[InferenceRequest]]:
    """Algorithm 3: split each channel's requests into two sub-batches.

    Each channel contributes half of its requests to each sub-batch; odd
    remainders alternate between the sub-batches via the ``turn`` toggle
    so neither accumulates all the spare requests.
    """
    turn = True
    sb1: List[InferenceRequest] = []
    sb2: List[InferenceRequest] = []
    for channel_requests in requests_per_channel:
        size = len(channel_requests)
        half = size / 2
        if size % 2 != 0:
            half_int = (size + 1) // 2 if turn else size // 2
            turn = not turn
        else:
            half_int = size // 2
        del half  # the paper's bsize float is only used via ceil/floor
        sb1.extend(channel_requests[:half_int])
        sb2.extend(channel_requests[half_int:])
    for request in sb1:
        request.sub_batch = 0
    for request in sb2:
        request.sub_batch = 1
    return sb1, sb2


def partition_batch(requests: Sequence[InferenceRequest],
                    num_channels: int
                    ) -> Tuple[List[InferenceRequest], List[InferenceRequest]]:
    """Group by channel, then apply Algorithm 3."""
    return partition_sub_batches(group_by_channel(requests, num_channels))


def partition_stats(sb1: Sequence[InferenceRequest],
                    sb2: Sequence[InferenceRequest]) -> Dict[str, float]:
    """Balance diagnostics used by tests and the ablation bench."""
    size1, size2 = len(sb1), len(sb2)
    tokens1 = sum(r.seq_len for r in sb1)
    tokens2 = sum(r.seq_len for r in sb2)
    return {
        "size_1": float(size1),
        "size_2": float(size2),
        "size_skew": abs(size1 - size2),
        "tokens_1": float(tokens1),
        "tokens_2": float(tokens2),
        "token_skew": abs(tokens1 - tokens2) / max(1.0, (tokens1 + tokens2) / 2),
    }
