"""Summarization (prefill) phase on standalone NPUs (paper Figure 7, §4).

The NeuPIMs system delegates the summarization phase — entirely GEMMs —
to *standalone* NPUs, while the NeuPIMs devices run the generation phase.
This module models that split: prefill latency of a prompt on a standalone
NPU, the handoff of the KV cache into the NeuPIMs device's PIM channels,
and an end-to-end request lifecycle combining both phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.config import NeuPimsConfig
from repro.core.device import NeuPimsDevice
from repro.model.layers import decoder_block_operators
from repro.model.spec import ModelSpec
from repro.npu.chip import NpuChip
from repro.serving.request import InferenceRequest


@dataclass(frozen=True)
class PrefillResult:
    """Timing of one prompt's summarization phase."""

    prompt_tokens: int
    compute_cycles: float
    kv_transfer_cycles: float

    @property
    def total_cycles(self) -> float:
        return self.compute_cycles + self.kv_transfer_cycles


class StandaloneNpu:
    """A standalone NPU executing summarization-phase decoder blocks.

    Parameters
    ----------
    spec:
        Model (prefill runs the full decoder stack).
    config:
        Hardware configuration (shares the NPU/HBM models).
    tp:
        Tensor-parallel degree across standalone NPUs.
    kv_link_bandwidth:
        Bytes/second of the interconnect carrying the produced KV cache to
        the NeuPIMs device (PCIe/CXL class, Figure 7's high-bandwidth
        interconnect).
    """

    def __init__(self, spec: ModelSpec, config: Optional[NeuPimsConfig] = None,
                 tp: int = 1, kv_link_bandwidth: float = 100e9) -> None:
        if kv_link_bandwidth <= 0:
            raise ValueError("kv_link_bandwidth must be positive")
        self.spec = spec
        self.config = config or NeuPimsConfig()
        self.tp = tp
        self.kv_link_bandwidth = kv_link_bandwidth
        self.npu = NpuChip(self.config.npu, self.config.org,
                           self.config.bandwidth_derate)

    def prefill(self, prompt_tokens: int) -> PrefillResult:
        """Summarize one prompt: all decoder blocks, GEMM-only."""
        if prompt_tokens <= 0:
            raise ValueError("prompt_tokens must be positive")
        ops = decoder_block_operators(self.spec, [prompt_tokens], tp=self.tp,
                                      phase="summarization")
        per_block = 0.0
        for op in ops:
            # The roofline time of each summarization operator: all are
            # GEMM-shaped (attention included).
            compute = op.flops / (2 * self.npu.config.systolic.macs_per_cycle
                                  * self.npu.config.num_systolic_arrays)
            memory = self.npu._bytes_cycles(op.bytes_moved)
            per_block += max(compute, memory)
        compute_cycles = per_block * self.spec.num_layers

        kv_bytes = prompt_tokens * self.spec.kv_bytes_per_token()
        kv_cycles = kv_bytes / self.kv_link_bandwidth * 1e9
        return PrefillResult(prompt_tokens=prompt_tokens,
                             compute_cycles=compute_cycles,
                             kv_transfer_cycles=kv_cycles)

    def prefill_batch(self, prompt_lengths: Sequence[int]) -> PrefillResult:
        """Summarize a batch of prompts (selective batching applies)."""
        if not prompt_lengths:
            raise ValueError("empty prompt batch")
        ops = decoder_block_operators(self.spec, list(prompt_lengths),
                                      tp=self.tp, phase="summarization")
        per_block = 0.0
        for op in ops:
            compute = op.flops / (2 * self.npu.config.systolic.macs_per_cycle
                                  * self.npu.config.num_systolic_arrays)
            memory = self.npu._bytes_cycles(op.bytes_moved)
            per_block += max(compute, memory)
        compute_cycles = per_block * self.spec.num_layers
        kv_bytes = sum(prompt_lengths) * self.spec.kv_bytes_per_token()
        kv_cycles = kv_bytes / self.kv_link_bandwidth * 1e9
        return PrefillResult(prompt_tokens=sum(prompt_lengths),
                             compute_cycles=compute_cycles,
                             kv_transfer_cycles=kv_cycles)


@dataclass
class EndToEndResult:
    """Timing of one request's full lifecycle (prefill + generation)."""

    prefill_cycles: float
    generation_cycles: float
    output_tokens: int

    @property
    def total_cycles(self) -> float:
        return self.prefill_cycles + self.generation_cycles

    @property
    def ttft_cycles(self) -> float:
        """Time to first token = prefill (the first token comes with it)."""
        return self.prefill_cycles


def end_to_end_request(spec: ModelSpec, request: InferenceRequest,
                       device: Optional[NeuPimsDevice] = None,
                       prefill_npu: Optional[StandaloneNpu] = None,
                       batch_context: int = 64) -> EndToEndResult:
    """Estimate one request's full latency through the NeuPIMs system.

    The request prefills on the standalone NPU, then generates its output
    tokens on the NeuPIMs device amortized over a batch of
    ``batch_context`` concurrent requests (its share of each iteration is
    the full iteration latency — iteration time is what separates its
    successive tokens).
    """
    device = device or NeuPimsDevice(spec, tp=spec.tensor_parallel)
    prefill_npu = prefill_npu or StandaloneNpu(spec, device.config,
                                               tp=spec.tensor_parallel)
    prefill = prefill_npu.prefill(request.input_len)

    # Steady-state iteration latency with this request in a typical batch.
    from repro.serving.trace import SHAREGPT, warmed_batch
    context = warmed_batch(SHAREGPT, batch_context, seed=request.request_id)
    peers = list(context[:-1]) + [request]
    iteration = device.iteration(peers).latency
    generation = iteration * request.output_len
    return EndToEndResult(
        prefill_cycles=prefill.total_cycles,
        generation_cycles=generation,
        output_tokens=request.output_len,
    )
