"""Deployment planner: choose batch size and parallelism for a model.

The kind of tool a NeuPIMs operator needs (and that the paper's Figure 14
discussion implies): given a model and a device inventory, enumerate the
feasible (TP, PP, batch) points — feasibility means the weights fit the
devices and the KV cache fits the channels — and pick the
throughput-optimal configuration, optionally under a latency constraint.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.sweep import SweepAxis, run_sweep
from repro.core.config import NeuPimsConfig
from repro.core.system import NeuPimsSystem, ParallelismScheme
from repro.exec.backends import ParallelSpec
from repro.model.spec import ModelSpec
from repro.serving.trace import DatasetTrace, warmed_batch


@dataclass(frozen=True)
class PlanPoint:
    """One evaluated deployment configuration."""

    tp: int
    pp: int
    batch_size: int
    devices: int
    throughput_tokens_per_second: float
    iteration_latency_ms: float
    weights_fit: bool
    kv_fits: bool

    @property
    def feasible(self) -> bool:
        return self.weights_fit and self.kv_fits


def weights_fit(spec: ModelSpec, scheme: ParallelismScheme,
                config: Optional[NeuPimsConfig] = None,
                weight_capacity_fraction: float = 0.5) -> bool:
    """Whether the model shard's weights fit one device's memory.

    ``weight_capacity_fraction`` reserves the rest for the KV cache and
    activations.
    """
    config = config or NeuPimsConfig()
    if not 0 < weight_capacity_fraction <= 1:
        raise ValueError("weight_capacity_fraction must be in (0, 1]")
    shard_bytes = spec.weight_bytes / scheme.tp \
        * spec.layers_per_stage(scheme.pp) / spec.num_layers
    budget = config.org.total_capacity * weight_capacity_fraction
    return shard_bytes <= budget


def kv_fits(spec: ModelSpec, scheme: ParallelismScheme, batch_size: int,
            avg_seq_len: int, config: Optional[NeuPimsConfig] = None,
            kv_capacity_fraction: float = 0.45) -> bool:
    """Whether the batch's KV cache fits the TP group's pooled channels."""
    config = config or NeuPimsConfig()
    if batch_size <= 0 or avg_seq_len <= 0:
        raise ValueError("batch_size and avg_seq_len must be positive")
    per_device_requests = -(-batch_size // scheme.pp)
    layers = spec.layers_per_stage(scheme.pp)
    kv_bytes = (per_device_requests * avg_seq_len
                * 2 * spec.d_model * spec.dtype_bytes * layers)
    pooled_capacity = (config.org.total_capacity * scheme.tp
                       * kv_capacity_fraction)
    return kv_bytes <= pooled_capacity


@dataclass
class DeploymentPlan:
    """Planner output: all evaluated points plus the chosen one."""

    points: List[PlanPoint]
    best: Optional[PlanPoint]


def _evaluate_plan_point(spec: ModelSpec, trace: DatasetTrace,
                         config: NeuPimsConfig, seed: int,
                         tp: int, pp: int,
                         batch_size: int) -> Dict[str, object]:
    """One planner cell (module level so process workers can import it)."""
    scheme = ParallelismScheme(tp, pp)
    batch = warmed_batch(trace, batch_size, seed=seed)
    avg_seq = max(1, sum(r.seq_len for r in batch) // len(batch))
    fits_w = weights_fit(spec, scheme, config)
    fits_kv = kv_fits(spec, scheme, batch_size, avg_seq, config)
    system = NeuPimsSystem(spec, scheme, config=config)
    throughput = system.throughput_tokens_per_second(batch)
    latency_ms = system.iteration_latency(batch) / 1e6
    return {
        "devices": tp * pp,
        "throughput": throughput,
        "latency_ms": latency_ms,
        "weights_fit": fits_w,
        "kv_fits": fits_kv,
    }


def plan_deployment(
    spec: ModelSpec,
    trace: DatasetTrace,
    max_devices: int = 8,
    batch_sizes: Optional[List[int]] = None,
    max_iteration_latency_ms: Optional[float] = None,
    config: Optional[NeuPimsConfig] = None,
    seed: int = 0,
    parallel: ParallelSpec = None,
) -> DeploymentPlan:
    """Enumerate configurations and pick the best feasible one.

    The objective is system throughput; ``max_iteration_latency_ms``
    optionally bounds per-token latency (a TPOT SLO).  ``parallel``
    shards the (TP, PP, batch) grid across a :mod:`repro.exec` backend;
    the plan is identical to a serial run.
    """
    if max_devices <= 0:
        raise ValueError("max_devices must be positive")
    config = config or NeuPimsConfig()
    batch_sizes = batch_sizes or [64, 128, 256, 512]

    tp_values = [t for t in (1, 2, 4, 8, 16)
                 if t <= max_devices and spec.num_heads % t == 0]
    pp_values = [p for p in (1, 2, 4, 8) if p <= max_devices]

    def skip(tp: int, pp: int, batch_size: int) -> bool:
        return tp * pp > max_devices

    sweep = run_sweep(
        [SweepAxis("tp", tp_values), SweepAxis("pp", pp_values),
         SweepAxis("batch_size", batch_sizes)],
        functools.partial(_evaluate_plan_point, spec, trace, config, seed),
        skip=skip, parallel=parallel)

    points = [
        PlanPoint(tp=r["tp"], pp=r["pp"], batch_size=r["batch_size"],
                  devices=r["devices"],
                  throughput_tokens_per_second=r["throughput"],
                  iteration_latency_ms=r["latency_ms"],
                  weights_fit=r["weights_fit"], kv_fits=r["kv_fits"])
        for r in sweep.records
    ]
    candidates = [p for p in points if p.feasible]
    if max_iteration_latency_ms is not None:
        candidates = [p for p in candidates
                      if p.iteration_latency_ms <= max_iteration_latency_ms]
    best = max(candidates, key=lambda p: p.throughput_tokens_per_second,
               default=None)
    return DeploymentPlan(points=points, best=best)
