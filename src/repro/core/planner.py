"""Deployment planner: choose batch size and parallelism for a model.

The kind of tool a NeuPIMs operator needs (and that the paper's Figure 14
discussion implies): given a model and a device inventory, enumerate the
feasible (TP, PP, batch) points — feasibility means the weights fit the
devices and the KV cache fits the channels — and pick the
throughput-optimal configuration, optionally under a latency constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import NeuPimsConfig
from repro.core.system import ParallelismScheme
from repro.exec.backends import ParallelSpec
from repro.model.spec import ModelSpec
from repro.serving.trace import DatasetTrace, warmed_batch


@dataclass(frozen=True)
class PlanPoint:
    """One evaluated deployment configuration."""

    tp: int
    pp: int
    batch_size: int
    devices: int
    throughput_tokens_per_second: float
    iteration_latency_ms: float
    weights_fit: bool
    kv_fits: bool

    @property
    def feasible(self) -> bool:
        return self.weights_fit and self.kv_fits


def weights_fit(spec: ModelSpec, scheme: ParallelismScheme,
                config: Optional[NeuPimsConfig] = None,
                weight_capacity_fraction: float = 0.5) -> bool:
    """Whether the model shard's weights fit one device's memory.

    ``weight_capacity_fraction`` reserves the rest for the KV cache and
    activations.
    """
    config = config or NeuPimsConfig()
    if not 0 < weight_capacity_fraction <= 1:
        raise ValueError("weight_capacity_fraction must be in (0, 1]")
    shard_bytes = spec.weight_bytes / scheme.tp \
        * spec.layers_per_stage(scheme.pp) / spec.num_layers
    budget = config.org.total_capacity * weight_capacity_fraction
    return shard_bytes <= budget


def kv_fits(spec: ModelSpec, scheme: ParallelismScheme, batch_size: int,
            avg_seq_len: int, config: Optional[NeuPimsConfig] = None,
            kv_capacity_fraction: float = 0.45) -> bool:
    """Whether the batch's KV cache fits the TP group's pooled channels."""
    config = config or NeuPimsConfig()
    if batch_size <= 0 or avg_seq_len <= 0:
        raise ValueError("batch_size and avg_seq_len must be positive")
    per_device_requests = -(-batch_size // scheme.pp)
    layers = spec.layers_per_stage(scheme.pp)
    kv_bytes = (per_device_requests * avg_seq_len
                * 2 * spec.d_model * spec.dtype_bytes * layers)
    pooled_capacity = (config.org.total_capacity * scheme.tp
                       * kv_capacity_fraction)
    return kv_bytes <= pooled_capacity


@dataclass
class DeploymentPlan:
    """Planner output: all evaluated points plus the chosen one."""

    points: List[PlanPoint]
    best: Optional[PlanPoint]


def plan_scenario(spec: ModelSpec, trace: DatasetTrace,
                  config: NeuPimsConfig, seed: int,
                  tp: int, pp: int, batch_size: int):
    """One planner cell as a :class:`~repro.api.ScenarioSpec`.

    ``pp`` is always set, so the session materializes the multi-device
    :class:`NeuPimsSystem` engine with pooled TP-group channels.
    """
    from repro.api import ScenarioSpec, TrafficSpec
    return ScenarioSpec(
        model=spec, system="neupims", config=config, tp=tp, pp=pp,
        fidelity="analytic",
        traffic=TrafficSpec.warmed(dataset=trace, batch_size=batch_size,
                                   seed=seed))


def plan_deployment(
    spec: ModelSpec,
    trace: DatasetTrace,
    max_devices: int = 8,
    batch_sizes: Optional[List[int]] = None,
    max_iteration_latency_ms: Optional[float] = None,
    config: Optional[NeuPimsConfig] = None,
    seed: int = 0,
    parallel: ParallelSpec = None,
) -> DeploymentPlan:
    """Enumerate configurations and pick the best feasible one.

    The objective is system throughput; ``max_iteration_latency_ms``
    optionally bounds per-token latency (a TPOT SLO).  Every grid point
    becomes a declarative :func:`plan_scenario` spec; ``parallel`` fans
    the specs across a :mod:`repro.exec` backend through
    :func:`~repro.api.run_scenarios`, and the plan is identical to a
    serial run.
    """
    from repro.api import run_scenarios
    if max_devices <= 0:
        raise ValueError("max_devices must be positive")
    config = config or NeuPimsConfig()
    batch_sizes = batch_sizes or [64, 128, 256, 512]

    tp_values = [t for t in (1, 2, 4, 8, 16)
                 if t <= max_devices and spec.num_heads % t == 0]
    pp_values = [p for p in (1, 2, 4, 8) if p <= max_devices]

    grid: List[Tuple[int, int, int]] = [
        (tp, pp, batch_size)
        for tp in tp_values for pp in pp_values
        for batch_size in batch_sizes
        if tp * pp <= max_devices
    ]
    results = run_scenarios(
        [plan_scenario(spec, trace, config, seed, tp, pp, batch_size)
         for tp, pp, batch_size in grid],
        parallel=parallel)

    # The feasibility probe batch depends only on batch_size; sample it
    # once per size instead of once per (tp, pp, batch_size) point.
    avg_seq_by_size = {}
    for batch_size in batch_sizes:
        batch = warmed_batch(trace, batch_size, seed=seed)
        avg_seq_by_size[batch_size] = max(
            1, sum(r.seq_len for r in batch) // len(batch))

    points = []
    for (tp, pp, batch_size), result in zip(grid, results):
        scheme = ParallelismScheme(tp, pp)
        avg_seq = avg_seq_by_size[batch_size]
        points.append(PlanPoint(
            tp=tp, pp=pp, batch_size=batch_size, devices=tp * pp,
            throughput_tokens_per_second=result.tokens_per_second,
            iteration_latency_ms=result.mean_iteration_cycles / 1e6,
            weights_fit=weights_fit(spec, scheme, config),
            kv_fits=kv_fits(spec, scheme, batch_size, avg_seq, config)))
    candidates = [p for p in points if p.feasible]
    if max_iteration_latency_ms is not None:
        candidates = [p for p in candidates
                      if p.iteration_latency_ms <= max_iteration_latency_ms]
    best = max(candidates, key=lambda p: p.throughput_tokens_per_second,
               default=None)
    return DeploymentPlan(points=points, best=best)
