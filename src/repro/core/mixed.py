"""Mixed prefill + decode iterations (Orca's selective batching, fully).

The paper's system splits phases across hardware: summarization on
standalone NPUs, generation on NeuPIMs devices (Figure 7).  Orca's
original selective batching instead allows *mixed* iterations, where some
requests contribute their whole prompt (prefill) and others one decode
token, sharing the batched GEMMs.  This module models mixed iterations on
a NeuPIMs device so the two deployment styles can be compared:

* batched GEMMs run over ``decode_tokens + sum(prompt lengths)`` rows;
* decode requests' MHA runs on the PIM as usual (GEMV);
* prefill requests' attention is compute-shaped (matrix-matrix) and runs
  on the NPU alongside the GEMMs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.device import IterationResult, NeuPimsDevice
from repro.model.layers import GemmShape
from repro.serving.request import InferenceRequest


@dataclass(frozen=True)
class MixedBatch:
    """One mixed iteration's composition."""

    decode: Sequence[InferenceRequest]
    prefill: Sequence[InferenceRequest]

    def __post_init__(self) -> None:
        if not self.decode and not self.prefill:
            raise ValueError("mixed batch is empty")

    @property
    def gemm_tokens(self) -> int:
        """Rows of the batched GEMMs: one per decode request plus every
        prompt token of the prefill requests."""
        return len(self.decode) + sum(r.input_len for r in self.prefill)


def prefill_attention_cycles(device: NeuPimsDevice,
                             prefill: Sequence[InferenceRequest]) -> float:
    """NPU cycles for the prefill requests' (GEMM-shaped) attention."""
    spec = device.spec
    total = 0.0
    for request in prefill:
        seq = request.input_len
        attn = GemmShape(m=seq * spec.num_heads, k=spec.head_dim, n=seq)
        total += 2 * device.npu.gemm_cycles(attn, spec.dtype_bytes)
    return total


def mixed_iteration(device: NeuPimsDevice, batch: MixedBatch
                    ) -> IterationResult:
    """Execute one mixed prefill+decode iteration on a NeuPIMs device.

    The decode requests' PIM MHA overlaps the (now larger) GEMM stages
    exactly as in a pure decode iteration; the prefill attention adds NPU
    work to the projection/FFN stage, which further hides the PIM time.
    """
    gemm = device.gemm_stage_cycles(batch.gemm_tokens)
    prefill_attn = prefill_attention_cycles(device, batch.prefill)

    if batch.decode:
        device._ensure_assigned(batch.decode)
        mha = device.mha_stage(batch.decode)
        t_mha = mha.duration(device.config.dual_row_buffer)
        softmax = mha.softmax_cycles
        pim_busy = mha.pim_busy_cycles
        internal = mha.internal_bytes
    else:
        t_mha = softmax = pim_busy = internal = 0.0

    npu_stage = gemm.qkv_cycles + gemm.projffn_cycles + prefill_attn
    if device.config.sub_batch_interleaving and batch.decode:
        # The decode MHA overlaps the GEMM + prefill-attention work.
        per_block = max(npu_stage, t_mha) + min(npu_stage, t_mha) * 0.1
    else:
        per_block = npu_stage + t_mha
    latency = per_block * device.layers

    busy = {
        "npu": (gemm.compute_cycles + prefill_attn) * device.layers,
        "npu_vector": softmax * device.layers,
        "pim": pim_busy * device.layers,
    }
    return IterationResult(
        latency=latency,
        busy=busy,
        external_bytes=gemm.external_bytes * device.layers,
        internal_pim_bytes=internal * device.layers,
    )


def compare_deployment_styles(device: NeuPimsDevice,
                              decode: Sequence[InferenceRequest],
                              prefill: Sequence[InferenceRequest],
                              prefill_npu=None) -> dict:
    """Mixed iterations vs the paper's phase-split deployment.

    Returns per-style cycles for serving one iteration of the decode
    batch *and* prefilling the given prompts:

    * ``mixed``: one mixed iteration carries both.
    * ``split``: the NeuPIMs device runs the decode iteration while the
      standalone NPU prefills concurrently (max of the two).
    """
    from repro.core.prefill import StandaloneNpu
    mixed = mixed_iteration(device, MixedBatch(decode, prefill))
    decode_only = device.iteration(list(decode)) if decode else None
    npu = prefill_npu or StandaloneNpu(device.spec, device.config,
                                       tp=device.tp)
    if prefill:
        # Scale the full-stack prefill to the device's resident layers so
        # both styles cover the same slice of the model.
        full = npu.prefill_batch([r.input_len for r in prefill]).total_cycles
        prefill_cycles = full * device.layers / device.spec.num_layers
    else:
        prefill_cycles = 0.0
    split = max(decode_only.latency if decode_only else 0.0, prefill_cycles)
    return {
        "mixed_cycles": mixed.latency,
        "split_cycles": split,
        "split_decode_cycles": decode_only.latency if decode_only else 0.0,
        "split_prefill_cycles": prefill_cycles,
    }
