"""SIMD vector-unit timing model.

Each NeuPIMs NPU chiplet pairs a systolic array with a 128-lane SIMD
vector unit (Table 2) serving the non-GEMM operators: softmax, layer
normalization, residual adds and activation functions.  In the MHA overlap
analysis (Figure 10) the vector units consume partial logits from the PIM
while the systolic arrays stay idle — so their timing matters for the
interleaving model even though they are rarely the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil


@dataclass(frozen=True)
class VectorConfig:
    """Vector-unit geometry."""

    lanes: int = 128
    clock_ghz: float = 1.0
    #: cycles of fixed start-up overhead per kernel invocation
    launch_overhead: int = 16

    def __post_init__(self) -> None:
        if self.lanes <= 0 or self.clock_ghz <= 0 or self.launch_overhead < 0:
            raise ValueError("invalid vector-unit parameters")

    @property
    def flops_per_cycle(self) -> int:
        return self.lanes


def elementwise_cycles(elements: int, config: VectorConfig,
                       ops_per_element: float = 1.0) -> float:
    """Cycles for an elementwise kernel over ``elements`` values."""
    if elements < 0:
        raise ValueError("elements must be non-negative")
    if elements == 0:
        return 0.0
    work = ceil(elements * ops_per_element / config.lanes)
    return config.launch_overhead + work


def softmax_cycles(seq_len: int, num_heads: int, config: VectorConfig) -> float:
    """Cycles for the per-request softmax over ``num_heads`` logit rows.

    Softmax is three passes (max, exp+sum, divide) — about 5 operations per
    element including the exponential.
    """
    if seq_len <= 0 or num_heads <= 0:
        raise ValueError("seq_len and num_heads must be positive")
    return elementwise_cycles(seq_len * num_heads, config, ops_per_element=5.0)


def layernorm_cycles(batch_tokens: int, d_model: int,
                     config: VectorConfig) -> float:
    """Cycles for layer normalization over the batch (2 per block)."""
    return elementwise_cycles(batch_tokens * d_model, config,
                              ops_per_element=4.0)


def activation_cycles(batch_tokens: int, d_ffn: int,
                      config: VectorConfig) -> float:
    """Cycles for the FFN activation function (GELU ~ 8 ops/element)."""
    return elementwise_cycles(batch_tokens * d_ffn, config,
                              ops_per_element=8.0)
