"""Scratchpad memory (SPM) model for the NPU (paper Figure 7's SPM block).

The systolic arrays stream weight tiles and activation panels through an
on-chip scratchpad.  The SPM model answers the questions the scheduler and
the DESIGN.md calibration notes depend on:

* does a tile working set (current + prefetched weight tile, activation
  panel, output panel) fit, enabling double buffering?
* can a whole layer's weights persist across sub-batches (they cannot for
  the evaluated models — which is why sub-batch interleaving re-streams
  weights, see DESIGN.md §2)?

The allocator is a simple region allocator with explicit lifetimes, enough
to validate capacity claims without modelling banking conflicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.model.layers import GemmShape
from repro.model.spec import ModelSpec
from repro.npu.systolic import SystolicConfig


class SpmCapacityError(RuntimeError):
    """Raised when a working set does not fit the scratchpad."""


@dataclass(frozen=True)
class SpmConfig:
    """Scratchpad parameters: 32 MiB, double-buffered, is TPU-class."""

    capacity_bytes: int = 32 * (1 << 20)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")


class Scratchpad:
    """Region allocator with named buffers."""

    def __init__(self, config: Optional[SpmConfig] = None) -> None:
        self.config = config or SpmConfig()
        self._regions: Dict[str, int] = {}

    @property
    def used_bytes(self) -> int:
        return sum(self._regions.values())

    @property
    def free_bytes(self) -> int:
        return self.config.capacity_bytes - self.used_bytes

    def allocate(self, name: str, size: int) -> None:
        """Reserve ``size`` bytes under ``name``; raises when full."""
        if size <= 0:
            raise ValueError("size must be positive")
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        if size > self.free_bytes:
            raise SpmCapacityError(
                f"region {name!r} needs {size} bytes, {self.free_bytes} free")
        self._regions[name] = size

    def release(self, name: str) -> int:
        """Free region ``name``; returns the bytes released (0 if absent)."""
        return self._regions.pop(name, 0)

    def fits(self, size: int) -> bool:
        """Whether ``size`` bytes fit the current free space."""
        return size <= self.free_bytes


def tile_working_set_bytes(gemm: GemmShape, systolic: SystolicConfig,
                           dtype_bytes: int = 2,
                           double_buffered: bool = True) -> int:
    """Bytes the tile pipeline needs resident for one GEMM.

    Current weight tile (+ prefetch buffer), one activation panel
    ``m x tile_k`` (+ prefetch) and the output accumulator panel
    ``m x tile_n`` (fp32).
    """
    factor = 2 if double_buffered else 1
    weight_tile = systolic.rows * systolic.cols * dtype_bytes * factor
    act_panel = gemm.m * systolic.rows * dtype_bytes * factor
    out_panel = gemm.m * systolic.cols * 4  # fp32 accumulation
    return weight_tile + act_panel + out_panel


def tile_pipeline_fits(gemm: GemmShape, spm: Optional[SpmConfig] = None,
                       systolic: Optional[SystolicConfig] = None,
                       dtype_bytes: int = 2) -> bool:
    """Whether the double-buffered tile pipeline fits the SPM."""
    spm = spm or SpmConfig()
    systolic = systolic or SystolicConfig()
    return tile_working_set_bytes(gemm, systolic, dtype_bytes) \
        <= spm.capacity_bytes


def layer_weights_fit(spec: ModelSpec, tp: int = 1,
                      spm: Optional[SpmConfig] = None) -> bool:
    """Whether one decoder block's weights persist in the SPM.

    For every evaluated GPT-3 variant this is ``False`` even under TP,
    which is why each sub-batch's GEMMs re-stream weights from HBM — the
    source of sub-batch interleaving's small-batch penalty.
    """
    spm = spm or SpmConfig()
    heads = spec.heads_per_shard(tp)
    per_block = (
        spec.d_model * 3 * heads * spec.head_dim      # QKV
        + heads * spec.head_dim * spec.d_model        # projection
        + 2 * spec.d_model * (spec.d_ffn // tp)       # FFNs
    ) * spec.dtype_bytes
    return per_block <= spm.capacity_bytes


def max_streaming_batch(spm: Optional[SpmConfig] = None,
                        systolic: Optional[SystolicConfig] = None,
                        dtype_bytes: int = 2) -> int:
    """Largest M whose double-buffered tile pipeline fits the SPM."""
    spm = spm or SpmConfig()
    systolic = systolic or SystolicConfig()
    # Solve tile_working_set_bytes(m) <= capacity for m.
    fixed = systolic.rows * systolic.cols * dtype_bytes * 2
    per_m = systolic.rows * dtype_bytes * 2 + systolic.cols * 4
    budget = spm.capacity_bytes - fixed
    return max(0, budget // per_m)
