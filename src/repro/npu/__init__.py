"""NPU substrate: systolic arrays, vector units, chip-level latency model."""

from repro.npu.chip import NpuChip, NpuConfig
from repro.npu.systolic import (
    SystolicConfig,
    TileSchedule,
    gemm_compute_cycles,
    gemm_efficiency,
    schedule_gemm,
)
from repro.npu.vector import (
    VectorConfig,
    activation_cycles,
    elementwise_cycles,
    layernorm_cycles,
    softmax_cycles,
)

from repro.npu.functional import FunctionalSystolicArray, reference_gemm
from repro.npu.spm import (
    Scratchpad,
    SpmCapacityError,
    SpmConfig,
    layer_weights_fit,
    tile_pipeline_fits,
)

__all__ = [
    "NpuChip",
    "NpuConfig",
    "SystolicConfig",
    "TileSchedule",
    "gemm_compute_cycles",
    "gemm_efficiency",
    "schedule_gemm",
    "VectorConfig",
    "activation_cycles",
    "elementwise_cycles",
    "layernorm_cycles",
    "softmax_cycles",
    "FunctionalSystolicArray",
    "reference_gemm",
    "Scratchpad",
    "SpmCapacityError",
    "SpmConfig",
    "layer_weights_fit",
    "tile_pipeline_fits",
]
