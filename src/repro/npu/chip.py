"""The NPU chip model: systolic arrays + vector units + HBM interface.

Composes the tile-level systolic model and the vector-unit model into
per-operator latencies, applying the off-chip bandwidth roofline.  The
same chip model serves the NeuPIMs device (where MHA is offloaded to PIM)
and the NPU-only baseline (where MHA GEMVs run against plain HBM at
external bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dram.timing import HbmOrganization
from repro.model.layers import GemmShape, GemvShape
from repro.npu.systolic import SystolicConfig, gemm_compute_cycles
from repro.npu.vector import VectorConfig, softmax_cycles


@dataclass(frozen=True)
class NpuConfig:
    """NPU chip parameters (Table 2 defaults).

    8 systolic arrays of 128x128 and 8 SIMD vector units of 128 lanes at
    1 GHz, fed by the 32-channel HBM stack.
    """

    num_systolic_arrays: int = 8
    num_vector_units: int = 8
    systolic: SystolicConfig = field(default_factory=SystolicConfig)
    vector: VectorConfig = field(default_factory=VectorConfig)

    def __post_init__(self) -> None:
        if self.num_systolic_arrays <= 0 or self.num_vector_units <= 0:
            raise ValueError("unit counts must be positive")

    @property
    def peak_flops(self) -> float:
        """Peak GEMM FLOP/s across all systolic arrays."""
        return self.systolic.peak_flops * self.num_systolic_arrays

    @property
    def clock_hz(self) -> float:
        return self.systolic.clock_ghz * 1e9


class NpuChip:
    """Latency model for operators executed on the NPU.

    Parameters
    ----------
    config:
        NPU geometry.
    org:
        HBM organization providing the external bandwidth for the
        memory-side roofline.
    bandwidth_derate:
        Achievable fraction of peak external bandwidth (DRAM efficiency);
        0.8 is typical of well-streamed GEMM traffic.
    """

    def __init__(self, config: Optional[NpuConfig] = None,
                 org: Optional[HbmOrganization] = None,
                 bandwidth_derate: float = 0.8) -> None:
        if not 0.0 < bandwidth_derate <= 1.0:
            raise ValueError("bandwidth_derate must be in (0, 1]")
        self.config = config or NpuConfig()
        self.org = org or HbmOrganization()
        self.bandwidth_derate = bandwidth_derate

    @property
    def effective_bandwidth(self) -> float:
        """Achievable off-chip bytes/second."""
        return self.org.total_bandwidth * self.bandwidth_derate

    def _bytes_cycles(self, bytes_moved: float) -> float:
        """Cycles to move ``bytes_moved`` over the HBM interface."""
        seconds = bytes_moved / self.effective_bandwidth
        return seconds * self.config.clock_hz

    # ------------------------------------------------------------------

    def gemm_cycles(self, gemm: GemmShape, dtype_bytes: int = 2) -> float:
        """Latency of a GEMM: max of compute and weight/activation streaming."""
        compute = gemm_compute_cycles(gemm, self.config.systolic,
                                      self.config.num_systolic_arrays)
        memory = self._bytes_cycles(gemm.bytes_moved(dtype_bytes))
        return max(compute, memory)

    def systolic_busy_cycles(self, *gemms: GemmShape) -> float:
        """Ideal MAC-limited cycles of one or more GEMMs.

        The ``npu.systolic_busy_cycles`` typed counter: the time the
        systolic arrays spend doing useful MACs, excluding memory stalls
        — the numerator of Table 4's NPU compute utilization and the
        device tier's NPU occupancy charge.
        """
        flops = sum(gemm.flops for gemm in gemms)
        return flops / (2 * self.config.systolic.macs_per_cycle
                        * self.config.num_systolic_arrays)

    def gemm_compute_utilization(self, gemm: GemmShape,
                                 dtype_bytes: int = 2) -> float:
        """Fraction of peak MACs achieved, including memory stalls."""
        cycles = self.gemm_cycles(gemm, dtype_bytes)
        if cycles <= 0:
            return 0.0
        ideal = gemm.flops / (2 * self.config.systolic.macs_per_cycle
                              * self.config.num_systolic_arrays)
        return min(1.0, ideal / cycles)

    def gemv_cycles(self, gemv: GemvShape, dtype_bytes: int = 2) -> float:
        """Latency of a GEMV executed against plain HBM (NPU-only baseline).

        GEMVs have no weight reuse: every matrix byte is read once, so the
        operation is bandwidth-bound; the systolic arrays can always keep
        up (one row per cycle vs 32B/cycle/channel of supply).
        """
        memory = self._bytes_cycles(gemv.bytes_moved(dtype_bytes))
        compute = gemv.flops / (2 * self.config.systolic.macs_per_cycle
                                * self.config.num_systolic_arrays)
        return max(memory, compute)

    def softmax_latency(self, seq_len: int, num_heads: int) -> float:
        """Per-request softmax cycles across the vector-unit pool."""
        per_unit = softmax_cycles(seq_len, num_heads, self.config.vector)
        # Heads parallelize across the vector units.
        speedup = min(self.config.num_vector_units, num_heads)
        return per_unit / speedup
