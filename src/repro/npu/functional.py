"""Functional (numerical) simulation of the weight-stationary systolic GEMM.

Complements the timing model in :mod:`repro.npu.systolic`: executes a GEMM
through the same tile decomposition the scheduler uses — 128x128 weight
tiles held stationary while activation rows stream through — so tests can
verify that the tiling is numerically exact (partial tiles included) and
that fp16 storage with fp32 accumulation behaves like real tensor-core
hardware.
"""

from __future__ import annotations

from math import ceil
from typing import Optional

import numpy as np

from repro.npu.systolic import SystolicConfig


class FunctionalSystolicArray:
    """Numerically executes tiled GEMMs.

    Parameters
    ----------
    config:
        Array geometry (tile sizes follow ``rows`` x ``cols``).
    dtype:
        Storage dtype for weights and activations (fp16 default);
        accumulation is fp32.
    """

    def __init__(self, config: Optional[SystolicConfig] = None,
                 dtype: np.dtype = np.float16) -> None:
        self.config = config or SystolicConfig()
        self.dtype = np.dtype(dtype)
        self.tiles_executed = 0

    def gemm(self, activations: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Compute ``activations @ weights`` tile by tile.

        ``activations`` is ``[m, k]``, ``weights`` is ``[k, n]``; the
        result is fp32 ``[m, n]``.
        """
        if activations.ndim != 2 or weights.ndim != 2:
            raise ValueError("operands must be 2-D")
        m, k = activations.shape
        k2, n = weights.shape
        if k != k2:
            raise ValueError(f"contraction mismatch: {k} vs {k2}")

        a = activations.astype(self.dtype)
        w = weights.astype(self.dtype)
        out = np.zeros((m, n), dtype=np.float32)
        self.tiles_executed = 0

        tile_k = self.config.rows
        tile_n = self.config.cols
        for tk in range(ceil(k / tile_k)):
            k_lo, k_hi = tk * tile_k, min(k, (tk + 1) * tile_k)
            for tn in range(ceil(n / tile_n)):
                n_lo, n_hi = tn * tile_n, min(n, (tn + 1) * tile_n)
                # Weight tile stays stationary; activations stream through.
                w_tile = w[k_lo:k_hi, n_lo:n_hi].astype(np.float32)
                a_panel = a[:, k_lo:k_hi].astype(np.float32)
                out[:, n_lo:n_hi] += a_panel @ w_tile
                self.tiles_executed += 1
        return out


def reference_gemm(activations: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """fp32 reference with the same storage rounding as the array."""
    return (activations.astype(np.float16).astype(np.float32)
            @ weights.astype(np.float16).astype(np.float32))


def functional_decoder_block(hidden: np.ndarray, w_qkv: np.ndarray,
                             w_proj: np.ndarray, w_ffn1: np.ndarray,
                             w_ffn2: np.ndarray,
                             array: Optional[FunctionalSystolicArray] = None
                             ) -> np.ndarray:
    """Run a decoder block's GEMM chain (attention omitted) numerically.

    Used by integration tests to confirm the compiler's GEMM shapes chain
    correctly: QKV -> (attention placeholder: identity on the value slice)
    -> projection -> FFN1 -> GELU -> FFN2, with residuals.
    """
    array = array or FunctionalSystolicArray()
    d_model = hidden.shape[1]
    qkv = array.gemm(hidden, w_qkv)
    value = qkv[:, 2 * d_model:3 * d_model]
    attn_out = array.gemm(value, w_proj)
    x = hidden + attn_out
    inner = array.gemm(x, w_ffn1)
    gelu = 0.5 * inner * (1.0 + np.tanh(
        np.sqrt(2.0 / np.pi) * (inner + 0.044715 * inner ** 3)))
    return x + array.gemm(gelu.astype(np.float32), w_ffn2)
