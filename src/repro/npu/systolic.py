"""Systolic-array GEMM timing model (ONNXim-equivalent tile model).

The NeuPIMs NPU (Table 2) packs 8 systolic arrays of 128x128 MACs at
1 GHz.  GEMMs are decomposed into weight-stationary tiles: a tile holds a
``rows x cols`` weight block while the M activation rows stream through,
costing ``M + rows + cols`` cycles (pipeline fill + drain).  Tiles are
spread across arrays; the overall GEMM is additionally bounded by the
off-chip bandwidth available for streaming weights and activations
(roofline at tile granularity), which is exactly how ONNXim's performance
for these layers behaves at the resolution the paper's experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.model.layers import GemmShape


@dataclass(frozen=True)
class SystolicConfig:
    """One systolic array's geometry and clock."""

    rows: int = 128
    cols: int = 128
    clock_ghz: float = 1.0

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0 or self.clock_ghz <= 0:
            raise ValueError("systolic parameters must be positive")

    @property
    def macs_per_cycle(self) -> int:
        return self.rows * self.cols

    @property
    def peak_flops(self) -> float:
        """Peak FLOP/s of one array (2 FLOPs per MAC)."""
        return 2 * self.macs_per_cycle * self.clock_ghz * 1e9


@dataclass(frozen=True)
class TileSchedule:
    """Tile decomposition of one GEMM on a pool of systolic arrays."""

    gemm: GemmShape
    tiles_k: int
    tiles_n: int
    cycles_per_tile: float
    pipeline_fill: float
    num_arrays: int

    @property
    def total_tiles(self) -> int:
        return self.tiles_k * self.tiles_n

    @property
    def compute_cycles(self) -> float:
        """Cycles with tiles load-balanced over the arrays."""
        rounds = ceil(self.total_tiles / self.num_arrays)
        return rounds * self.cycles_per_tile + self.pipeline_fill


def schedule_gemm(gemm: GemmShape, config: SystolicConfig,
                  num_arrays: int = 8) -> TileSchedule:
    """Build the weight-stationary tile schedule for a GEMM.

    Weight tiles are double-buffered: loading the next tile's weights
    (``rows`` cycles) overlaps streaming the current tile's ``m``
    activation rows, so the steady-state pitch is ``max(m, rows)`` per
    tile.  Small M still pays the full pipeline depth per tile, which is
    why NPUs lose efficiency at small batch — the Figure 13/14 effect.
    The one-time fill/drain (``rows + cols``) is paid once per GEMM.
    """
    if num_arrays <= 0:
        raise ValueError("num_arrays must be positive")
    tiles_k = ceil(gemm.k / config.rows)
    tiles_n = ceil(gemm.n / config.cols)
    cycles_per_tile = max(gemm.m, config.rows)
    return TileSchedule(gemm=gemm, tiles_k=tiles_k, tiles_n=tiles_n,
                        cycles_per_tile=cycles_per_tile,
                        pipeline_fill=config.rows + config.cols,
                        num_arrays=num_arrays)


def gemm_compute_cycles(gemm: GemmShape, config: SystolicConfig,
                        num_arrays: int = 8) -> float:
    """Compute-only cycles of a GEMM on the array pool."""
    return schedule_gemm(gemm, config, num_arrays).compute_cycles


def gemm_efficiency(gemm: GemmShape, config: SystolicConfig,
                    num_arrays: int = 8) -> float:
    """Achieved fraction of peak MACs for the compute-bound execution."""
    cycles = gemm_compute_cycles(gemm, config, num_arrays)
    if cycles <= 0:
        return 0.0
    ideal = gemm.flops / (2 * config.macs_per_cycle * num_arrays)
    return min(1.0, ideal / cycles)
