"""vLLM-style paged KV-cache allocation (paper §2.2).

NeuPIMs adopts vLLM's memory paging for the KV cache: instead of
pre-allocating a max-length region per request, the allocator hands out
fixed-size *blocks* (a block stores ``block_tokens`` tokens' K and V for
all layers of the device's model shard) on demand.  This is what lets the
system run batch sizes of 256-512: capacity follows the *actual* context
lengths rather than the worst case.

The allocator is per PIM channel, since a request's KV cache lives
entirely in its assigned channel's banks.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, List, Optional

from repro.model.spec import ModelSpec


class OutOfMemoryError(RuntimeError):
    """Raised when a channel cannot allocate another KV block."""


@dataclass(frozen=True)
class PagedKvConfig:
    """Paged allocator parameters.

    ``block_tokens`` is vLLM's block size (16 tokens by default).
    ``capacity_bytes`` is the memory the channel reserves for KV cache.
    """

    block_tokens: int = 16
    capacity_bytes: int = 1 << 30

    def __post_init__(self) -> None:
        if self.block_tokens <= 0 or self.capacity_bytes <= 0:
            raise ValueError("block_tokens and capacity_bytes must be positive")


class PagedKvAllocator:
    """Block allocator for one channel's KV cache.

    Parameters
    ----------
    spec:
        Model (shard) whose KV footprint per token sizes the blocks.
    layers_resident:
        Decoder blocks resident on this device (pipeline parallelism
        reduces this); scales per-token bytes.
    """

    def __init__(self, config: PagedKvConfig, spec: ModelSpec,
                 layers_resident: Optional[int] = None
                 ) -> None:
        self.config = config
        self.spec = spec
        layers = spec.num_layers if layers_resident is None else layers_resident
        if layers <= 0:
            raise ValueError("layers_resident must be positive")
        per_token = 2 * spec.d_model * spec.dtype_bytes * layers
        self.block_bytes = per_token * config.block_tokens
        self.total_blocks = config.capacity_bytes // self.block_bytes
        if self.total_blocks <= 0:
            raise ValueError(
                "channel capacity smaller than one KV block; "
                "reduce block_tokens or layers_resident"
            )
        self._free_blocks = int(self.total_blocks)
        self._allocations: Dict[int, int] = {}

    # ------------------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return self._free_blocks

    @property
    def used_blocks(self) -> int:
        return int(self.total_blocks) - self._free_blocks

    def blocks_for(self, tokens: int) -> int:
        """Blocks needed to hold ``tokens`` context tokens."""
        if tokens < 0:
            raise ValueError("tokens must be non-negative")
        return ceil(tokens / self.config.block_tokens) if tokens else 0

    def can_allocate(self, request_id: int, tokens: int) -> bool:
        """Whether growing ``request_id`` to ``tokens`` context would fit."""
        current = self._allocations.get(request_id, 0)
        needed = self.blocks_for(tokens) - current
        return needed <= self._free_blocks

    def allocate(self, request_id: int, tokens: int) -> int:
        """Grow the request's allocation to cover ``tokens`` context tokens.

        Returns the number of newly allocated blocks.  Allocation is
        monotonic per request (contexts only grow until release).
        """
        current = self._allocations.get(request_id, 0)
        target = self.blocks_for(tokens)
        if target < current:
            raise ValueError(
                f"request {request_id}: shrinking allocation "
                f"({current} -> {target} blocks) is not supported; release first"
            )
        needed = target - current
        if needed > self._free_blocks:
            raise OutOfMemoryError(
                f"request {request_id}: need {needed} blocks, "
                f"only {self._free_blocks} free"
            )
        self._free_blocks -= needed
        self._allocations[request_id] = target
        return needed

    def bulk_reserve(self, blocks: int) -> None:
        """Reserve ``blocks`` free blocks as one batched operation.

        Used by the grouped serving engine to commit a whole equivalence
        class's (or window's) KV growth at once; the per-request
        ``_allocations`` entries are fixed up later via
        :meth:`set_allocation` when the engine synchronizes at a batch
        boundary, restoring the ``free == total - sum(allocations)``
        invariant.
        """
        if blocks < 0:
            raise ValueError("blocks must be non-negative")
        if blocks > self._free_blocks:
            raise OutOfMemoryError(
                f"bulk reserve of {blocks} blocks exceeds "
                f"{self._free_blocks} free"
            )
        self._free_blocks -= blocks

    def set_allocation(self, request_id: int, blocks: int) -> None:
        """Record a request's block count without touching the free pool.

        Counterpart of :meth:`bulk_reserve`: the grouped engine reserves
        blocks in bulk mid-window and writes the per-request ledger back
        here at the boundary, so a later :meth:`release` frees the exact
        amount.  Never call this outside that pairing — it intentionally
        does not adjust ``free_blocks``.
        """
        if blocks < 0:
            raise ValueError("blocks must be non-negative")
        self._allocations[request_id] = blocks

    def ledger_consistent(self) -> bool:
        """Whether ``free == total - sum(allocations)`` holds (tests)."""
        allocated = sum(self._allocations.values())
        return self._free_blocks == int(self.total_blocks) - allocated

    def release(self, request_id: int) -> int:
        """Free all blocks of a finished request; returns blocks freed."""
        blocks = self._allocations.pop(request_id, 0)
        self._free_blocks += blocks
        return blocks

    def utilization(self) -> float:
        """Fraction of capacity currently allocated."""
        if self.total_blocks == 0:
            return 0.0
        return self.used_blocks / self.total_blocks

    def resident_requests(self) -> List[int]:
        """Request ids with live allocations."""
        return sorted(self._allocations)


def channel_allocators(config: PagedKvConfig, spec: ModelSpec,
                       num_channels: int,
                       layers_resident: Optional[int] = None
                       ) -> List[PagedKvAllocator]:
    """One :class:`PagedKvAllocator` per PIM channel.

    A request's KV cache lives entirely in its assigned channel's banks,
    so every serving stack needs one allocator per channel of the
    placement pool (``device.channel_pool``).  This is the single
    fan-out helper used by :class:`repro.api.session.Session` and the
    examples instead of hand-built list comprehensions.
    """
    if num_channels <= 0:
        raise ValueError("num_channels must be positive")
    return [PagedKvAllocator(config, spec, layers_resident=layers_resident)
            for _ in range(num_channels)]


def max_batch_without_paging(config: PagedKvConfig, spec: ModelSpec,
                             max_seq_len: int,
                             layers_resident: Optional[int] = None
                             ) -> int:
    """Batch size a *non-paged* allocator supports (worst-case reservation).

    Without paging every request reserves ``max_seq_len`` tokens up front;
    this is the baseline that vLLM-style paging improves on, and the test
    suite asserts paging admits strictly larger batches for realistic
    length distributions.
    """
    allocator = PagedKvAllocator(config, spec, layers_resident)
    blocks_per_request = allocator.blocks_for(max_seq_len)
    return int(allocator.total_blocks // blocks_per_request)
