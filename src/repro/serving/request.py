"""Inference request lifecycle.

Requests arrive with an input (prompt) length and a target output length
(known from the dataset trace).  A request moves through:

``WAITING`` (queued in the request pool) -> ``PREFILL`` (summarization
phase on the standalone NPUs) -> ``RUNNING`` (generation phase on the
NeuPIMs device, one token per iteration) -> ``DONE``.

The paper's Figure 7 request-pool table tracks exactly these fields:
request id, input length, generated-token count, assigned PIM channel and
status.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


class RequestStatus(Enum):
    WAITING = "wait"
    PREFILL = "prefill"
    RUNNING = "run"
    DONE = "done"


@dataclass
class InferenceRequest:
    """One LLM inference request.

    Attributes
    ----------
    request_id:
        Unique id.
    input_len:
        Prompt length in tokens.
    output_len:
        Number of tokens to generate before completion.
    generated:
        Tokens generated so far.
    channel:
        PIM channel holding this request's KV cache (assigned by the
        greedy min-load bin packing algorithm), or ``None`` if unassigned.
    arrival_time:
        Arrival timestamp in cycles (streaming arrivals).
    """

    request_id: int
    input_len: int
    output_len: int
    generated: int = 0
    status: RequestStatus = RequestStatus.WAITING
    channel: Optional[int] = None
    arrival_time: float = 0.0
    sub_batch: Optional[int] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.input_len <= 0:
            raise ValueError("input_len must be positive")
        if self.output_len <= 0:
            raise ValueError("output_len must be positive")
        if self.generated < 0 or self.generated > self.output_len:
            raise ValueError("generated out of range")

    # ------------------------------------------------------------------
    # Status observation.  The request pool indexes requests by status,
    # but transitions (begin_generation, advance, preemption demotions)
    # happen directly on request objects all over the serving stack; this
    # hook lets the owning pool keep its per-status buckets exact without
    # rescanning every request per iteration.
    # ------------------------------------------------------------------

    def __setattr__(self, name: str, value: object) -> None:
        if name == "status":
            old = self.__dict__.get("status")
            self.__dict__["status"] = value
            if old is not value:
                observer = self.__dict__.get("_status_observer")
                if observer is not None:
                    observer(self, old, value)
            return
        self.__dict__[name] = value

    def __getstate__(self) -> dict:
        # The observer points at a live pool; never serialize it.
        state = self.__dict__.copy()
        state.pop("_status_observer", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @property
    def seq_len(self) -> int:
        """Current context length (KV-cache entries): prompt + generated."""
        return self.input_len + self.generated

    @property
    def is_finished(self) -> bool:
        return self.generated >= self.output_len

    def advance(self, tokens: int = 1) -> None:
        """Record ``tokens`` newly generated tokens."""
        if tokens <= 0:
            raise ValueError("tokens must be positive")
        if self.is_finished:
            raise RuntimeError(f"request {self.request_id} already finished")
        self.generated = min(self.output_len, self.generated + tokens)
        if self.is_finished:
            self.status = RequestStatus.DONE

    def begin_generation(self, channel: int) -> None:
        """Transition into the generation phase on ``channel``."""
        self.status = RequestStatus.RUNNING
        self.channel = channel
