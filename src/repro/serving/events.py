"""Typed events the serving loop publishes (the streaming taxonomy).

The iteration-level scheduler emits these through a
:class:`~repro.sim.events.EventBus` when one is attached *and* has
subscribers (zero-overhead-when-empty; see :mod:`repro.sim.events`).
``Session.stream()`` turns them into a generator; live policies (SLO
monitors, admission throttles) subscribe directly.

All events are frozen dataclasses carrying ``time`` — the scheduler
clock in cycles at emission.  The taxonomy:

* :class:`RequestAdmitted` / :class:`RequestRetired` — pool transitions
  at iteration boundaries.
* :class:`IterationCompleted` — one executed generation iteration, with
  its full :class:`~repro.serving.scheduler.IterationRecord`.  Emitted
  on both the per-request path and the grouped fast path (one event per
  committed iteration), so subscribers see an identical stream either
  way.
* :class:`KvPressure` — a channel could not supply the KV blocks an
  iteration needed (grouped-window boundary or mid-generation OOM).
* :class:`WindowCommitted` — a group-commit steady-state window was
  synchronized back to per-request state (grouped engine only).
* :class:`CountersSampled` — one iteration's typed counter vector
  (:mod:`repro.counters` taxonomy), emitted when a ``counters``
  component is materialized on the session; carries canonical sorted
  pairs so subscribers can fold them into a
  :class:`~repro.counters.report.CounterReport` directly.
* :class:`FaultInjected` / :class:`NodeDegraded` /
  :class:`RequestTimedOut` / :class:`RequestRetried` /
  :class:`RequestShed` — the fault/recovery taxonomy emitted when a
  :class:`~repro.faults.resilience.ResilienceRuntime` is attached
  (``faults`` component or resilience knobs in the spec).
* :class:`NodeMarkedDown` / :class:`NodeRecovered` /
  :class:`RequestFailedOver` / :class:`FleetShedding` — the fleet
  taxonomy the cluster tier's :class:`~repro.cluster.router.Router`
  emits on its own bus (health transitions, failover re-dispatch,
  watermark backpressure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.serving.scheduler import IterationRecord


@dataclass(frozen=True)
class ServingEvent:
    """Base class: every serving event is stamped with the clock."""

    time: float


@dataclass(frozen=True)
class RequestAdmitted(ServingEvent):
    """A waiting request entered the generation batch."""

    request_id: int
    channel: int


@dataclass(frozen=True)
class RequestRetired(ServingEvent):
    """A request left the pool and freed its KV blocks.

    ``status`` is the terminal outcome: ``"completed"`` (the default,
    so pre-resilience consumers and pinned records are unchanged),
    ``"timed_out"``, ``"shed"`` or ``"aborted"``.
    """

    request_id: int
    status: str = "completed"


@dataclass(frozen=True)
class IterationCompleted(ServingEvent):
    """One generation iteration executed (``time`` is its end time)."""

    record: "IterationRecord"


@dataclass(frozen=True)
class KvPressure(ServingEvent):
    """A channel lacked free KV blocks for an iteration's growth."""

    channel: int
    needed_blocks: int
    free_blocks: int


@dataclass(frozen=True)
class WindowCommitted(ServingEvent):
    """A grouped steady-state window synchronized (``iterations`` deep)."""

    iterations: int


@dataclass(frozen=True)
class CountersSampled(ServingEvent):
    """One device iteration's typed counter vector was charged.

    ``counters`` holds canonical ``(name, value)`` pairs sorted by name
    (the :data:`repro.counters.report.COUNTER_NAMES` taxonomy), so the
    event is hashable like every other serving event and folds into a
    :class:`~repro.counters.report.CounterReport` without re-sorting.
    """

    counters: Tuple[Tuple[str, float], ...]


@dataclass(frozen=True)
class FaultInjected(ServingEvent):
    """A planned fault activated (``kind`` is the fault class name)."""

    kind: str
    channel: Optional[int] = None


@dataclass(frozen=True)
class NodeDegraded(ServingEvent):
    """A channel entered a degradation window (derate and/or stall)."""

    channel: int
    factor: float
    stall_cycles: float


@dataclass(frozen=True)
class RequestTimedOut(ServingEvent):
    """A running request exceeded its deadline (``attempt`` so far)."""

    request_id: int
    attempt: int


@dataclass(frozen=True)
class RequestRetried(ServingEvent):
    """A timed-out/KV-starved request was re-admitted with backoff."""

    request_id: int
    attempt: int
    next_arrival: float


@dataclass(frozen=True)
class RequestShed(ServingEvent):
    """A waiting request was shed after ``waited`` cycles unadmitted."""

    request_id: int
    waited: float


@dataclass(frozen=True)
class NodeMarkedDown(ServingEvent):
    """The router convicted a fleet node after ``failures`` failed probes."""

    node: int
    failures: int


@dataclass(frozen=True)
class NodeRecovered(ServingEvent):
    """A downed node passed its post-cooldown probe and rejoined."""

    node: int
    down_for: float


@dataclass(frozen=True)
class RequestFailedOver(ServingEvent):
    """A request left a downed node and was re-dispatched elsewhere.

    ``to_node`` is ``-1`` while no healthy node exists (the request is
    parked in the router queue and re-dispatched on recovery);
    ``restore_cycles`` is the recompute cost re-basing its arrival.
    """

    request_id: int
    from_node: int
    to_node: int
    restore_cycles: float


@dataclass(frozen=True)
class FleetShedding(ServingEvent):
    """The router shed an arrival: surviving-fleet KV pressure crossed
    the admission watermark (``pressure`` recent events in window)."""

    request_id: int
    pressure: int


__all__ = [
    "CountersSampled",
    "FaultInjected",
    "FleetShedding",
    "IterationCompleted",
    "KvPressure",
    "NodeDegraded",
    "NodeMarkedDown",
    "NodeRecovered",
    "RequestAdmitted",
    "RequestFailedOver",
    "RequestRetired",
    "RequestRetried",
    "RequestShed",
    "RequestTimedOut",
    "ServingEvent",
    "WindowCommitted",
]
