"""Equivalence-class decomposition of decode batches (group-commit engine).

A continuously-batched decode workload collapses into a handful of
request equivalence classes: requests that share ``(channel, seq_len,
remaining_decode)`` are indistinguishable to the iteration latency model
(MHA cost and KV traffic depend on ``seq_len`` and channel placement
only), advance in lockstep (every running request generates one token
per iteration) and finish together (same ``remaining_decode``).  This
module captures that decomposition so the serving stack can do per-class
work instead of per-request work:

* :func:`class_histogram` / :func:`mha_histogram` build the canonical
  sorted ``(channel, seq_len[, remaining]) -> multiplicity`` views that
  :meth:`repro.core.device.NeuPimsDevice.mha_stage_classes` consumes.
  **Both** the per-request path and the grouped path compute iteration
  latencies from these histograms, which is what makes the two paths
  bit-identical by construction (same sums in the same canonical order).
* :class:`DeviceClassPlan` / :class:`SystemClassPlan` freeze a batch's
  class structure — full histogram, Algorithm-3 sub-batch split, pipeline
  micro-batch — at a *batch boundary*.  Between boundaries the structure
  is translation-invariant: advancing the whole batch by one token shifts
  every ``seq_len`` uniformly (:func:`shift_histogram`), so the plan is
  reused with an arithmetic shift instead of being rebuilt (the
  iteration-level analog of ``MemoryController.drain_fast``'s
  translation-invariant replay).
* :class:`GroupedScheduleState` is the scheduler-side live state: the
  class groups with their member lists, the current shift, and the lazy
  synchronization that writes the deferred per-request effects (token
  counts, paged-KV allocations, channel-load contributions, latency
  bookkeeping) back at the next boundary.

A *boundary* is any event that breaks translation invariance: a class
reaching ``remaining == 0``, a waiting request becoming admissible, or a
channel without enough free KV blocks for the batched growth.  The
scheduler then falls back to the per-request path for that iteration —
which, because the arithmetic is shared, produces exactly the record the
grouped path would have — and rebuilds the plan afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Sequence, Tuple)

from repro.serving.request import InferenceRequest, RequestStatus

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.core.binpack import ChannelLoadTracker
    from repro.serving.latency import LatencyTracker
    from repro.serving.paging import PagedKvAllocator

#: Valid values of the serving/scheduler ``grouping`` knob.
GROUPING_MODES = ("auto", "on", "off")

#: Sorted ``(channel, seq_len, count)`` triples — the canonical MHA view.
MhaHistogram = Tuple[Tuple[int, int, int], ...]

#: Full class key ``(channel, seq_len, remaining_decode)``.
ClassKey = Tuple[int, int, int]


def request_class_key(request: InferenceRequest) -> ClassKey:
    """The request's equivalence class ``(channel, seq_len, remaining)``."""
    channel = request.channel if request.channel is not None else 0
    return (channel, request.seq_len,
            request.output_len - request.generated)


def mha_histogram(requests: Sequence[InferenceRequest]) -> MhaHistogram:
    """Canonical ``(channel, seq_len) -> count`` histogram of a batch.

    The tuple is sorted by ``(channel, seq_len)``; every latency
    computation that consumes it accumulates in this order, so any two
    batches with equal histograms produce bit-identical timings however
    the histogram was obtained (per-request scan or incremental classes).
    """
    counts: Dict[Tuple[int, int], int] = {}
    for request in requests:
        channel = request.channel if request.channel is not None else 0
        key = (channel, request.seq_len)
        counts[key] = counts.get(key, 0) + 1
    return tuple((channel, seq_len, count)
                 for (channel, seq_len), count in sorted(counts.items()))


def class_histogram(requests: Sequence[InferenceRequest]
                    ) -> Dict[ClassKey, int]:
    """Multiplicity of every ``(channel, seq_len, remaining)`` class."""
    counts: Dict[ClassKey, int] = {}
    for request in requests:
        key = request_class_key(request)
        counts[key] = counts.get(key, 0) + 1
    return counts


def shift_histogram(hist: MhaHistogram, shift: int) -> MhaHistogram:
    """The histogram after every request generated ``shift`` more tokens.

    A uniform shift preserves the canonical ``(channel, seq_len)`` sort
    order, so the result is built in one pass.
    """
    if shift == 0:
        return hist
    return tuple([(channel, seq_len + shift, count)
                  for channel, seq_len, count in hist])


# ----------------------------------------------------------------------
# Frozen per-boundary plans.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SubBatchClasses:
    """One Algorithm-3 sub-batch as (size, histogram) at shift 0."""

    size: int
    hist: MhaHistogram


@dataclass(frozen=True)
class DeviceClassPlan:
    """A device batch's class structure, frozen at a batch boundary.

    ``hist`` (and the sub-batch histograms, when sub-batch interleaving
    applies) are stored at shift 0; :func:`shift_histogram` derives the
    view for any later iteration of the same window.
    """

    batch_size: int
    hist: MhaHistogram
    #: Algorithm-3 split (``None`` when SBI is off or the batch is < 2).
    split: Optional[Tuple[SubBatchClasses, SubBatchClasses]] = None


@dataclass(frozen=True)
class SystemClassPlan:
    """A multi-device system's plan: the leading micro-batch's classes."""

    inner: DeviceClassPlan
    micro_size: int


class GroupedExecutor:
    """Pairs a plan builder with a plan runner for the scheduler.

    ``prepare(batch)`` freezes the class structure of an id-ordered
    running batch (assigning channels to any unplaced request, exactly as
    the per-request path would); ``run(plan, shift)`` returns the
    iteration latency for the batch after ``shift`` uniform decode steps.
    The session wraps ``run`` so busy-time/byte accounting accumulates
    identically to the per-request executor.
    """

    def __init__(self, prepare: Callable[[Sequence[InferenceRequest]], Any],
                 run: Callable[[Any, int], float]) -> None:
        self.prepare = prepare
        self.run = run


# ----------------------------------------------------------------------
# Scheduler-side live state.
# ----------------------------------------------------------------------

@dataclass
class _ClassGroup:
    """One equivalence class and its members (id-ordered)."""

    channel: int
    seq_len: int     #: at shift 0
    remaining: int   #: at shift 0
    members: List[InferenceRequest]


class GroupedScheduleState:
    """Class decomposition of the running batch between boundaries.

    Member request objects are **not** touched while iterations commit;
    the state tracks the accumulated ``shift`` and :meth:`sync` writes
    every deferred effect back in one pass — generated-token counts,
    ``DONE`` transitions (which fire the pool's status observers), paged
    KV allocation bookkeeping, channel-load tracker contributions and
    per-request latency completions.
    """

    def __init__(self, batch: Sequence[InferenceRequest], plan: Any) -> None:
        self.batch = list(batch)
        self.plan = plan
        self.shift = 0
        groups: Dict[ClassKey, _ClassGroup] = {}
        for request in self.batch:
            key = request_class_key(request)
            group = groups.get(key)
            if group is None:
                groups[key] = _ClassGroup(key[0], key[1], key[2], [request])
            else:
                group.members.append(request)
        self._groups = [groups[key] for key in sorted(groups)]
        self._min_remaining = min(g.remaining for g in self._groups)
        #: members that have not produced a first token yet (latency
        #: bookkeeping parity with the per-request executor wrapper)
        self._fresh: List[InferenceRequest] = []
        #: lazily built block-crossing schedule (see :meth:`block_need`)
        self._block_plan: Optional[Dict[Tuple[int, int],
                                        List[Tuple[int, int]]]] = None
        self._block_sizes: List[int] = []

    # -- structure ------------------------------------------------------

    @property
    def batch_size(self) -> int:
        return len(self.batch)

    @property
    def num_classes(self) -> int:
        return len(self._groups)

    def steps_until_finish(self) -> int:
        """Iterations until the shortest-remaining class completes."""
        return self._min_remaining - self.shift

    def advance(self) -> None:
        """Commit one uniform decode step (all requests, one token)."""
        self.shift += 1

    # -- paged-KV batched growth ----------------------------------------

    def block_need(self, allocators: Sequence["PagedKvAllocator"]
                   ) -> Dict[int, int]:
        """New KV blocks per channel for the *next* uniform step.

        Growing a context from ``s`` to ``s + 1`` tokens adds exactly one
        block iff ``s`` is a block-size multiple (``ceil`` difference), so
        a class only contributes on its block-crossing steps — those with
        ``shift = -seq_len (mod block_tokens)``.  The crossing schedule
        is precomputed per class, making the per-step check O(1) on
        non-crossing steps.
        """
        if self._block_plan is None:
            plan: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
            sizes = set()
            for group in self._groups:
                block_tokens = \
                    allocators[group.channel].config.block_tokens
                sizes.add(block_tokens)
                residue = (-group.seq_len) % block_tokens
                plan.setdefault((block_tokens, residue), []).append(
                    (group.channel, len(group.members)))
            self._block_plan = plan
            self._block_sizes = sorted(sizes)
        need: Dict[int, int] = {}
        for block_tokens in self._block_sizes:
            crossing = self._block_plan.get(
                (block_tokens, self.shift % block_tokens))
            if crossing:
                for channel, count in crossing:
                    need[channel] = need.get(channel, 0) + count
        return need

    # -- latency bookkeeping --------------------------------------------

    def collect_fresh(self, tracker: Optional["LatencyTracker"]) -> None:
        """Find members the latency tracker has not seen run yet."""
        if tracker is None:
            return
        self._fresh = [r for r in self.batch
                       if not tracker.has_first_token(r.request_id)]

    def flush_fresh(self, tracker: Optional["LatencyTracker"],
                    end: float) -> None:
        """Record first-token times after the window's first iteration."""
        if tracker is None or not self._fresh:
            return
        for request in self._fresh:
            tracker.observe_running(request, end)
        self._fresh = []

    # -- boundary synchronization ---------------------------------------

    def sync(self, allocators: Optional[Sequence["PagedKvAllocator"]],
             load_tracker: Optional["ChannelLoadTracker"],
             latency_tracker: Optional["LatencyTracker"],
             clock_end: float) -> None:
        """Write all deferred per-request effects back to the live stack.

        Safe to call at any shift (``shift == 0`` is a no-op apart from
        latency completions, which the per-request executor wrapper would
        have refreshed every iteration anyway).
        """
        shift = self.shift
        for group in self._groups:
            seq_len = group.seq_len + shift
            finished = group.remaining - shift == 0
            blocks = (allocators[group.channel].blocks_for(seq_len)
                      if allocators is not None else 0)
            for request in group.members:
                if shift:
                    request.generated += shift
                    if allocators is not None:
                        allocators[group.channel].set_allocation(
                            request.request_id, blocks)
                    if load_tracker is not None:
                        # Mirrors the per-request path's per-iteration
                        # ``tracker.update`` (including adoption of
                        # pre-warmed requests it has never seen).
                        load_tracker.sync_member(request.request_id,
                                                 group.channel, seq_len)
                if (latency_tracker is not None and latency_tracker
                        .has_first_token(request.request_id)):
                    latency_tracker.note_completion(request.request_id,
                                                    clock_end)
                if finished:
                    # Fires the pool's status observer (bucket move).
                    request.status = RequestStatus.DONE
        self.shift = 0
        self._min_remaining = 0  # state is spent; callers rebuild
