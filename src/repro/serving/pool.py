"""Request pool table (paper Figure 7, component 3).

The NeuPIMs scheduler keeps arriving requests in a pool table recording
request id, input length, generated-token count, assigned channel and
status.  At every iteration boundary the scheduler admits waiting requests
into the running batch (iteration-level scheduling, per Orca) and retires
finished ones.

The pool indexes requests **by status** so the per-iteration accessors
(`waiting` / `running` / `finished`) scan only their own bucket instead of
the whole table.  Status transitions happen on request objects all over
the serving stack (admission, token advance, preemption demotions); the
pool installs a status observer on every submitted request, so buckets
stay exact without per-iteration rescans, and sorted views are cached
until their bucket actually changes.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, Optional

from repro.serving.grouping import ClassKey, class_histogram
from repro.serving.request import InferenceRequest, RequestStatus


class RequestPool:
    """The request pool table."""

    def __init__(self) -> None:
        self._requests: Dict[int, InferenceRequest] = {}
        self._buckets: Dict[RequestStatus, Dict[int, InferenceRequest]] = {
            status: {} for status in RequestStatus
        }
        #: per-status cached sorted views, dropped on bucket mutation
        self._sorted: Dict[RequestStatus, Optional[List[InferenceRequest]]] = {
            status: None for status in RequestStatus
        }
        #: arrival times aligned with the sorted WAITING view (for the
        #: arrived-by-``now`` prefix cut)
        self._waiting_arrivals: List[float] = []

    # ------------------------------------------------------------------
    # Bucket maintenance.
    # ------------------------------------------------------------------

    def _observe_status(self, request: InferenceRequest,
                        old: Optional[RequestStatus],
                        new: RequestStatus) -> None:
        if self._requests.get(request.request_id) is not request:
            return  # stale observer (request re-submitted elsewhere)
        if old is not None:
            self._buckets[old].pop(request.request_id, None)
            self._sorted[old] = None
        self._buckets[new][request.request_id] = request
        self._sorted[new] = None

    def _drop(self, request: InferenceRequest) -> None:
        del self._requests[request.request_id]
        self._buckets[request.status].pop(request.request_id, None)
        self._sorted[request.status] = None
        observer = request.__dict__.get("_status_observer")
        if getattr(observer, "__self__", None) is self:
            del request.__dict__["_status_observer"]

    def _bucket_sorted(self, status: RequestStatus) -> List[InferenceRequest]:
        """The bucket ordered by request id, cached until it changes."""
        view = self._sorted[status]
        if view is None:
            bucket = self._buckets[status]
            view = [bucket[rid] for rid in sorted(bucket)]
            self._sorted[status] = view
            if status is RequestStatus.WAITING:
                # Waiting requests sort by (arrival_time, id); re-sort the
                # id-ordered view (stable) and remember the arrival keys.
                view.sort(key=lambda r: r.arrival_time)
                self._waiting_arrivals = [r.arrival_time for r in view]
        return view

    # ------------------------------------------------------------------
    # Submission and lookup.
    # ------------------------------------------------------------------

    def submit(self, request: InferenceRequest) -> None:
        """Add a new request to the pool.

        A request may belong to at most one pool at a time: accepting a
        request that still carries another pool's status observer would
        silently orphan that pool's buckets (its observer gets replaced,
        so later transitions never reach it).  Evict or retire first.
        """
        if request.request_id in self._requests:
            raise ValueError(f"duplicate request id {request.request_id}")
        observer = request.__dict__.get("_status_observer")
        if observer is not None and getattr(observer, "__self__",
                                            None) is not self:
            raise ValueError(
                f"request {request.request_id} is still tracked by another "
                "pool; evict it there before re-submitting"
            )
        self._requests[request.request_id] = request
        self._buckets[request.status][request.request_id] = request
        self._sorted[request.status] = None
        request.__dict__["_status_observer"] = self._observe_status

    def submit_all(self, requests: Iterable[InferenceRequest]) -> None:
        """Add several requests to the pool."""
        for request in requests:
            self.submit(request)

    def get(self, request_id: int) -> InferenceRequest:
        """Look up one request by id."""
        return self._requests[request_id]

    # ------------------------------------------------------------------
    # Status views.
    # ------------------------------------------------------------------

    def waiting(self, now: float = float("inf")) -> List[InferenceRequest]:
        """Waiting requests that have arrived by ``now``, FIFO by arrival."""
        view = self._bucket_sorted(RequestStatus.WAITING)
        if not view:
            return []
        if now >= self._waiting_arrivals[-1]:
            return list(view)
        return view[:bisect_right(self._waiting_arrivals, now)]

    def waiting_count(self) -> int:
        """Number of waiting requests (no scan, no sort)."""
        return len(self._buckets[RequestStatus.WAITING])

    def has_waiting_arrived(self, now: float) -> bool:
        """Whether any waiting request has arrived by ``now`` (O(1) after
        the cached arrival-sorted view is built)."""
        view = self._bucket_sorted(RequestStatus.WAITING)
        return bool(view) and self._waiting_arrivals[0] <= now

    def running(self) -> List[InferenceRequest]:
        """Requests currently in the generation batch."""
        return list(self._bucket_sorted(RequestStatus.RUNNING))

    def running_count(self) -> int:
        """Size of the generation batch (no scan, no sort)."""
        return len(self._buckets[RequestStatus.RUNNING])

    def finished(self) -> List[InferenceRequest]:
        """Completed requests still present in the pool."""
        return list(self._bucket_sorted(RequestStatus.DONE))

    def has_finished(self) -> bool:
        """Whether any request awaits retirement (no scan)."""
        return bool(self._buckets[RequestStatus.DONE])

    def retire_finished(self) -> List[InferenceRequest]:
        """Remove and return finished requests (iteration boundary)."""
        done = self.finished()
        for request in done:
            self._drop(request)
        return done

    def evict(self, request_id: int) -> InferenceRequest:
        """Remove a request in any status, detaching its observer.

        This is the supported way to hand a request to another pool (or
        drop it entirely, e.g. preempting to a different device's pool):
        after eviction the request carries no stale callback, so its
        later status transitions cannot corrupt this pool's buckets.
        """
        request = self._requests.get(request_id)
        if request is None:
            raise KeyError(f"unknown request id {request_id}")
        self._drop(request)
        return request

    def class_histogram(self, status: RequestStatus = RequestStatus.RUNNING
                        ) -> Dict[ClassKey, int]:
        """Equivalence classes of one status bucket, with multiplicities.

        Keys are ``(channel, seq_len, remaining_decode)`` — the grouping
        the serving engine and Algorithm-2 admission consume (requests in
        one class are indistinguishable to the iteration latency model
        and finish together).
        """
        return class_histogram(list(self._buckets[status].values()))

    def __len__(self) -> int:
        return len(self._requests)

    def __contains__(self, request_id: int) -> bool:
        return request_id in self._requests

    def channel_occupancy(self, num_channels: int) -> List[int]:
        """Running-request count per channel (for the Figure 7 table view)."""
        counts = [0] * num_channels
        for request in self._buckets[RequestStatus.RUNNING].values():
            if request.channel is not None:
                counts[request.channel] += 1
        return counts

    def format_table(self, limit: Optional[int] = None) -> str:
        """Render the pool as the paper's table (for examples/debugging).

        An empty pool renders as the header row alone; ``limit`` caps
        the number of rows and must be non-negative.
        """
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative")
        rows = ["ReqID  InLen  Gen  Chnl  Status"]
        entries = sorted(self._requests.values(), key=lambda r: r.request_id)
        if limit is not None:
            entries = entries[:limit]
        for r in entries:
            chnl = "-" if r.channel is None else str(r.channel)
            rows.append(
                f"{r.request_id:>5}  {r.input_len:>5}  {r.generated:>3}  "
                f"{chnl:>4}  {r.status.value}"
            )
        return "\n".join(rows)
