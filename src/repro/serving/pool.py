"""Request pool table (paper Figure 7, component 3).

The NeuPIMs scheduler keeps arriving requests in a pool table recording
request id, input length, generated-token count, assigned channel and
status.  At every iteration boundary the scheduler admits waiting requests
into the running batch (iteration-level scheduling, per Orca) and retires
finished ones.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.serving.request import InferenceRequest, RequestStatus


class RequestPool:
    """The request pool table."""

    def __init__(self) -> None:
        self._requests: Dict[int, InferenceRequest] = {}

    def submit(self, request: InferenceRequest) -> None:
        """Add a new request to the pool."""
        if request.request_id in self._requests:
            raise ValueError(f"duplicate request id {request.request_id}")
        self._requests[request.request_id] = request

    def submit_all(self, requests: Iterable[InferenceRequest]) -> None:
        """Add several requests to the pool."""
        for request in requests:
            self.submit(request)

    def get(self, request_id: int) -> InferenceRequest:
        """Look up one request by id."""
        return self._requests[request_id]

    def waiting(self, now: float = float("inf")) -> List[InferenceRequest]:
        """Waiting requests that have arrived by ``now``, FIFO by arrival."""
        ready = [
            r for r in self._requests.values()
            if r.status is RequestStatus.WAITING and r.arrival_time <= now
        ]
        return sorted(ready, key=lambda r: (r.arrival_time, r.request_id))

    def running(self) -> List[InferenceRequest]:
        """Requests currently in the generation batch."""
        return sorted(
            (r for r in self._requests.values()
             if r.status is RequestStatus.RUNNING),
            key=lambda r: r.request_id,
        )

    def finished(self) -> List[InferenceRequest]:
        """Completed requests still present in the pool."""
        return sorted(
            (r for r in self._requests.values()
             if r.status is RequestStatus.DONE),
            key=lambda r: r.request_id,
        )

    def retire_finished(self) -> List[InferenceRequest]:
        """Remove and return finished requests (iteration boundary)."""
        done = self.finished()
        for request in done:
            del self._requests[request.request_id]
        return done

    def __len__(self) -> int:
        return len(self._requests)

    def __contains__(self, request_id: int) -> bool:
        return request_id in self._requests

    def channel_occupancy(self, num_channels: int) -> List[int]:
        """Running-request count per channel (for the Figure 7 table view)."""
        counts = [0] * num_channels
        for request in self.running():
            if request.channel is not None:
                counts[request.channel] += 1
        return counts

    def format_table(self, limit: Optional[int] = None) -> str:
        """Render the pool as the paper's table (for examples/debugging)."""
        rows = ["ReqID  InLen  Gen  Chnl  Status"]
        entries = sorted(self._requests.values(), key=lambda r: r.request_id)
        if limit is not None:
            entries = entries[:limit]
        for r in entries:
            chnl = "-" if r.channel is None else str(r.channel)
            rows.append(
                f"{r.request_id:>5}  {r.input_len:>5}  {r.generated:>3}  "
                f"{chnl:>4}  {r.status.value}"
            )
        return "\n".join(rows)
