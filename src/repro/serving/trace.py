"""Synthetic dataset traces (ShareGPT / Alpaca sequence-length models).

The paper samples input/output sequence lengths from the ShareGPT and
Alpaca datasets; only the length distributions matter to the simulator.
We model them as clipped log-normal distributions matched to the published
means (ShareGPT: 80 in / 296 out; Alpaca: 12 in / 56 out) with the heavy
right tail characteristic of conversational data — the tail is what makes
channel load balancing (Algorithm 2) matter.

The paper's workload methodology (§8.1) warms up an inference batch so it
contains requests at random stages of their generation, then measures
steady-state throughput over sampled batches; :func:`warmed_batch`
implements that warm-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.serving.request import InferenceRequest, RequestStatus


@dataclass(frozen=True)
class LengthDistribution:
    """A clipped log-normal over sequence lengths with a target mean."""

    mean: float
    sigma: float
    min_len: int = 1
    max_len: int = 4096

    def __post_init__(self) -> None:
        if self.mean <= 0 or self.sigma <= 0:
            raise ValueError("mean and sigma must be positive")
        if not self.min_len <= self.max_len:
            raise ValueError("min_len must not exceed max_len")

    @property
    def mu(self) -> float:
        """Underlying normal's location for the target arithmetic mean."""
        return float(np.log(self.mean) - 0.5 * self.sigma ** 2)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` integer lengths."""
        raw = rng.lognormal(self.mu, self.sigma, size=n)
        return np.clip(np.rint(raw), self.min_len, self.max_len).astype(int)


@dataclass(frozen=True)
class DatasetTrace:
    """Input/output length model for one dataset."""

    name: str
    input_dist: LengthDistribution
    output_dist: LengthDistribution

    def sample_pairs(self, rng: np.random.Generator,
                     n: int) -> List[Tuple[int, int]]:
        """Draw ``n`` (input_len, output_len) pairs."""
        inputs = self.input_dist.sample(rng, n)
        outputs = self.output_dist.sample(rng, n)
        return list(zip(inputs.tolist(), outputs.tolist()))


#: ShareGPT: conversational, long outputs (mean input 80, output 296).
SHAREGPT = DatasetTrace(
    name="sharegpt",
    input_dist=LengthDistribution(mean=80.0, sigma=0.9),
    output_dist=LengthDistribution(mean=296.0, sigma=0.8),
)

#: Alpaca: instruction-following, short sequences (mean input 12, output 56).
ALPACA = DatasetTrace(
    name="alpaca",
    input_dist=LengthDistribution(mean=12.0, sigma=0.7),
    output_dist=LengthDistribution(mean=56.0, sigma=0.7),
)

DATASETS = {trace.name: trace for trace in (SHAREGPT, ALPACA)}


def get_dataset(name: str) -> DatasetTrace:
    """Look up a dataset trace by name."""
    key = name.lower()
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    return DATASETS[key]


def warmed_batch(trace: DatasetTrace, batch_size: int, seed: int,
                 start_id: int = 0) -> List[InferenceRequest]:
    """Synthesize a warmed-up generation-phase batch (paper §8.1).

    Each request draws its lengths from the trace and is placed at a
    uniformly random point of its generation progress, approximating the
    steady state of an iteration-level-scheduled serving system where
    requests join and leave continuously.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    rng = np.random.default_rng(seed)
    pairs = trace.sample_pairs(rng, batch_size)
    requests: List[InferenceRequest] = []
    for offset, (input_len, output_len) in enumerate(pairs):
        progress = int(rng.integers(0, output_len))
        request = InferenceRequest(
            request_id=start_id + offset,
            input_len=input_len,
            output_len=output_len,
            generated=min(progress, output_len - 1),
            status=RequestStatus.RUNNING,
        )
        requests.append(request)
    return requests


def sample_batches(trace: DatasetTrace, batch_size: int, num_batches: int,
                   seed: int = 0) -> List[List[InferenceRequest]]:
    """The paper's "10 sampled batches" methodology."""
    return [
        warmed_batch(trace, batch_size, seed=seed * 1009 + i,
                     start_id=i * batch_size)
        for i in range(num_batches)
    ]


def poisson_arrivals(trace: DatasetTrace, rate_per_kcycle: float,
                     horizon_cycles: float, seed: int = 0,
                     start_id: int = 0) -> List[InferenceRequest]:
    """Streaming arrivals for the serving-system examples.

    Requests arrive as a Poisson process with ``rate_per_kcycle``
    arrivals per 1000 cycles over ``horizon_cycles``.
    """
    if rate_per_kcycle <= 0 or horizon_cycles <= 0:
        raise ValueError("rate and horizon must be positive")
    rng = np.random.default_rng(seed)
    requests: List[InferenceRequest] = []
    t = 0.0
    idx = 0
    while True:
        t += rng.exponential(1000.0 / rate_per_kcycle)
        if t >= horizon_cycles:
            break
        input_len, output_len = trace.sample_pairs(rng, 1)[0]
        requests.append(InferenceRequest(
            request_id=start_id + idx,
            input_len=input_len,
            output_len=output_len,
            arrival_time=t,
        ))
        idx += 1
    return requests
