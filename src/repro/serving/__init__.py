"""Inference-serving substrate: requests, pool, paging, traces, scheduler."""

from repro.serving.paging import (
    OutOfMemoryError,
    PagedKvAllocator,
    PagedKvConfig,
    channel_allocators,
    max_batch_without_paging,
)
from repro.serving.grouping import (
    GROUPING_MODES,
    DeviceClassPlan,
    GroupedExecutor,
    GroupedScheduleState,
    SystemClassPlan,
    class_histogram,
    mha_histogram,
    shift_histogram,
)
from repro.serving.events import (
    FaultInjected,
    IterationCompleted,
    KvPressure,
    NodeDegraded,
    RequestAdmitted,
    RequestRetired,
    RequestRetried,
    RequestShed,
    RequestTimedOut,
    ServingEvent,
    WindowCommitted,
)
from repro.serving.pool import RequestPool
from repro.serving.request import InferenceRequest, RequestStatus
from repro.serving.scheduler import (
    IterationRecord,
    IterationScheduler,
    ServingStats,
)
from repro.serving.trace import (
    ALPACA,
    DATASETS,
    SHAREGPT,
    DatasetTrace,
    LengthDistribution,
    get_dataset,
    poisson_arrivals,
    sample_batches,
    warmed_batch,
)

from repro.serving.latency import (
    LatencyReport,
    LatencyTracker,
    RequestLatency,
    percentile,
)

from repro.serving.preemption import (
    PreemptingAllocatorPool,
    PreemptionCosts,
    RestorePolicy,
)

__all__ = [
    "OutOfMemoryError",
    "PagedKvAllocator",
    "PagedKvConfig",
    "channel_allocators",
    "max_batch_without_paging",
    "DeviceClassPlan",
    "GROUPING_MODES",
    "GroupedExecutor",
    "GroupedScheduleState",
    "SystemClassPlan",
    "class_histogram",
    "mha_histogram",
    "shift_histogram",
    "FaultInjected",
    "IterationCompleted",
    "KvPressure",
    "NodeDegraded",
    "RequestAdmitted",
    "RequestRetired",
    "RequestRetried",
    "RequestShed",
    "RequestTimedOut",
    "ServingEvent",
    "WindowCommitted",
    "RequestPool",
    "InferenceRequest",
    "RequestStatus",
    "IterationRecord",
    "IterationScheduler",
    "ServingStats",
    "ALPACA",
    "DATASETS",
    "SHAREGPT",
    "DatasetTrace",
    "LengthDistribution",
    "get_dataset",
    "poisson_arrivals",
    "sample_batches",
    "warmed_batch",
    "LatencyReport",
    "LatencyTracker",
    "RequestLatency",
    "percentile",
    "PreemptingAllocatorPool",
    "PreemptionCosts",
    "RestorePolicy",
]
