"""KV-cache preemption: swap-out / recompute instead of dropping requests.

The base :class:`~repro.serving.scheduler.IterationScheduler` finishes a
request early when its channel runs out of KV blocks mid-generation; real
serving systems (vLLM) instead *preempt*: evict the victim's KV cache and
later restore it, either by reloading a swapped copy from host memory or
by recomputing the prefill.  This module implements both policies on top
of the paged allocator, with explicit cost models so the serving examples
can show the throughput/latency effect of memory pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence

from repro.serving.paging import PagedKvAllocator
from repro.serving.request import InferenceRequest, RequestStatus


class RestorePolicy(Enum):
    """How a preempted request's KV cache comes back."""

    SWAP = "swap"            # copy to host memory, copy back later
    RECOMPUTE = "recompute"  # drop it, re-run the prefill on return


@dataclass(frozen=True)
class PreemptionCosts:
    """Cycle costs of eviction and restoration.

    ``swap_bandwidth`` is the host-link bytes/second for swap traffic;
    ``recompute_cycles_per_token`` approximates prefill recompute speed.
    """

    swap_bandwidth: float = 50e9
    recompute_cycles_per_token: float = 2000.0

    def __post_init__(self) -> None:
        if self.swap_bandwidth <= 0:
            raise ValueError("swap_bandwidth must be positive")
        if self.recompute_cycles_per_token <= 0:
            raise ValueError("recompute_cycles_per_token must be positive")

    def swap_cycles(self, kv_bytes: float) -> float:
        """One-way swap transfer time in cycles (1 GHz)."""
        return kv_bytes / self.swap_bandwidth * 1e9


@dataclass
class PreemptionEvent:
    """Record of one preemption (for reporting/tests)."""

    request_id: int
    at_tokens: int
    policy: RestorePolicy
    evicted_blocks: int
    restore_cost_cycles: float


class PreemptingAllocatorPool:
    """Per-channel allocators with a preemption escape hatch.

    When a request cannot grow its allocation, the pool evicts the
    *youngest* running request on that channel (vLLM's policy: the most
    recently admitted request has generated the least work to lose),
    records the restoration cost, and retries.
    """

    def __init__(self, allocators: Sequence[PagedKvAllocator],
                 spec_kv_bytes_per_token: int,
                 policy: RestorePolicy = RestorePolicy.RECOMPUTE,
                 costs: Optional[PreemptionCosts] = None) -> None:
        if spec_kv_bytes_per_token <= 0:
            raise ValueError("spec_kv_bytes_per_token must be positive")
        self.allocators = list(allocators)
        self.kv_bytes_per_token = spec_kv_bytes_per_token
        self.policy = policy
        self.costs = costs or PreemptionCosts()
        self.events: List[PreemptionEvent] = []
        #: requests currently swapped out / pending recompute, with the
        #: cycle cost to bring each back
        self.preempted: Dict[int, float] = {}
        self._admission_order: List[int] = []

    # ------------------------------------------------------------------

    def note_admission(self, request: InferenceRequest) -> None:
        """Record admission order (eviction prefers the youngest)."""
        if request.request_id not in self._admission_order:
            self._admission_order.append(request.request_id)

    def _youngest_on_channel(self, requests: Sequence[InferenceRequest],
                             channel: int,
                             exclude: int) -> Optional[InferenceRequest]:
        candidates = [r for r in requests
                      if r.channel == channel
                      and r.request_id != exclude
                      and r.status is RequestStatus.RUNNING]
        if not candidates:
            return None
        order = {rid: i for i, rid in enumerate(self._admission_order)}
        return max(candidates,
                   key=lambda r: order.get(r.request_id, -1))

    def preempt(self, victim: InferenceRequest) -> PreemptionEvent:
        """Evict one running request's KV cache."""
        channel = victim.channel if victim.channel is not None else 0
        blocks = self.allocators[channel].release(victim.request_id)
        kv_bytes = victim.seq_len * self.kv_bytes_per_token
        if self.policy is RestorePolicy.SWAP:
            # Pay the swap-out now; the swap-in cost is owed on return.
            restore = self.costs.swap_cycles(kv_bytes)
        else:
            restore = victim.seq_len * self.costs.recompute_cycles_per_token
        victim.status = RequestStatus.WAITING
        event = PreemptionEvent(
            request_id=victim.request_id,
            at_tokens=victim.generated,
            policy=self.policy,
            evicted_blocks=blocks,
            restore_cost_cycles=restore,
        )
        self.events.append(event)
        self.preempted[victim.request_id] = restore
        return event

    def grow(self, request: InferenceRequest,
             running: Sequence[InferenceRequest]) -> bool:
        """Grow ``request``'s allocation, preempting others if needed.

        Returns ``True`` on success; ``False`` if even after evicting all
        other requests on the channel the allocation cannot fit (the
        request itself is then the only occupant and genuinely too large).
        """
        channel = request.channel if request.channel is not None else 0
        allocator = self.allocators[channel]
        while not allocator.can_allocate(request.request_id, request.seq_len):
            victim = self._youngest_on_channel(running, channel,
                                               exclude=request.request_id)
            if victim is None:
                return False
            self.preempt(victim)
        allocator.allocate(request.request_id, request.seq_len)
        return True

    def restore_cost(self, request_id: int) -> float:
        """Cycles owed to restore a preempted request (0 if not preempted)."""
        return self.preempted.pop(request_id, 0.0)

    @property
    def preemption_count(self) -> int:
        return len(self.events)


def run_with_preemption(scheduler_pool, device, requests,
                        allocators: Sequence[PagedKvAllocator],
                        kv_bytes_per_token: int,
                        policy: RestorePolicy = RestorePolicy.RECOMPUTE,
                        max_iterations: int = 100_000):
    """Serve ``requests`` with preemption-aware memory management.

    A compact serving loop (the base scheduler's admission plus the
    preempting pool): each iteration admits what fits, grows allocations
    with preemption, charges restoration costs as extra iteration latency,
    and retires finished requests.  Returns (total_cycles, tokens, pool).
    """
    pool = PreemptingAllocatorPool(allocators, kv_bytes_per_token,
                                   policy=policy)
    scheduler_pool.submit_all(requests)
    now = 0.0
    tokens = 0
    for _ in range(max_iterations):
        done = scheduler_pool.retire_finished()
        for request in done:
            channel = request.channel if request.channel is not None else 0
            allocators[channel].release(request.request_id)

        waiting = scheduler_pool.waiting(now)
        running = scheduler_pool.running()
        restore_penalty = 0.0
        for request in waiting:
            if request.channel is None:
                device.assign_channels([request], running)
            channel = request.channel if request.channel is not None else 0
            if allocators[channel].can_allocate(request.request_id,
                                                request.seq_len):
                allocators[channel].allocate(request.request_id,
                                             request.seq_len)
                request.begin_generation(channel)
                pool.note_admission(request)
                restore_penalty += pool.restore_cost(request.request_id)
        batch = scheduler_pool.running()
        if not batch:
            pending = scheduler_pool.waiting()
            if not pending:
                break
            now = max(now, min(r.arrival_time for r in pending))
            continue

        latency = device.iteration(batch).latency + restore_penalty
        now += latency
        for request in batch:
            request.advance(1)
            tokens += 1
            if not request.is_finished:
                if not pool.grow(request, batch):
                    # Cannot ever fit: finish early (degenerate case).
                    request.generated = request.output_len
                    request.status = RequestStatus.DONE
    return now, tokens, pool
