"""Iteration-level scheduling with selective batching (Orca-style).

The serving loop operates at iteration boundaries (paper §2.2): before
each generation iteration, finished requests leave the batch and waiting
requests are admitted — subject to the batch-size cap and to KV-cache
capacity on their assigned channel (paged allocation).  Within an
iteration, QKV generation and FFN layers are batched while MHA is computed
per request (*selective batching*).

The scheduler is device-agnostic: a ``BatchExecutor`` maps the current
batch to an iteration latency, and the scheduler advances request states.
This is how the same serving loop drives NeuPIMs and every baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.serving.events import (FaultInjected, IterationCompleted,
                                  KvPressure, NodeDegraded,
                                  RequestAdmitted, RequestRetired,
                                  RequestRetried, RequestShed,
                                  RequestTimedOut, WindowCommitted)
from repro.serving.grouping import (GROUPING_MODES, GroupedExecutor,
                                    GroupedScheduleState)
from repro.serving.paging import OutOfMemoryError, PagedKvAllocator
from repro.serving.pool import RequestPool
from repro.serving.request import InferenceRequest, RequestStatus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.binpack import ChannelLoadTracker
    from repro.faults.resilience import ResilienceRuntime
    from repro.serving.latency import LatencyTracker
    from repro.sim.events import EventBus

#: Maps the generation batch to the latency (cycles) of one iteration.
BatchExecutor = Callable[[Sequence[InferenceRequest]], float]

#: Assigns channels to newly admitted requests (e.g. Algorithm 2).
ChannelAssigner = Callable[[Sequence[InferenceRequest]], None]


@dataclass
class IterationRecord:
    """Bookkeeping for one executed iteration."""

    index: int
    start_time: float
    latency: float
    batch_size: int
    tokens_generated: int
    admitted: int
    retired: int

    @property
    def end_time(self) -> float:
        return self.start_time + self.latency


@dataclass
class ServingStats:
    """Aggregates over a serving run."""

    iterations: List[IterationRecord] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return self.iterations[-1].end_time if self.iterations else 0.0

    @property
    def total_tokens(self) -> int:
        return sum(r.tokens_generated for r in self.iterations)

    def throughput_tokens_per_second(self, clock_hz: float = 1e9) -> float:
        """Generation throughput; cycles are converted at ``clock_hz``."""
        if self.total_time <= 0:
            return 0.0
        return self.total_tokens / (self.total_time / clock_hz)


class IterationScheduler:
    """Drives the iteration-level serving loop.

    Parameters
    ----------
    pool:
        Request pool receiving submissions.
    executor:
        Device model that runs one generation iteration.
    max_batch_size:
        Cap on concurrently running requests.
    allocators:
        Optional per-channel paged KV allocators for admission control;
        when present, a request is only admitted if its prompt KV fits,
        and every generated token grows its allocation.
    assign_channels:
        Channel-assignment policy invoked on newly admitted requests
        (NeuPIMs: greedy min-load bin packing; baseline: round robin).
    load_tracker:
        Optional :class:`~repro.core.binpack.ChannelLoadTracker` kept live
        across iterations: admitted requests are added, growing contexts
        refreshed and retired requests removed, so admission-time bin
        packing starts from up-to-date per-channel loads without
        re-estimating the whole resident set each iteration.
    grouping / grouped:
        The equivalence-class fast path.  With ``grouping`` ``"auto"`` or
        ``"on"`` and a :class:`~repro.serving.grouping.GroupedExecutor`,
        steady-state iterations (no retirements, no admissible arrivals,
        enough KV blocks for the batched growth) commit through the
        class-grouped engine: the iteration latency comes from the frozen
        class plan plus a uniform seq_len shift, request objects are left
        untouched until the next boundary, and paged-KV growth, load
        tracking and latency bookkeeping happen as batched per-class
        operations.  Because the per-request path computes latencies from
        the same class histograms, records and aggregates are
        bit-identical between modes.  ``"off"`` (the default for
        hand-built schedulers) never groups.
    latency_tracker:
        The :class:`~repro.serving.latency.LatencyTracker` whose clock
        the grouped path must keep advancing (the per-request path goes
        through the tracker's executor wrapper instead).
    events:
        Optional :class:`~repro.sim.events.EventBus` receiving the
        typed serving events of :mod:`repro.serving.events`.  Every
        emission is guarded by ``events.active``, so a bus with no
        subscribers costs one branch per site and constructs nothing
        (the zero-overhead contract the observer bench gates).
    resilience:
        Optional :class:`~repro.faults.resilience.ResilienceRuntime`
        enabling fault injection and the resilience mechanisms: at each
        iteration boundary the scheduler polls the fault plan, aborts
        victims, times out running requests past their deadline
        (retrying them through the preemption restore machinery while
        the budget lasts) and sheds waiting requests past the shedding
        window.  ``None`` (the default) keeps every fault branch to a
        single ``is not None`` check; the grouped fast path is disabled
        while a runtime is attached so grouping ``auto`` and ``off``
        stay bit-identical under faults by construction.
    """

    def __init__(
        self,
        pool: RequestPool,
        executor: BatchExecutor,
        max_batch_size: int,
        allocators: Optional[List[PagedKvAllocator]] = None,
        assign_channels: Optional[ChannelAssigner] = None,
        load_tracker: Optional["ChannelLoadTracker"] = None,
        grouping: str = "off",
        grouped: Optional[GroupedExecutor] = None,
        latency_tracker: Optional["LatencyTracker"] = None,
        events: Optional["EventBus"] = None,
        resilience: Optional["ResilienceRuntime"] = None,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if grouping not in GROUPING_MODES:
            raise ValueError(f"unknown grouping mode {grouping!r}; "
                             f"known: {GROUPING_MODES}")
        if grouping == "on" and grouped is None:
            raise ValueError("grouping='on' requires a GroupedExecutor")
        self.pool = pool
        self.executor = executor
        self.max_batch_size = max_batch_size
        self.allocators = allocators
        self.assign_channels = assign_channels
        self.load_tracker = load_tracker
        self.grouping = grouping
        self.grouped = grouped
        self.latency_tracker = latency_tracker
        self.events = events
        self.resilience = resilience
        self.stats = ServingStats()
        #: Terminal outcome per retired request id (``completed`` /
        #: ``timed_out`` / ``shed`` / ``aborted``).
        self.outcomes: Dict[int, str] = {}
        self._now = 0.0
        self._grouped_state: Optional[GroupedScheduleState] = None

    @property
    def now(self) -> float:
        return self._now

    # ------------------------------------------------------------------

    def _admit(self) -> int:
        """Admit waiting requests at the iteration boundary.

        The scan is bucket-cheap: batch occupancy is a counter and the
        arrived-waiting slice is a prefix cut of the pool's cached
        arrival-sorted view, so a full batch or an empty waiting queue
        costs O(1) rather than a rescan of every pooled request.
        """
        space = self.max_batch_size - self.pool.running_count()
        admitted = 0
        if space <= 0:
            return 0
        candidates = self.pool.waiting(self._now)[:space]
        newly: List[InferenceRequest] = []
        for request in candidates:
            channel = request.channel
            if self.allocators is not None and channel is not None:
                if not self.allocators[channel].can_allocate(
                        request.request_id, request.seq_len):
                    continue
            newly.append(request)
        if self.assign_channels is not None and newly:
            self.assign_channels(newly)
        resilience = self.resilience
        injector = resilience.injector if resilience is not None else None
        for request in newly:
            channel = request.channel if request.channel is not None else 0
            if self.allocators is not None:
                if injector is not None and \
                        injector.kv_blocked(self._now, channel):
                    # The channel's KV pool is inside a fault window:
                    # treat exactly like allocator pressure (the request
                    # stays pooled and re-candidates next boundary).
                    request.channel = None
                    continue
                try:
                    self.allocators[channel].allocate(
                        request.request_id, request.seq_len)
                except OutOfMemoryError:
                    request.channel = None
                    continue
            request.begin_generation(channel)
            if self.load_tracker is not None:
                self.load_tracker.add(request)
            if resilience is not None and resilience.preempting is not None:
                # Re-admission of a preempted retry owes its restore
                # cost (swap/recompute) to the next iteration.
                cost = resilience.preempting.restore_cost(
                    request.request_id)
                if cost:
                    resilience.charge(cost)
            admitted += 1
            events = self.events
            if events is not None and events.active:
                events.emit(RequestAdmitted(time=self._now,
                                            request_id=request.request_id,
                                            channel=channel))
        return admitted

    def _retire(self) -> int:
        """Remove finished requests and free their KV blocks."""
        if not self.pool.has_finished():
            return 0
        done = self.pool.retire_finished()
        for request in done:
            if (self.allocators is not None
                    and request.channel is not None):
                self.allocators[request.channel].release(request.request_id)
            if self.load_tracker is not None:
                self.load_tracker.remove(request)
            self.outcomes[request.request_id] = "completed"
            events = self.events
            if events is not None and events.active:
                events.emit(RequestRetired(time=self._now,
                                           request_id=request.request_id))
        return len(done)

    def flush_finished(self) -> int:
        """Retire finished requests *now* (a router/failover hook).

        Identical to the retirement performed at the next iteration
        boundary; exposed so the fleet router can settle a node's
        genuinely completed requests before extracting the rest for
        failover.  Call :meth:`sync_grouped` first when stepping under
        grouping.
        """
        return self._retire()

    def release_request(self, request: InferenceRequest) -> None:
        """Detach ``request`` from this node's stack without an outcome.

        The failover extraction path: frees the KV allocation, drops the
        load-tracker contribution, evicts from the pool (detaching the
        status observer so another pool may accept the request) and
        resets it to a channel-less ``WAITING`` state.  Unlike
        :meth:`_terminate` no terminal outcome is recorded — the request
        lives on, on some other node.
        """
        rid = request.request_id
        if self.load_tracker is not None and \
                request.status is RequestStatus.RUNNING:
            self.load_tracker.remove(request)
        if self.allocators is not None and request.channel is not None:
            self.allocators[request.channel].release(rid)
        self.pool.evict(rid)
        if self.resilience is not None:
            self.resilience.attempts.pop(rid, None)
            self.resilience.deadline_base.pop(rid, None)
            if self.resilience.preempting is not None:
                self.resilience.preempting.preempted.pop(rid, None)
        request.status = RequestStatus.WAITING
        request.channel = None

    # ------------------------------------------------------------------
    # Resilience (deadlines, retries, shedding, fault windows).
    # ------------------------------------------------------------------

    def _terminate(self, request: InferenceRequest, outcome: str) -> None:
        """Remove ``request`` from the stack with terminal ``outcome``.

        Used for the non-completed exits (``timed_out`` / ``shed`` /
        ``aborted``): releases any KV allocation, detaches from the load
        tracker, evicts from the pool and records the outcome.
        """
        resilience = self.resilience
        rid = request.request_id
        if self.load_tracker is not None and \
                request.status is RequestStatus.RUNNING:
            self.load_tracker.remove(request)
        if self.allocators is not None and request.channel is not None:
            self.allocators[request.channel].release(rid)
        self.pool.evict(rid)
        resilience.attempts.pop(rid, None)
        resilience.deadline_base.pop(rid, None)
        resilience.counters[outcome] += 1
        self.outcomes[rid] = outcome
        events = self.events
        if events is not None and events.active:
            events.emit(RequestRetired(time=self._now, request_id=rid,
                                       status=outcome))

    def _retry_request(self, request: InferenceRequest) -> bool:
        """Preempt ``request`` and re-admit it later with backoff.

        Returns ``False`` when the retry budget is exhausted (the caller
        then applies its terminal handling).  Reuses the preemption
        restore machinery: KV blocks are released through the
        :class:`~repro.serving.preemption.PreemptingAllocatorPool`,
        which records the swap/recompute restoration cost charged to the
        iteration that re-admits the request.  Generation progress is
        kept — the restore cost is what models recovering it.
        """
        resilience = self.resilience
        rid = request.request_id
        attempt = resilience.attempts.get(rid, 0) + 1
        if attempt > resilience.policy.max_retries:
            return False
        if self.load_tracker is not None and \
                request.status is RequestStatus.RUNNING:
            self.load_tracker.remove(request)
        if resilience.preempting is not None and \
                request.channel is not None:
            resilience.preempting.preempt(request)
        else:
            request.status = RequestStatus.WAITING
        self.pool.evict(rid)
        request.channel = None
        resilience.attempts[rid] = attempt
        arrival = self._now + resilience.retry_delay(attempt)
        request.arrival_time = arrival
        resilience.deadline_base[rid] = arrival
        self.pool.submit(request)
        resilience.counters["retries"] += 1
        events = self.events
        if events is not None and events.active:
            events.emit(RequestRetried(time=self._now, request_id=rid,
                                       attempt=attempt,
                                       next_arrival=arrival))
        return True

    def _resilient_boundary(self) -> None:
        """Fault activation, aborts, deadlines and shedding.

        Runs once per iteration boundary, only when a runtime is
        attached (the zero-overhead guard in :meth:`run_iteration` is a
        single ``is not None`` branch).
        """
        resilience = self.resilience
        now = self._now
        events = self.events
        live = events is not None and events.active
        injector = resilience.injector
        if injector is not None:
            for fault in injector.poll(now):
                resilience.counters["faults"] += 1
                if live:
                    channel = getattr(fault, "channel", None)
                    events.emit(FaultInjected(time=now,
                                              kind=fault.describe(),
                                              channel=channel))
                    factor = getattr(fault, "factor", None)
                    stall = getattr(fault, "stall_cycles", None)
                    if factor is not None or stall is not None:
                        events.emit(NodeDegraded(
                            time=now, channel=channel,
                            factor=factor if factor is not None else 1.0,
                            stall_cycles=stall if stall is not None
                            else 0.0))
            for victim in injector.take_aborts(now, self.pool.running()):
                self._terminate(victim, "aborted")
        policy = resilience.policy
        if policy.deadline_cycles is not None:
            deadline = policy.deadline_cycles
            for request in self.pool.running():
                rid = request.request_id
                base = resilience.deadline_base.get(rid,
                                                    request.arrival_time)
                if now - base > deadline:
                    resilience.counters["timeouts"] += 1
                    if live:
                        events.emit(RequestTimedOut(
                            time=now, request_id=rid,
                            attempt=resilience.attempts.get(rid, 0)))
                    if not self._retry_request(request):
                        self._terminate(request, "timed_out")
        if policy.shed_wait_cycles is not None:
            shed_wait = policy.shed_wait_cycles
            for request in self.pool.waiting(now):
                waited = now - request.arrival_time
                if waited > shed_wait:
                    if live:
                        events.emit(RequestShed(
                            time=now, request_id=request.request_id,
                            waited=waited))
                    self._terminate(request, "shed")

    # ------------------------------------------------------------------
    # Class-grouped fast path.
    # ------------------------------------------------------------------

    def _grouping_active(self) -> bool:
        # Resilience needs per-iteration boundaries (deadlines, fault
        # windows, aborts), so the grouped fast path stands down while a
        # runtime is attached — grouping auto|off are then identical by
        # construction, which is what the chaos harness pins.
        return (self.grouping != "off" and self.grouped is not None
                and self.resilience is None)

    def sync_grouped(self) -> None:
        """Write any deferred grouped-window state back to the live stack.

        Harmless when nothing is deferred.  :meth:`run` calls this before
        returning; callers stepping :meth:`run_iteration` by hand under
        grouping should call it before inspecting pool or request state.
        """
        state = self._grouped_state
        if state is None:
            return
        clock = (self.latency_tracker.clock
                 if self.latency_tracker is not None else self._now)
        events = self.events
        if state.shift > 0 and events is not None and events.active:
            events.emit(WindowCommitted(time=self._now,
                                        iterations=state.shift))
        state.sync(self.allocators, self.load_tracker,
                   self.latency_tracker, clock)
        self._grouped_state = None

    def _grouped_steps(self, max_steps: int) -> Optional[IterationRecord]:
        """Commit up to ``max_steps`` iterations through the class engine.

        Returns the last committed record, or ``None`` when the grouped
        path cannot run this iteration (a boundary is pending); in that
        case all deferred state has been synchronized and the per-request
        path — whose arithmetic is identical — takes over.
        """
        if self.pool.has_finished():
            self.sync_grouped()
            return None
        space = self.max_batch_size - self.pool.running_count()
        # Any arrived waiting request (with batch space) is a boundary
        # even if admission would end up rejecting it: an admission
        # *attempt* has observable side effects — the round-robin cursor
        # advances and greedy placement reads the live channel loads —
        # so pre-screening admissibility here would diverge from the
        # per-request path.  Under sustained KV pressure with a starved
        # arrival this pins the loop to the per-request path (correct,
        # just not fast) until blocks free up.
        if space > 0 and self.pool.has_waiting_arrived(self._now):
            self.sync_grouped()
            return None
        state = self._grouped_state
        if state is None:
            batch = self.pool.running()
            if not batch:
                return None
            state = GroupedScheduleState(batch, self.grouped.prepare(batch))
            state.collect_fresh(self.latency_tracker)
            self._grouped_state = state
        last: Optional[IterationRecord] = None
        steps = 0
        boundary = False
        while steps < max_steps:
            if state.steps_until_finish() <= 0:
                boundary = True
                break
            if space > 0 and self.pool.has_waiting_arrived(self._now):
                boundary = True
                break
            need: Dict[int, int] = {}
            if self.allocators is not None:
                need = state.block_need(self.allocators)
                starved = [(channel, blocks)
                           for channel, blocks in need.items()
                           if self.allocators[channel].free_blocks < blocks]
                if starved:
                    # Not enough KV for the batched growth: the
                    # per-request path owns this iteration (including its
                    # exact mid-generation OOM semantics).
                    events = self.events
                    if events is not None and events.active:
                        for channel, blocks in starved:
                            events.emit(KvPressure(
                                time=self._now, channel=channel,
                                needed_blocks=blocks,
                                free_blocks=self.allocators[channel]
                                .free_blocks))
                    boundary = True
                    break
            latency = self.grouped.run(state.plan, state.shift)
            if latency <= 0:
                raise ValueError("executor returned non-positive latency")
            for channel, blocks in need.items():
                self.allocators[channel].bulk_reserve(blocks)
            state.advance()
            if self.latency_tracker is not None:
                end = self.latency_tracker.advance_clock(latency)
            else:
                end = self._now + latency
            state.flush_fresh(self.latency_tracker, end)
            record = IterationRecord(
                index=len(self.stats.iterations),
                start_time=self._now,
                latency=latency,
                batch_size=state.batch_size,
                tokens_generated=state.batch_size,
                admitted=0,
                retired=0,
            )
            self.stats.iterations.append(record)
            self._now += latency
            events = self.events
            if events is not None and events.active:
                events.emit(IterationCompleted(time=record.end_time,
                                               record=record))
            last = record
            steps += 1
        if boundary or steps == 0 or state.steps_until_finish() <= 0:
            self.sync_grouped()
        return last

    def run_iteration(self, max_steps: int = 1) -> Optional[IterationRecord]:
        """Execute one iteration; returns ``None`` when nothing is runnable.

        When the batch is empty but requests are still due to arrive, the
        scheduler idles forward to the earliest arrival time.  Under
        grouping, up to ``max_steps`` steady-state iterations may commit
        in one call (group-commit); the returned record is the last one.
        """
        if self._grouping_active():
            record = self._grouped_steps(max_steps)
            if record is not None:
                return record
            # A boundary is pending (retirement, admission, KV pressure)
            # or the batch is empty: fall through to the per-request path
            # with all deferred state already synchronized.
        resilience = self.resilience
        if resilience is not None:
            self._resilient_boundary()
        retired = self._retire()
        admitted = self._admit()
        batch = self.pool.running()
        if not batch:
            pending = self.pool.waiting()
            if not pending:
                return None
            self._now = max(self._now,
                            min(r.arrival_time for r in pending))
            if self.latency_tracker is not None:
                self.latency_tracker.sync_clock(self._now)
            admitted += self._admit()
            batch = self.pool.running()
            if not batch:
                return None
        if resilience is not None:
            resilience.now = self._now
        latency = self.executor(batch)
        if latency <= 0:
            raise ValueError("executor returned non-positive latency")
        for request in batch:
            request.advance(1)
            if self.load_tracker is not None:
                self.load_tracker.update(request)
            if self.allocators is not None and request.channel is not None:
                channel = request.channel
                try:
                    if resilience is not None and \
                            resilience.injector is not None and \
                            resilience.injector.kv_blocked(self._now,
                                                           channel):
                        raise OutOfMemoryError(
                            f"channel {channel} KV pool inside a fault "
                            f"window")
                    self.allocators[channel].allocate(
                        request.request_id, request.seq_len)
                except OutOfMemoryError:
                    free = self.allocators[channel].free_blocks
                    if resilience is not None and \
                            not request.is_finished and \
                            self._retry_request(request):
                        # Preempted and re-admitted later with backoff;
                        # the restore cost is charged on re-admission.
                        pass
                    else:
                        # Out of KV memory mid-generation: finish the
                        # request early (real systems would preempt/swap;
                        # the paper's experiments are sized to avoid
                        # this).
                        request.generated = request.output_len
                        request.status = RequestStatus.DONE
                    events = self.events
                    if events is not None and events.active:
                        events.emit(KvPressure(
                            time=self._now, channel=channel,
                            needed_blocks=1, free_blocks=free))
        record = IterationRecord(
            index=len(self.stats.iterations),
            start_time=self._now,
            latency=latency,
            batch_size=len(batch),
            tokens_generated=len(batch),
            admitted=admitted,
            retired=retired,
        )
        self.stats.iterations.append(record)
        self._now += latency
        events = self.events
        if events is not None and events.active:
            events.emit(IterationCompleted(time=record.end_time,
                                           record=record))
        return record

    def run(self, max_iterations: int = 1_000_000) -> ServingStats:
        """Run until the pool drains or ``max_iterations`` is hit."""
        while len(self.stats.iterations) < max_iterations:
            budget = max_iterations - len(self.stats.iterations)
            if self.run_iteration(max_steps=budget) is None:
                break
        self.sync_grouped()
        return self.stats
