"""Per-request latency accounting for inference serving.

The paper's evaluation is throughput-centric, but its serving substrate
(Orca-style iteration-level scheduling, §2.2) exists to bound *latency*:
new requests join at iteration boundaries instead of waiting for a whole
batch to finish.  This module tracks the standard serving metrics over a
scheduler run — time-to-first-token (TTFT), time-per-output-token (TPOT),
end-to-end latency — and evaluates SLO attainment, enabling the
latency-oriented examples and tests.
"""

from __future__ import annotations

from bisect import bisect_right
from math import ceil
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.serving.scheduler import ServingStats


@dataclass
class RequestLatency:
    """Latency decomposition of one completed request (in cycles)."""

    request_id: int
    arrival_time: float
    first_token_time: float
    completion_time: float
    output_tokens: int

    def __post_init__(self) -> None:
        if self.output_tokens <= 0:
            raise ValueError("output_tokens must be positive")
        if not (self.arrival_time <= self.first_token_time
                <= self.completion_time):
            raise ValueError("latency timestamps out of order")

    @property
    def ttft(self) -> float:
        """Time to first token."""
        return self.first_token_time - self.arrival_time

    @property
    def end_to_end(self) -> float:
        return self.completion_time - self.arrival_time

    @property
    def tpot(self) -> float:
        """Mean time per output token after the first."""
        if self.output_tokens == 1:
            return 0.0
        return ((self.completion_time - self.first_token_time)
                / (self.output_tokens - 1))


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (p in [0, 100])."""
    if not values:
        return 0.0
    if not 0 <= p <= 100:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(values)
    rank = max(1, ceil(p / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class LatencyReport:
    """Aggregate latency statistics over completed requests."""

    requests: List[RequestLatency] = field(default_factory=list)

    def add(self, latency: RequestLatency) -> None:
        """Record one completed request's latency."""
        self.requests.append(latency)

    def _values(self, metric: str) -> List[float]:
        return [getattr(r, metric) for r in self.requests]

    def summary(self, clock_hz: float = 1e9) -> Dict[str, float]:
        """Mean / p50 / p99 for TTFT, TPOT and end-to-end, in milliseconds."""
        if not self.requests:
            return {}
        scale = 1e3 / clock_hz  # cycles -> ms at the given clock
        out: Dict[str, float] = {}
        for metric in ("ttft", "tpot", "end_to_end"):
            values = self._values(metric)
            out[f"{metric}_mean_ms"] = sum(values) / len(values) * scale
            out[f"{metric}_p50_ms"] = percentile(values, 50) * scale
            out[f"{metric}_p99_ms"] = percentile(values, 99) * scale
        return out

    def slo_attainment(self, ttft_cycles: Optional[float] = None,
                       tpot_cycles: Optional[float] = None) -> float:
        """Fraction of requests meeting the given latency targets."""
        if not self.requests:
            return 1.0
        met = 0
        for request in self.requests:
            ok = True
            if ttft_cycles is not None and request.ttft > ttft_cycles:
                ok = False
            if tpot_cycles is not None and request.tpot > tpot_cycles:
                ok = False
            met += ok
        return met / len(self.requests)


class LatencyTracker:
    """Reconstructs per-request latencies from a scheduler run.

    Wraps a :class:`~repro.serving.scheduler.IterationScheduler` executor:
    records, per request, the end time of its first generation iteration
    and of its completing iteration.
    """

    def __init__(self) -> None:
        self._first_token: Dict[int, float] = {}
        self._completion: Dict[int, float] = {}
        self._arrivals: Dict[int, float] = {}
        self._outputs: Dict[int, int] = {}
        #: execution clock: the end time of the last observed iteration
        self._clock = 0.0
        #: memoized :meth:`report`, dropped on new observations
        self._report_cache: Optional[LatencyReport] = None

    @property
    def clock(self) -> float:
        """End time of the last observed iteration (cycles)."""
        return self._clock

    def advance_clock(self, latency: float) -> float:
        """Account one executed iteration; returns its end time."""
        self._clock += latency
        return self._clock

    def sync_clock(self, now: float) -> None:
        """Catch the clock up to the scheduler's ``now`` (idle jumps).

        The executor wrapper only accumulates iteration latencies; when
        the scheduler idles forward to the next arrival the wrapped
        clock would lag behind, stamping first-token times *earlier*
        than the request's arrival (and :meth:`report` would reject the
        reconstructed latency as out of order).  The scheduler calls
        this at every idle jump; the clock never moves backwards.
        """
        if now > self._clock:
            self._clock = now

    def observe_running(self, request, end: float) -> None:
        """Record that ``request`` ran in an iteration finishing at ``end``."""
        rid = request.request_id
        self._arrivals.setdefault(rid, request.arrival_time)
        self._outputs[rid] = request.output_len
        self._first_token.setdefault(rid, end)
        # generated advances after the executor returns; the last
        # iteration a request appears in is its completion.
        self._completion[rid] = end
        self._report_cache = None

    def has_first_token(self, request_id: int) -> bool:
        """Whether the request has produced its first token yet."""
        return request_id in self._first_token

    def note_completion(self, request_id: int, end: float) -> None:
        """Refresh a request's completion time (grouped-engine sync)."""
        self._completion[request_id] = end
        self._report_cache = None

    def wrap(self, executor, clock_start: float = 0.0):
        """Wrap a BatchExecutor, recording per-request progress.

        The clock lives on the tracker (not in the closure) so the
        grouped serving engine — which bypasses the per-request executor
        during steady-state windows — advances the same clock via
        :meth:`advance_clock` and both paths stay consistent.
        """
        self._clock = clock_start

        def run(batch):
            latency = executor(batch)
            end = self.advance_clock(latency)
            for request in batch:
                self.observe_running(request, end)
            return latency
        return run

    def report(self) -> LatencyReport:
        """Build the latency report for all requests seen.

        The report is memoized until the next observation lands (the
        session result and any fleet-level merge both read it), so
        callers must treat the returned report as read-only.
        """
        if self._report_cache is not None:
            return self._report_cache
        report = LatencyReport()
        for rid, first in sorted(self._first_token.items()):
            report.add(RequestLatency(
                request_id=rid,
                arrival_time=self._arrivals.get(rid, 0.0),
                first_token_time=first,
                completion_time=self._completion[rid],
                output_tokens=max(1, self._outputs.get(rid, 1)),
            ))
        self._report_cache = report
        return report


def queueing_delay_curve(stats: ServingStats,
                         arrival_times: Sequence[float]) -> List[float]:
    """Per-arrival delay until the next iteration boundary (admission lag).

    Quantifies the benefit of iteration-level scheduling: with per-batch
    scheduling the lag would be the remaining *batch* time instead.
    """
    boundaries = [record.end_time for record in stats.iterations]
    delays: List[float] = []
    for arrival in arrival_times:
        idx = bisect_right(boundaries, arrival)
        if idx < len(boundaries):
            delays.append(boundaries[idx] - arrival)
        else:
            delays.append(0.0)
    return delays


def iteration_latency_histogram(stats: ServingStats,
                                bins: int = 10) -> Dict[str, int]:
    """Histogram of iteration latencies (diagnostics for examples)."""
    if not stats.iterations:
        return {}
    latencies = [record.latency for record in stats.iterations]
    low, high = min(latencies), max(latencies)
    if high == low:
        return {f"{low:.0f}": len(latencies)}
    width = (high - low) / bins
    histogram: Dict[str, int] = {}
    for value in latencies:
        bucket = min(bins - 1, int((value - low) / width))
        key = f"{low + bucket * width:.0f}"
        histogram[key] = histogram.get(key, 0) + 1
    return histogram
