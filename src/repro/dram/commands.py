"""DRAM and PIM command definitions.

The base DRAM command set (ACT/PRE/RD/WR/REF) follows the standard JEDEC
interface.  The PIM command set has two layers, mirroring the paper §5.2:

* the *baseline* Newton-style commands — ``PIM_GWRITE``, ``PIM_ACTIVATION``
  (grouped activation of 4 banks), ``PIM_DOTPRODUCT``, ``PIM_RDRESULT`` —
  which drive a GEMV with fine-grained C/A-bus traffic; and
* the *NeuPIMs composite* commands — ``PIM_HEADER`` (declares the GEMV
  dimensionality so the controller can schedule around refresh),
  ``PIM_GEMV`` (performs ``k`` dot-products and the result readout in one
  command), ``PIM_PRECHARGE`` (precharges the PIM row buffer).

Each command knows which row buffer it touches (``BufferTarget``), which is
what the dual-row-buffer bank model keys on.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple


class CommandType(Enum):
    """All command opcodes understood by the memory controller."""

    # Regular memory commands.
    ACT = "ACT"
    PRE = "PRE"
    RD = "RD"
    WR = "WR"
    REF = "REF"

    # Baseline PIM commands (Newton).
    PIM_GWRITE = "PIM_GWRITE"
    PIM_ACTIVATION = "PIM_ACTIVATION"
    PIM_DOTPRODUCT = "PIM_DOTPRODUCT"
    PIM_RDRESULT = "PIM_RDRESULT"

    # NeuPIMs composite commands (Table 1).
    PIM_HEADER = "PIM_HEADER"
    PIM_GEMV = "PIM_GEMV"
    PIM_PRECHARGE = "PIM_PRECHARGE"


#: Commands that belong to the PIM flow (scheduled from the PIM queue).
PIM_COMMANDS = frozenset(
    {
        CommandType.PIM_GWRITE,
        CommandType.PIM_ACTIVATION,
        CommandType.PIM_DOTPRODUCT,
        CommandType.PIM_RDRESULT,
        CommandType.PIM_HEADER,
        CommandType.PIM_GEMV,
        CommandType.PIM_PRECHARGE,
    }
)

#: NeuPIMs ISA additions on top of the baseline PIM command set.
COMPOSITE_COMMANDS = frozenset(
    {CommandType.PIM_HEADER, CommandType.PIM_GEMV, CommandType.PIM_PRECHARGE}
)


class BufferTarget(Enum):
    """Which per-bank row buffer a command operates on."""

    MEM = "mem"
    PIM = "pim"
    NONE = "none"


def buffer_target(ctype: CommandType) -> BufferTarget:
    """Row buffer touched by a command type."""
    if ctype in (CommandType.ACT, CommandType.PRE, CommandType.RD, CommandType.WR):
        return BufferTarget.MEM
    if ctype in (
        CommandType.PIM_ACTIVATION,
        CommandType.PIM_DOTPRODUCT,
        CommandType.PIM_GEMV,
        CommandType.PIM_PRECHARGE,
    ):
        return BufferTarget.PIM
    return BufferTarget.NONE


@dataclass(frozen=True)
class Command:
    """One command as placed on a channel's C/A bus.

    Attributes
    ----------
    ctype:
        Opcode.
    bank:
        Target bank index, or ``None`` for channel-scope commands
        (REF, PIM_HEADER, and all-bank PIM commands).
    row:
        Target row for activates / GWRITE.
    banks:
        Bank group for ``PIM_ACTIVATION`` (the paper activates 4 banks per
        command due to tFAW).
    k:
        Dot-product count argument of ``PIM_GEMV``.
    meta:
        Free-form tag used by tests and the Figure 9 bench to attribute
        commands to operations.
    """

    ctype: CommandType
    bank: Optional[int] = None
    row: Optional[int] = None
    banks: Tuple[int, ...] = ()
    k: int = 0
    meta: str = ""

    def __post_init__(self) -> None:
        if self.ctype is CommandType.PIM_ACTIVATION and not self.banks:
            raise ValueError("PIM_ACTIVATION requires a bank group")
        if self.ctype is CommandType.PIM_GEMV and self.k <= 0:
            raise ValueError("PIM_GEMV requires k > 0 dot-products")
        if self.ctype in (CommandType.ACT, CommandType.RD, CommandType.WR,
                          CommandType.PRE) and self.bank is None:
            raise ValueError(f"{self.ctype.value} requires a bank")
        if self.ctype is CommandType.ACT and self.row is None:
            raise ValueError("ACT requires a row")

    @property
    def is_pim(self) -> bool:
        return self.ctype in PIM_COMMANDS

    @property
    def is_composite(self) -> bool:
        return self.ctype in COMPOSITE_COMMANDS

    @property
    def target(self) -> BufferTarget:
        return buffer_target(self.ctype)


def ca_bus_cycles(ctype: CommandType) -> int:
    """C/A bus occupancy of a command in cycles.

    Regular commands occupy one command slot.  PIM commands carry extra
    payload (row lists, dimensionality) and occupy the bus longer — this is
    the "issuing delay of PIM commands is greater" property the paper's
    controller policy (PIM-priority) is built around.
    """
    if ctype in (CommandType.PIM_HEADER, CommandType.PIM_GEMV):
        return 4
    if ctype in (CommandType.PIM_GWRITE, CommandType.PIM_ACTIVATION,
                 CommandType.PIM_DOTPRODUCT, CommandType.PIM_RDRESULT,
                 CommandType.PIM_PRECHARGE):
        return 2
    return 1
