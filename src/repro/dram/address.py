"""Physical address mapping for the PIM-enabled HBM stack.

Maps linear byte addresses to (channel, bank group, bank, row, column)
coordinates and back.  Two interleaving orders are provided:

* ``ChannelInterleaved`` — consecutive cache lines rotate across channels
  (the layout regular NPU traffic wants: weight streams spread over all
  channels for full aggregate bandwidth);
* ``BankInterleaved`` — consecutive rows rotate across banks *within* a
  channel (the layout the KV cache wants: a request's matrix rows spread
  over its channel's banks so a dot-product wave engages all of them,
  §6.3).

The mapping is exercised by the KV-layout and compiler tests, which check
that the tile enumeration of Algorithm 1 agrees with the addresses a
request's KV cache actually occupies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dram.timing import HbmOrganization


@dataclass(frozen=True)
class Coordinates:
    """Decoded location of one byte address."""

    channel: int
    bank: int
    row: int
    column: int

    @property
    def bank_group(self) -> int:
        """Bank group under the default 4-banks-per-group organization."""
        return self.bank // 4


class AddressMapper:
    """Base mapper: validates geometry and round-trips addresses."""

    def __init__(self, org: Optional[HbmOrganization] = None,
                 line_bytes: int = 64) -> None:
        if line_bytes <= 0:
            raise ValueError("line_bytes must be positive")
        self.org = org or HbmOrganization()
        self.line_bytes = line_bytes
        if self.org.page_bytes % line_bytes != 0:
            raise ValueError("page size must be a multiple of the line size")
        self.lines_per_page = self.org.page_bytes // line_bytes
        self.rows_per_bank = self.org.rows_per_bank()

    @property
    def total_bytes(self) -> int:
        return self.org.total_capacity

    def _check(self, address: int) -> None:
        if not 0 <= address < self.total_bytes:
            raise ValueError(
                f"address {address:#x} out of range (capacity "
                f"{self.total_bytes:#x})")

    def decode(self, address: int) -> Coordinates:
        """Map a byte address to (channel, bank, row, column)."""
        raise NotImplementedError

    def encode(self, coords: Coordinates) -> int:
        """Map coordinates back to the byte address (decode inverse)."""
        raise NotImplementedError


class ChannelInterleaved(AddressMapper):
    """Line-granularity channel interleaving (NPU streaming layout).

    Address bits, low to high: line offset | channel | column-line |
    bank | row.
    """

    def decode(self, address: int) -> Coordinates:
        """Decode under line-granularity channel interleaving."""
        self._check(address)
        line = address // self.line_bytes
        offset_in_line = address % self.line_bytes
        channel = line % self.org.channels
        line //= self.org.channels
        column_line = line % self.lines_per_page
        line //= self.lines_per_page
        bank = line % self.org.banks_per_channel
        row = line // self.org.banks_per_channel
        return Coordinates(channel=channel, bank=bank, row=row,
                           column=column_line * self.line_bytes
                           + offset_in_line)

    def encode(self, coords: Coordinates) -> int:
        """Encode under line-granularity channel interleaving."""
        column_line = coords.column // self.line_bytes
        offset = coords.column % self.line_bytes
        line = coords.row
        line = line * self.org.banks_per_channel + coords.bank
        line = line * self.lines_per_page + column_line
        line = line * self.org.channels + coords.channel
        return line * self.line_bytes + offset


class BankInterleaved(AddressMapper):
    """Row-granularity bank interleaving within one channel (KV layout).

    Consecutive *pages* rotate across the channel's banks, so matrix row
    ``i`` of a GEMV operand lands on bank ``i % banks`` — exactly the
    §6.3 key-cache placement Algorithm 1 assumes.
    """

    def __init__(self, channel: int,
                 org: Optional[HbmOrganization] = None,
                 line_bytes: int = 64, base_row: int = 0) -> None:
        super().__init__(org, line_bytes)
        if not 0 <= channel < self.org.channels:
            raise ValueError(f"invalid channel {channel}")
        if base_row < 0:
            raise ValueError("base_row must be non-negative")
        self.channel = channel
        self.base_row = base_row

    @property
    def total_bytes(self) -> int:
        rows_available = self.rows_per_bank - self.base_row
        return rows_available * self.org.banks_per_channel \
            * self.org.page_bytes

    def decode(self, address: int) -> Coordinates:
        """Decode under page-granularity bank interleaving."""
        self._check(address)
        page = address // self.org.page_bytes
        column = address % self.org.page_bytes
        bank = page % self.org.banks_per_channel
        row = self.base_row + page // self.org.banks_per_channel
        return Coordinates(channel=self.channel, bank=bank, row=row,
                           column=column)

    def encode(self, coords: Coordinates) -> int:
        """Encode under page-granularity bank interleaving."""
        if coords.channel != self.channel:
            raise ValueError("coordinates belong to another channel")
        page = ((coords.row - self.base_row) * self.org.banks_per_channel
                + coords.bank)
        return page * self.org.page_bytes + coords.column

    def matrix_row_location(self, row_index: int,
                            row_bytes: int) -> Coordinates:
        """Location of GEMV matrix row ``row_index``'s first byte.

        Rows are padded to whole pages (the layout the dot-product waves
        require: one open page per bank per wave).
        """
        pages_per_row = -(-row_bytes // self.org.page_bytes)
        address = row_index * pages_per_row * self.org.page_bytes
        return self.decode(address)
