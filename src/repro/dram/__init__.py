"""DRAM/HBM substrate: timing, banks, channels, controllers, power."""

from repro.dram.bank import Bank, StructuralHazard, TimingViolation
from repro.dram.channel import Channel, IssueRecord
from repro.dram.commands import (
    COMPOSITE_COMMANDS,
    PIM_COMMANDS,
    BufferTarget,
    Command,
    CommandType,
    buffer_target,
    ca_bus_cycles,
)
from repro.dram.controller import (ControllerConfig, MemoryController,
                                   ReplaySummary)
from repro.dram.power import PowerModel, PowerParams, PowerReport
from repro.dram.timing import (
    DEFAULT_ORGANIZATION,
    DEFAULT_PIM_TIMING,
    DEFAULT_TIMING,
    HbmOrganization,
    PimTiming,
    TimingParams,
)

from repro.dram.address import AddressMapper, BankInterleaved, ChannelInterleaved, Coordinates

__all__ = [
    "Bank",
    "StructuralHazard",
    "TimingViolation",
    "Channel",
    "IssueRecord",
    "COMPOSITE_COMMANDS",
    "PIM_COMMANDS",
    "BufferTarget",
    "Command",
    "CommandType",
    "buffer_target",
    "ca_bus_cycles",
    "ControllerConfig",
    "MemoryController",
    "ReplaySummary",
    "PowerModel",
    "PowerParams",
    "PowerReport",
    "DEFAULT_ORGANIZATION",
    "DEFAULT_PIM_TIMING",
    "DEFAULT_TIMING",
    "HbmOrganization",
    "PimTiming",
    "TimingParams",
    "AddressMapper",
    "BankInterleaved",
    "ChannelInterleaved",
    "Coordinates",
]
