"""A PIM-capable HBM channel: banks, C/A bus, data bus, tFAW tracking.

The channel is where the concurrency story of the paper plays out: one
command/address (C/A) bus is shared between regular memory commands and PIM
commands, one data bus carries read/write bursts and PIM results, and the
32 banks execute both flows.  The channel enforces:

* C/A bus serialization — each command occupies the bus for
  :func:`repro.dram.commands.ca_bus_cycles` cycles;
* the four-activation window (tFAW) across *all* activates, including the
  grouped ``PIM_ACTIVATION`` (which counts as 4);
* per-bank timing via :class:`repro.dram.bank.Bank`.

It also owns the channel-scope PIM state: the global vector buffer
(operand vector for GEMV) and the per-bank accumulators.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.dram.bank import Bank, StructuralHazard
from repro.dram.commands import BufferTarget, Command, CommandType, ca_bus_cycles
from repro.dram.timing import HbmOrganization, PimTiming, TimingParams
from repro.sim.stats import StatsRegistry

#: Per-command-type stat counter names, precomputed off the issue path.
_STAT_NAMES = {ctype: f"cmd.{ctype.value}" for ctype in CommandType}


@dataclass
class IssueRecord:
    """Outcome of issuing one command on the channel."""

    command: Command
    issue_time: float
    bus_release: float
    complete_time: float


class Channel:
    """One HBM channel with PIM-capable banks.

    Parameters
    ----------
    index:
        Channel index within the device.
    timing, org, pim_timing:
        Hardware parameters (Table 2 defaults).
    dual_row_buffer:
        Build NeuPIMs banks (``True``) or blocked-mode banks (``False``).
    stats:
        Optional shared stats registry; the channel records command counts
        and C/A-bus busy cycles into it (used by the Figure 9 bench).
    """

    def __init__(
        self,
        index: int,
        timing: Optional[TimingParams] = None,
        org: Optional[HbmOrganization] = None,
        pim_timing: Optional[PimTiming] = None,
        dual_row_buffer: bool = True,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        self.index = index
        self.timing = timing or TimingParams()
        self.org = org or HbmOrganization()
        self.pim_timing = pim_timing or PimTiming()
        self.dual_row_buffer = dual_row_buffer
        self.stats = stats or StatsRegistry()
        self.banks: List[Bank] = [
            Bank(i, self.timing, dual_row_buffer)
            for i in range(self.org.banks_per_channel)
        ]
        self._ca_free_at = 0.0
        self._ca_busy_cycles = 0.0
        #: booked (start, end) busy intervals on the shared data bus,
        #: kept sorted; bursts may be booked in the future (PIM results),
        #: so reads fill earlier gaps (first-fit).
        self._data_busy: List[Tuple[float, float]] = []
        self._act_window: Deque[float] = deque()
        #: row currently staged in the global vector buffer (None = empty)
        self.global_vector_row: Optional[Tuple[int, int]] = None
        self._issued: List[IssueRecord] = []
        self._handlers = {
            CommandType.ACT: self._issue_act,
            CommandType.PRE: self._issue_pre,
            CommandType.RD: self._issue_rdwr,
            CommandType.WR: self._issue_rdwr,
            CommandType.REF: self._issue_ref,
            CommandType.PIM_GWRITE: self._issue_gwrite,
            CommandType.PIM_ACTIVATION: self._issue_pim_act,
            CommandType.PIM_DOTPRODUCT: self._issue_dotprod,
            CommandType.PIM_RDRESULT: self._issue_rdresult,
            CommandType.PIM_HEADER: self._issue_header,
            CommandType.PIM_GEMV: self._issue_gemv,
            CommandType.PIM_PRECHARGE: self._issue_pim_pre,
        }

    # ------------------------------------------------------------------
    # Bus bookkeeping.
    # ------------------------------------------------------------------

    @property
    def ca_busy_cycles(self) -> float:
        """Total cycles the C/A bus carried commands."""
        return self._ca_busy_cycles

    @property
    def ca_free_at(self) -> float:
        return self._ca_free_at

    def ca_utilization(self, horizon: float) -> float:
        """C/A bus busy fraction over ``[0, horizon]``."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self._ca_busy_cycles / horizon)

    def _book_ca(self, earliest: float, cycles: int) -> float:
        start = max(earliest, self._ca_free_at)
        self._ca_free_at = start + cycles
        self._ca_busy_cycles += cycles
        return start

    #: Pruning slack for the data-bus interval list.  Every future booking
    #: starts no earlier than the booking command's C/A slot, which is at
    #: most ``max(ca_bus_cycles)`` (4) cycles behind the C/A frontier, so
    #: intervals ending 8+ cycles before the frontier can never influence a
    #: first-fit search again.
    _DATA_PRUNE_SLACK = 8.0

    def _book_data(self, earliest: float, duration: float) -> float:
        """First-fit booking on the shared data bus; returns burst start.

        The interval list is kept compact: intervals behind the pruning
        watermark are dropped and back-to-back bursts merge (a zero-width
        gap can never admit a booking), so long RD/WR runs stay O(1) per
        booking instead of growing the list per command.
        """
        busy = self._data_busy
        watermark = self._ca_free_at - self._DATA_PRUNE_SLACK
        while busy and busy[0][1] <= watermark:
            busy.pop(0)
        if busy and busy[0][0] < watermark:
            # Truncate the head interval to the watermark: bookings can
            # never start before it, and a watermark-relative head is what
            # keeps long merged bursts translation-periodic for replay.
            busy[0] = (watermark, busy[0][1])
        start = earliest
        for busy_start, busy_end in busy:
            if start + duration <= busy_start:
                break
            if start < busy_end:
                start = busy_end
        end = start + duration
        for i, (busy_start, busy_end) in enumerate(busy):
            if busy_end == start:
                busy[i] = (busy_start, end)
                busy.sort()
                return start
        busy.append((start, end))
        busy.sort()
        return start

    def _respect_faw(self, t: float, activations: int) -> float:
        """Earliest time ``activations`` new ACTs fit in the tFAW window."""
        while True:
            window_start = t - self.timing.tFAW
            recent = [a for a in self._act_window if a > window_start]
            if len(recent) + activations <= 4:
                self._act_window = deque(recent)
                return t
            # Wait until the oldest blocking activate leaves the window.
            t = recent[0] + self.timing.tFAW
            # Small epsilon not needed: strictly-greater comparison above.

    def _record_acts(self, time: float, count: int) -> None:
        for _ in range(count):
            self._act_window.append(time)

    # ------------------------------------------------------------------
    # Command issue.
    # ------------------------------------------------------------------

    def issue(self, cmd: Command, earliest: float = 0.0) -> IssueRecord:
        """Issue ``cmd`` at the earliest legal time at or after ``earliest``.

        Returns an :class:`IssueRecord` whose ``complete_time`` is when the
        command's effect finishes (data burst end for RD/WR, accumulate end
        for DOTPRODUCT, full GEMV end for PIM_GEMV, ...).
        """
        record = self._handlers[cmd.ctype](cmd, earliest)
        self._issued.append(record)
        self.stats.add(_STAT_NAMES[cmd.ctype])
        return record

    @property
    def issued(self) -> List[IssueRecord]:
        """All issue records in order."""
        return list(self._issued)

    # -- regular memory commands ---------------------------------------

    def _issue_act(self, cmd: Command, earliest: float) -> IssueRecord:
        bank = self.banks[cmd.bank]
        t = bank.earliest_activate(BufferTarget.MEM, earliest)
        t = self._respect_faw(max(t, self._ca_free_at), 1)
        start = self._book_ca(t, ca_bus_cycles(cmd.ctype))
        bank.activate(BufferTarget.MEM, cmd.row, start)
        self._record_acts(start, 1)
        self.stats.add("dram.row_activations")
        return IssueRecord(cmd, start, self._ca_free_at,
                           start + self.timing.tRCD)

    def _issue_pre(self, cmd: Command, earliest: float) -> IssueRecord:
        bank = self.banks[cmd.bank]
        t = bank.earliest_precharge(BufferTarget.MEM, earliest)
        start = self._book_ca(t, ca_bus_cycles(cmd.ctype))
        bank.precharge(BufferTarget.MEM, start)
        return IssueRecord(cmd, start, self._ca_free_at,
                           start + self.timing.tRP)

    def _issue_rdwr(self, cmd: Command, earliest: float) -> IssueRecord:
        bank = self.banks[cmd.bank]
        is_write = cmd.ctype is CommandType.WR
        row = bank.open_row(BufferTarget.MEM)
        if row is None:
            raise StructuralHazard(
                f"channel {self.index} bank {cmd.bank}: no open MEM row for "
                f"{cmd.ctype.value}"
            )
        t = bank.earliest_column(BufferTarget.MEM, row, earliest)
        if not self.dual_row_buffer and bank.is_blocked_for_mem(t):
            t = bank.pim_busy_until
        t = max(t, self._ca_free_at)
        start = self._book_ca(t, ca_bus_cycles(cmd.ctype))
        data_end = bank.column_access(BufferTarget.MEM, row, start, is_write)
        # Data bus is shared across banks of the channel.
        burst_start = self._book_data(data_end - self.timing.tBL,
                                      self.timing.tBL)
        self.stats.add("data.bytes", self.org.bus_bytes_per_cycle * self.timing.tBL)
        return IssueRecord(cmd, start, self._ca_free_at,
                           burst_start + self.timing.tBL)

    def _issue_ref(self, cmd: Command, earliest: float) -> IssueRecord:
        # Refresh requires all banks precharged; model as closing them.
        t = max(earliest, self._ca_free_at)
        for bank in self.banks:
            for target in ((BufferTarget.MEM, BufferTarget.PIM)
                           if self.dual_row_buffer else (BufferTarget.MEM,)):
                if bank.open_row(target) is not None:
                    t = max(t, bank.earliest_precharge(target, t))
        start = self._book_ca(t, ca_bus_cycles(cmd.ctype))
        for bank in self.banks:
            bank.refresh(start, self.timing.tRFC)
        return IssueRecord(cmd, start, self._ca_free_at,
                           start + self.timing.tRFC)

    # -- baseline PIM commands ------------------------------------------

    def _issue_gwrite(self, cmd: Command, earliest: float) -> IssueRecord:
        """Copy a row of a bank into the channel's global vector buffer."""
        t = max(earliest, self._ca_free_at)
        start = self._book_ca(t, ca_bus_cycles(cmd.ctype))
        end = start + self.pim_timing.gwrite_cycles
        self.global_vector_row = (cmd.bank or 0, cmd.row or 0)
        if not self.dual_row_buffer:
            for bank in self.banks:
                bank.begin_pim_hold(end)
        return IssueRecord(cmd, start, self._ca_free_at, end)

    def _issue_pim_act(self, cmd: Command, earliest: float) -> IssueRecord:
        """Grouped activation of up to 4 banks' PIM row buffers."""
        if len(cmd.banks) > 4:
            raise ValueError("PIM_ACTIVATION activates at most 4 banks (tFAW)")
        target = BufferTarget.PIM if self.dual_row_buffer else BufferTarget.MEM
        t = earliest
        for b in cmd.banks:
            t = max(t, self.banks[b].earliest_activate(target, t))
        t = self._respect_faw(max(t, self._ca_free_at), len(cmd.banks))
        start = self._book_ca(t, ca_bus_cycles(cmd.ctype))
        for b in cmd.banks:
            self.banks[b].activate(target, cmd.row, start)
        self._record_acts(start, len(cmd.banks))
        self.stats.add("dram.row_activations", len(cmd.banks))
        end = start + self.timing.tRCD
        if not self.dual_row_buffer:
            for b in cmd.banks:
                self.banks[b].begin_pim_hold(end)
        return IssueRecord(cmd, start, self._ca_free_at, end)

    def _issue_dotprod(self, cmd: Command, earliest: float) -> IssueRecord:
        """All-bank dot-product of open PIM rows against the global vector."""
        if self.global_vector_row is None:
            raise StructuralHazard("PIM_DOTPRODUCT with empty global vector buffer")
        target = BufferTarget.PIM if self.dual_row_buffer else BufferTarget.MEM
        t = earliest
        active = [b for b in self.banks if b.open_row(target) is not None]
        if not active:
            raise StructuralHazard("PIM_DOTPRODUCT with no activated PIM rows")
        for bank in active:
            t = max(t, bank.earliest_column(target, bank.open_row(target), t))
        t = max(t, self._ca_free_at)
        start = self._book_ca(t, ca_bus_cycles(cmd.ctype))
        duration = self.pim_timing.dotprod_cycles_per_page(self.org.page_bytes)
        end = start + duration
        for bank in active:
            bank.column_access(target, bank.open_row(target), start)
            if not self.dual_row_buffer:
                bank.begin_pim_hold(end)
        self.stats.add("pim.dotprods", len(active))
        return IssueRecord(cmd, start, self._ca_free_at, end)

    def _issue_rdresult(self, cmd: Command, earliest: float) -> IssueRecord:
        """Drain per-bank accumulators over the data bus to the host."""
        t = max(earliest, self._ca_free_at)
        start = self._book_ca(t, ca_bus_cycles(cmd.ctype))
        burst_start = self._book_data(start + self.timing.tCL,
                                      self.pim_timing.rdresult_cycles)
        end = burst_start + self.pim_timing.rdresult_cycles
        return IssueRecord(cmd, start, self._ca_free_at, end)

    # -- NeuPIMs composite commands ---------------------------------------

    def _issue_header(self, cmd: Command, earliest: float) -> IssueRecord:
        """Dimensionality announcement; occupies the bus, no bank effect."""
        t = max(earliest, self._ca_free_at)
        start = self._book_ca(t, ca_bus_cycles(cmd.ctype))
        return IssueRecord(cmd, start, self._ca_free_at,
                           start + self.pim_timing.header_cycles)

    def gemv_wave_duration(self, num_banks: int) -> float:
        """Duration of one internally-sequenced GEMV wave over ``num_banks``.

        A wave activates ``num_banks`` PIM rows (in groups of 4 spaced by
        tRRD_L, bounded by tFAW), waits tRCD, MACs the full page, then
        precharges.  Used by ``PIM_GEMV`` whose internal sequencer replays
        this pattern ``k`` times without per-step C/A commands.
        """
        groups = -(-num_banks // 4)
        # Group i can start no earlier than i*tRRD_L, and each window of 30
        # cycles (tFAW) admits one group of four.
        act_spread = (groups - 1) * max(self.timing.tRRD_L,
                                        self.timing.tFAW // 4 + 1)
        mac = self.pim_timing.dotprod_cycles_per_page(self.org.page_bytes)
        return act_spread + self.timing.tRCD + mac + self.timing.tRP

    def _issue_gemv(self, cmd: Command, earliest: float) -> IssueRecord:
        """Composite GEMV: ``k`` dot-product waves + result readout."""
        if self.global_vector_row is None:
            raise StructuralHazard("PIM_GEMV with empty global vector buffer")
        target = BufferTarget.PIM if self.dual_row_buffer else BufferTarget.MEM
        t = max(earliest, self._ca_free_at)
        # Must wait until the PIM buffers are free (previous wave precharged).
        open_banks = [b for b in self.banks if b.open_row(target) is not None]
        for bank in open_banks:
            t = max(t, bank.earliest_precharge(target, t))
        start = self._book_ca(t, ca_bus_cycles(cmd.ctype))
        for bank in open_banks:
            bank.precharge(target, start)
        wave = self.gemv_wave_duration(self.org.banks_per_channel)
        # Successive waves pipeline: the next group of activates can begin
        # while the previous wave's MAC drains, bounded by the row cycle.
        wave_pitch = max(self.pim_timing.dotprod_cycles_per_page(self.org.page_bytes),
                         self.timing.row_cycle // 2)
        compute_end = start + wave + (cmd.k - 1) * wave_pitch
        burst_start = self._book_data(compute_end,
                                      self.pim_timing.rdresult_cycles)
        end = burst_start + self.pim_timing.rdresult_cycles
        if not self.dual_row_buffer:
            for bank in self.banks:
                bank.begin_pim_hold(end)
        self.stats.add("pim.gemv_waves", cmd.k)
        # The internal sequencer activates one row in every bank per wave;
        # charge the typed activation counter the all-bank total so the
        # composite and fine-grained encodings account identically.
        self.stats.add("dram.row_activations", cmd.k * len(self.banks))
        return IssueRecord(cmd, start, self._ca_free_at, end)

    # ------------------------------------------------------------------
    # Batch replay (fast path) support.
    # ------------------------------------------------------------------

    def state_key(self, base: float) -> tuple:
        """Translation-invariant digest of the channel's timing state.

        All absolute times are expressed relative to ``base``; two channel
        states whose keys are equal behave identically going forward, up to
        the time shift between them.  This is what the controller's
        :meth:`~repro.dram.controller.MemoryController.drain_fast` uses to
        recognize periodic command runs.
        """
        horizon = self._ca_free_at
        # tFAW entries older than horizon - tFAW can never block again
        # (every window check happens at or after the C/A frontier).
        faw_floor = horizon - self.timing.tFAW
        parts = [
            horizon - base,
            tuple(t - base for t in self._act_window if t > faw_floor),
            tuple((s - base, e - base) for s, e in self._data_busy),
            self.global_vector_row,
        ]
        for bank in self.banks:
            parts.append(bank.state_key(base, horizon))
        return tuple(parts)

    def time_shift(self, dt: float) -> None:
        """Advance every stored absolute time by ``dt`` cycles."""
        self._ca_free_at += dt
        self._act_window = deque(t + dt for t in self._act_window)
        self._data_busy = [(s + dt, e + dt) for s, e in self._data_busy]
        for bank in self.banks:
            bank.time_shift(dt)

    def issue_run(self, reps: int, period: float,
                  ca_busy_per_rep: float = 0.0,
                  stat_deltas: Optional[dict] = None) -> None:
        """Arithmetically replay ``reps`` repetitions of a verified run.

        Instead of issuing each command of a homogeneous run (a GEMV wave,
        a GWRITE burst, an RD/WR burst, ...), advance all clocks, the tFAW
        window, the data-bus bookings and the busy/stat counters by the
        run's measured per-repetition ``period`` and stat deltas.  Callers
        (``drain_fast``) are responsible for having verified — via
        :meth:`state_key` equality — that the channel state is periodic.
        """
        if reps <= 0:
            return
        dt = reps * period
        self.time_shift(dt)
        self._ca_busy_cycles += reps * ca_busy_per_rep
        if stat_deltas:
            for name, amount in stat_deltas.items():
                self.stats.add(name, amount * reps)

    def _issue_pim_pre(self, cmd: Command, earliest: float) -> IssueRecord:
        """Precharge PIM row buffers (all banks or one)."""
        target = BufferTarget.PIM if self.dual_row_buffer else BufferTarget.MEM
        banks = ([self.banks[cmd.bank]] if cmd.bank is not None else self.banks)
        t = earliest
        for bank in banks:
            if bank.open_row(target) is not None:
                t = max(t, bank.earliest_precharge(target, t))
        t = max(t, self._ca_free_at)
        start = self._book_ca(t, ca_bus_cycles(cmd.ctype))
        for bank in banks:
            bank.precharge(target, start)
        return IssueRecord(cmd, start, self._ca_free_at,
                           start + self.timing.tRP)
