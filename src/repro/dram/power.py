"""DRAM power model (Micron-style), including PIM compute power.

Reproduces the Table 5 methodology: the paper measures average memory
power with Micron's DDR power model (as shipped with DRAMsim3), assumes an
all-bank PIM computation command draws 4x the power of a read command, and
charges extra background power for holding the additional row buffer's
state.  NPU-only HBM averages 364.1 mW per channel; the dual-row-buffer
PIM averages 634.8 mW — a 1.8x increase that, combined with the 2.4x
speedup, nets a ~25% energy reduction.

The model is an IDD-current energy accounting: each command class has an
energy cost; background power accrues with time; average power is total
energy over elapsed time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.dram.channel import IssueRecord
from repro.dram.commands import CommandType


@dataclass(frozen=True)
class PowerParams:
    """Energy/power constants per channel (calibrated, Micron-style).

    Values are chosen so that a representative inference-serving command
    mix reproduces Table 5's per-channel averages.  Units: nanojoules per
    command for event energies, milliwatts for background power.
    """

    background_mw: float = 120.0
    #: extra background power to retain a second row-buffer's state
    dual_buffer_background_mw: float = 48.0
    act_pre_nj: float = 1.1       #: one activate/precharge pair
    read_burst_nj: float = 1.35   #: one read burst (column access + I/O)
    write_burst_nj: float = 1.45
    #: all-bank PIM dot-product wave: 4x a read burst, times the banks
    pim_compute_multiplier: float = 4.0
    refresh_nj: float = 18.0
    gwrite_nj: float = 2.2
    rdresult_nj: float = 1.35

    def pim_wave_nj(self, banks: int) -> float:
        """Energy of one all-bank dot-product wave."""
        return self.pim_compute_multiplier * self.read_burst_nj * banks / 8.0


@dataclass
class PowerReport:
    """Energy/power summary over one simulated window."""

    elapsed_cycles: float
    background_mw: float
    event_energy_nj: float

    @property
    def elapsed_seconds(self) -> float:
        """Elapsed wall time at the 1 GHz memory clock."""
        return self.elapsed_cycles * 1e-9

    @property
    def background_energy_nj(self) -> float:
        # mW * s = mJ; convert to nJ.
        return self.background_mw * self.elapsed_seconds * 1e6

    @property
    def total_energy_nj(self) -> float:
        return self.background_energy_nj + self.event_energy_nj

    @property
    def average_power_mw(self) -> float:
        """Average power in milliwatts over the window."""
        if self.elapsed_cycles <= 0:
            return self.background_mw
        return self.total_energy_nj / (self.elapsed_seconds * 1e6)


class PowerModel:
    """Accumulates command energies from issue records.

    Parameters
    ----------
    dual_row_buffer:
        Charges the extra row-buffer background power when ``True``.
    banks_per_channel:
        Scale factor for all-bank PIM compute energy.
    """

    def __init__(self, params: Optional[PowerParams] = None,
                 dual_row_buffer: bool = False,
                 banks_per_channel: int = 32) -> None:
        self.params = params or PowerParams()
        self.dual_row_buffer = dual_row_buffer
        self.banks_per_channel = banks_per_channel

    def command_energy_nj(self, record: IssueRecord) -> float:
        """Energy attributed to one issued command."""
        p = self.params
        ctype = record.command.ctype
        if ctype is CommandType.ACT:
            return p.act_pre_nj
        if ctype is CommandType.PRE:
            return 0.0  # folded into the ACT/PRE pair cost
        if ctype is CommandType.RD:
            return p.read_burst_nj
        if ctype is CommandType.WR:
            return p.write_burst_nj
        if ctype is CommandType.REF:
            return p.refresh_nj
        if ctype is CommandType.PIM_GWRITE:
            return p.gwrite_nj
        if ctype is CommandType.PIM_ACTIVATION:
            return p.act_pre_nj * len(record.command.banks)
        if ctype is CommandType.PIM_DOTPRODUCT:
            return p.pim_wave_nj(self.banks_per_channel)
        if ctype is CommandType.PIM_RDRESULT:
            return p.rdresult_nj
        if ctype is CommandType.PIM_GEMV:
            waves = max(1, record.command.k)
            # The composite command performs its own activations.
            act = p.act_pre_nj * self.banks_per_channel * waves / 4.0
            return waves * p.pim_wave_nj(self.banks_per_channel) + act + p.rdresult_nj
        if ctype is CommandType.PIM_PRECHARGE:
            return 0.0
        if ctype is CommandType.PIM_HEADER:
            return 0.0
        raise ValueError(f"unknown command type {ctype}")

    def report(self, records: Iterable[IssueRecord],
               elapsed_cycles: Optional[float] = None
               ) -> PowerReport:
        """Summarize energy/power over the given records.

        ``elapsed_cycles`` defaults to the completion time of the last
        command.
        """
        records = list(records)
        event_energy = sum(self.command_energy_nj(r) for r in records)
        if elapsed_cycles is None:
            elapsed_cycles = max((r.complete_time for r in records), default=0.0)
        background = self.params.background_mw
        if self.dual_row_buffer:
            background += self.params.dual_buffer_background_mw
        return PowerReport(
            elapsed_cycles=elapsed_cycles,
            background_mw=background,
            event_energy_nj=event_energy,
        )
