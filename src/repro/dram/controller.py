"""Per-channel memory controller with MEM/PIM command interleaving.

Paper §5.3: each PIM channel has its own memory controller holding separate
queues for regular memory read/write commands and PIM commands.  The
controller *prioritizes PIM commands* — their issuing delay is larger but
their C/A bandwidth share is small, so interleaving them first lets both
flows proceed without starving either.  It is also responsible for not
letting a refresh land in the middle of a GEMV: the ``PIM_HEADER`` command
announces the GEMV's dimensionality so the controller can compute its
duration and, if the GEMV would collide with the upcoming refresh deadline,
refresh *early* instead (the paper's stated purpose of PIM_HEADER).

Without headers (the baseline fine-grained command mode), a refresh may
preempt a GEMV mid-flight; the controller then charges the re-activation
penalty to the GEMV, which is one of the overheads the composite ISA
removes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.dram.channel import Channel, IssueRecord
from repro.dram.commands import Command, CommandType
from repro.sim.stats import StatsRegistry


@dataclass
class ControllerConfig:
    """Scheduling policy knobs.

    Attributes
    ----------
    pim_priority:
        Prefer the PIM queue when both queues have issuable commands
        (paper default ``True``).
    header_aware_refresh:
        Use PIM_HEADER duration estimates to hoist refreshes out of GEMV
        windows (NeuPIMs behaviour).  When ``False``, refreshes fire on
        their tREFI deadline and may interrupt a GEMV.
    refresh_enabled:
        Disable to measure pure command streams (used in unit tests).
    """

    pim_priority: bool = True
    header_aware_refresh: bool = True
    refresh_enabled: bool = True


class MemoryController:
    """Drains MEM and PIM command queues onto one channel.

    The controller runs in "batch replay" style: callers enqueue the
    command streams produced by the compiler / PIM engine and then call
    :meth:`drain`, which issues everything in a legal, policy-driven
    order and returns the per-command issue records.
    """

    def __init__(self, channel: Channel,
                 config: Optional[ControllerConfig] = None,
                 stats: Optional[StatsRegistry] = None) -> None:
        self.channel = channel
        self.config = config or ControllerConfig()
        self.stats = stats or channel.stats
        self.mem_queue: Deque[Command] = deque()
        self.pim_queue: Deque[Command] = deque()
        self._next_refresh = float(channel.timing.tREFI)
        self._pending_gemv_cycles = 0.0
        self.records: List[IssueRecord] = []
        self._clock = 0.0
        #: completion frontier of the dependent PIM flow (GWRITE -> ACT ->
        #: DOTPROD -> RDRESULT must execute in order).
        self._pim_frontier = 0.0
        #: activations of the in-flight fine-grained wave; a refresh closes
        #: all row buffers, so the controller must replay these afterwards.
        self._open_pim_acts: List[Command] = []
        #: rows opened by regular ACTs (bank -> row), also replayed after
        #: a refresh so queued column commands find their rows open.
        self._open_mem_rows: dict = {}

    # ------------------------------------------------------------------

    def enqueue_mem(self, commands) -> None:
        """Append regular memory commands (in program order)."""
        self.mem_queue.extend(commands)

    def enqueue_pim(self, commands) -> None:
        """Append PIM commands (in program order)."""
        self.pim_queue.extend(commands)

    @property
    def now(self) -> float:
        return self._clock

    # ------------------------------------------------------------------

    def _estimate_duration(self, cmd: Command) -> float:
        """Upper-bound duration estimate used for refresh avoidance."""
        timing = self.channel.timing
        pim = self.channel.pim_timing
        if cmd.ctype is CommandType.PIM_GEMV:
            wave = self.channel.gemv_wave_duration(
                self.channel.org.banks_per_channel)
            return wave * cmd.k + pim.rdresult_cycles
        if cmd.ctype is CommandType.PIM_GWRITE:
            return pim.gwrite_cycles
        if cmd.ctype is CommandType.PIM_DOTPRODUCT:
            return pim.dotprod_cycles_per_page(self.channel.org.page_bytes)
        if cmd.ctype is CommandType.PIM_ACTIVATION:
            return timing.tRCD
        return timing.tCL + timing.tBL

    def _maybe_refresh(self, next_cmd: Optional[Command]) -> None:
        """Issue a refresh if the deadline passed or a GEMV would cross it."""
        if not self.config.refresh_enabled:
            return
        due = self._clock >= self._next_refresh
        hoist = False
        if (not due and next_cmd is not None and self.config.header_aware_refresh
                and self._pending_gemv_cycles > 0):
            # A header announced a GEMV of known duration: if it cannot
            # finish before the refresh deadline, refresh early.
            hoist = self._clock + self._pending_gemv_cycles > self._next_refresh
        if due or hoist:
            record = self.channel.issue(Command(CommandType.REF),
                                        earliest=self._clock)
            self.records.append(record)
            self._clock = max(self._clock, record.complete_time)
            self._next_refresh = record.issue_time + self.channel.timing.tREFI
            self.stats.add("refresh.issued")
            if hoist:
                self.stats.add("refresh.hoisted")
            if self._open_pim_acts:
                # The refresh closed the PIM row buffers mid-wave: replay
                # the activations so the pending dot-product can proceed.
                replay = list(self._open_pim_acts)
                self._open_pim_acts.clear()
                for act in replay:
                    rec = self.channel.issue(act, earliest=self._clock)
                    self.records.append(rec)
                    self._pim_frontier = max(self._pim_frontier,
                                             rec.complete_time)
                    self._open_pim_acts.append(act)
                self.stats.add("refresh.act_replays", len(replay))
            if self._open_mem_rows:
                # Likewise restore rows the MEM flow had open.
                for bank, row in sorted(self._open_mem_rows.items()):
                    rec = self.channel.issue(
                        Command(CommandType.ACT, bank=bank, row=row),
                        earliest=self._clock)
                    self.records.append(rec)
                self.stats.add("refresh.act_replays",
                               len(self._open_mem_rows))

    def _select_queue(self) -> Optional[Deque[Command]]:
        """Pick the queue whose head can issue first.

        PIM commands are gated by the PIM flow's completion frontier (the
        GWRITE -> ACTIVATION -> DOTPRODUCT -> RDRESULT chain is dependent);
        regular memory commands only wait for the C/A bus.  The queue with
        the earlier candidate issue time wins; PIM wins ties — the paper's
        PIM-priority policy.
        """
        if not self.pim_queue and not self.mem_queue:
            return None
        if not self.pim_queue:
            return self.mem_queue
        if not self.mem_queue:
            return self.pim_queue
        if not self.channel.dual_row_buffer:
            # Blocked mode: the single row buffer cannot serve both flows,
            # so the PIM phase drains completely before memory commands.
            return self.pim_queue
        pim_candidate = max(self._pim_frontier, self.channel.ca_free_at)
        mem_candidate = self.channel.ca_free_at
        if self.config.pim_priority:
            return self.pim_queue if pim_candidate <= mem_candidate else self.mem_queue
        return self.mem_queue if mem_candidate <= pim_candidate else self.pim_queue

    def step(self) -> Optional[IssueRecord]:
        """Issue one command; returns its record or ``None`` when drained."""
        queue = self._select_queue()
        if queue is None:
            return None
        cmd = queue[0]
        self._maybe_refresh(cmd)
        queue.popleft()

        interrupted = False
        earliest = self._pim_frontier if cmd.is_pim else 0.0
        if (cmd.ctype is CommandType.PIM_GEMV
                and not self.config.header_aware_refresh
                and self.config.refresh_enabled):
            # Baseline behaviour: a refresh deadline inside the GEMV window
            # preempts it; charge a re-activation penalty.
            duration = self._estimate_duration(cmd)
            if max(earliest, self.channel.ca_free_at) + duration > self._next_refresh:
                interrupted = True

        record = self.channel.issue(cmd, earliest=earliest)
        self._clock = max(self._clock, record.issue_time)
        if cmd.ctype is CommandType.PIM_HEADER:
            self._pending_gemv_cycles = self._estimate_duration(
                Command(CommandType.PIM_GEMV, k=max(1, cmd.k)))
        elif cmd.ctype is CommandType.PIM_GEMV:
            self._pending_gemv_cycles = 0.0

        if interrupted:
            penalty = self.channel.timing.tRFC + self.channel.timing.tRCD
            record = IssueRecord(record.command, record.issue_time,
                                 record.bus_release,
                                 record.complete_time + penalty)
            self.stats.add("refresh.gemv_interrupted")

        if cmd.ctype is CommandType.PIM_ACTIVATION:
            self._open_pim_acts.append(cmd)
        elif cmd.ctype in (CommandType.PIM_PRECHARGE, CommandType.PIM_GEMV):
            self._open_pim_acts.clear()
        elif cmd.ctype is CommandType.ACT:
            self._open_mem_rows[cmd.bank] = cmd.row
        elif cmd.ctype is CommandType.PRE:
            self._open_mem_rows.pop(cmd.bank, None)

        if cmd.is_pim and cmd.ctype is not CommandType.PIM_HEADER:
            self._pim_frontier = max(self._pim_frontier, record.complete_time)
        self.records.append(record)
        return record

    def drain(self) -> List[IssueRecord]:
        """Issue all queued commands; returns the accumulated records."""
        while self.step() is not None:
            pass
        return self.records

    @property
    def finish_time(self) -> float:
        """Completion time of the last finished command."""
        return max((r.complete_time for r in self.records), default=0.0)
