"""Per-channel memory controller with MEM/PIM command interleaving.

Paper §5.3: each PIM channel has its own memory controller holding separate
queues for regular memory read/write commands and PIM commands.  The
controller *prioritizes PIM commands* — their issuing delay is larger but
their C/A bandwidth share is small, so interleaving them first lets both
flows proceed without starving either.  It is also responsible for not
letting a refresh land in the middle of a GEMV: the ``PIM_HEADER`` command
announces the GEMV's dimensionality so the controller can compute its
duration and, if the GEMV would collide with the upcoming refresh deadline,
refresh *early* instead (the paper's stated purpose of PIM_HEADER).

Without headers (the baseline fine-grained command mode), a refresh may
preempt a GEMV mid-flight; the controller then charges the re-activation
penalty to the GEMV, which is one of the overheads the composite ISA
removes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from typing import Deque, Dict, List, Optional, Tuple

from repro.dram.channel import Channel, IssueRecord
from repro.dram.commands import BufferTarget, Command, CommandType
from repro.sim.stats import StatsRegistry


@dataclass
class ReplaySummary:
    """Accounting of a :meth:`MemoryController.drain_fast` invocation.

    ``stepped`` commands went through the ordinary per-command
    :meth:`MemoryController.step` path; ``replayed`` commands were advanced
    arithmetically as part of ``runs`` verified periodic runs.
    """

    stepped: int = 0
    replayed: int = 0
    runs: int = 0

    @property
    def total(self) -> int:
        return self.stepped + self.replayed


@dataclass
class _RunBoundary:
    """Bookkeeping for one observed state during the run hunt."""

    pops: int                    #: queue commands popped when observed
    clock: float                 #: controller clock when observed
    records_len: int             #: issue records accumulated when observed
    ca_busy: float               #: channel C/A busy cycles when observed
    refresh_rel: Optional[float]  #: deadline minus clock (None = disabled)
    next_refresh: float          #: absolute refresh deadline when observed
    counters: Tuple[Dict[str, float], ...] = field(default_factory=tuple)


@dataclass
class ControllerConfig:
    """Scheduling policy knobs.

    Attributes
    ----------
    pim_priority:
        Prefer the PIM queue when both queues have issuable commands
        (paper default ``True``).
    header_aware_refresh:
        Use PIM_HEADER duration estimates to hoist refreshes out of GEMV
        windows (NeuPIMs behaviour).  When ``False``, refreshes fire on
        their tREFI deadline and may interrupt a GEMV.
    refresh_enabled:
        Disable to measure pure command streams (used in unit tests).
    """

    pim_priority: bool = True
    header_aware_refresh: bool = True
    refresh_enabled: bool = True


class MemoryController:
    """Drains MEM and PIM command queues onto one channel.

    The controller runs in "batch replay" style: callers enqueue the
    command streams produced by the compiler / PIM engine and then call
    :meth:`drain`, which issues everything in a legal, policy-driven
    order and returns the per-command issue records.
    """

    def __init__(self, channel: Channel,
                 config: Optional[ControllerConfig] = None,
                 stats: Optional[StatsRegistry] = None) -> None:
        self.channel = channel
        self.config = config or ControllerConfig()
        self.stats = stats or channel.stats
        self.mem_queue: Deque[Command] = deque()
        self.pim_queue: Deque[Command] = deque()
        self._next_refresh = float(channel.timing.tREFI)
        self._pending_gemv_cycles = 0.0
        self.records: List[IssueRecord] = []
        self._clock = 0.0
        #: completion frontier of the dependent PIM flow (GWRITE -> ACT ->
        #: DOTPROD -> RDRESULT must execute in order).
        self._pim_frontier = 0.0
        #: activations of the in-flight fine-grained wave; a refresh closes
        #: all row buffers, so the controller must replay these afterwards.
        self._open_pim_acts: List[Command] = []
        #: rows opened by regular ACTs (bank -> row), also replayed after
        #: a refresh so queued column commands find their rows open.
        self._open_mem_rows: dict = {}
        #: completion frontier contributed by arithmetically replayed runs
        #: (their per-command records are not materialized).
        self._replay_finish = 0.0
        #: accounting of the most recent :meth:`drain_fast` call.
        self.replay = ReplaySummary()

    # ------------------------------------------------------------------

    def enqueue_mem(self, commands) -> None:
        """Append regular memory commands (in program order)."""
        self.mem_queue.extend(commands)

    def enqueue_pim(self, commands) -> None:
        """Append PIM commands (in program order)."""
        self.pim_queue.extend(commands)

    @property
    def now(self) -> float:
        return self._clock

    # ------------------------------------------------------------------

    def _estimate_duration(self, cmd: Command) -> float:
        """Upper-bound duration estimate used for refresh avoidance."""
        timing = self.channel.timing
        pim = self.channel.pim_timing
        if cmd.ctype is CommandType.PIM_GEMV:
            wave = self.channel.gemv_wave_duration(
                self.channel.org.banks_per_channel)
            return wave * cmd.k + pim.rdresult_cycles
        if cmd.ctype is CommandType.PIM_GWRITE:
            return pim.gwrite_cycles
        if cmd.ctype is CommandType.PIM_DOTPRODUCT:
            return pim.dotprod_cycles_per_page(self.channel.org.page_bytes)
        if cmd.ctype is CommandType.PIM_ACTIVATION:
            return timing.tRCD
        return timing.tCL + timing.tBL

    def _maybe_refresh(self, next_cmd: Optional[Command]) -> None:
        """Issue a refresh if the deadline passed or a GEMV would cross it."""
        if not self.config.refresh_enabled:
            return
        due = self._clock >= self._next_refresh
        hoist = False
        if (not due and next_cmd is not None and self.config.header_aware_refresh
                and self._pending_gemv_cycles > 0):
            # A header announced a GEMV of known duration: if it cannot
            # finish before the refresh deadline, refresh early.
            hoist = self._clock + self._pending_gemv_cycles > self._next_refresh
        if due or hoist:
            record = self.channel.issue(Command(CommandType.REF),
                                        earliest=self._clock)
            self.records.append(record)
            self._clock = max(self._clock, record.complete_time)
            self._next_refresh = record.issue_time + self.channel.timing.tREFI
            self.stats.add("refresh.issued")
            if hoist:
                self.stats.add("refresh.hoisted")
            if self._open_pim_acts:
                # The refresh closed the PIM row buffers mid-wave: replay
                # the activations so the pending dot-product can proceed.
                replay = list(self._open_pim_acts)
                self._open_pim_acts.clear()
                for act in replay:
                    rec = self.channel.issue(act, earliest=self._clock)
                    self.records.append(rec)
                    self._pim_frontier = max(self._pim_frontier,
                                             rec.complete_time)
                    self._open_pim_acts.append(act)
                self.stats.add("refresh.act_replays", len(replay))
            if self._open_mem_rows:
                # Likewise restore rows the MEM flow had open.
                for bank, row in sorted(self._open_mem_rows.items()):
                    rec = self.channel.issue(
                        Command(CommandType.ACT, bank=bank, row=row),
                        earliest=self._clock)
                    self.records.append(rec)
                self.stats.add("refresh.act_replays",
                               len(self._open_mem_rows))

    def _select_queue(self) -> Optional[Deque[Command]]:
        """Pick the queue whose head can issue first.

        PIM commands are gated by the PIM flow's completion frontier (the
        GWRITE -> ACTIVATION -> DOTPRODUCT -> RDRESULT chain is dependent);
        regular memory commands only wait for the C/A bus.  The queue with
        the earlier candidate issue time wins; PIM wins ties — the paper's
        PIM-priority policy.
        """
        if not self.pim_queue and not self.mem_queue:
            return None
        if not self.pim_queue:
            return self.mem_queue
        if not self.mem_queue:
            return self.pim_queue
        if not self.channel.dual_row_buffer:
            # Blocked mode: the single row buffer cannot serve both flows,
            # so the PIM phase drains completely before memory commands.
            return self.pim_queue
        pim_candidate = max(self._pim_frontier, self.channel.ca_free_at)
        mem_candidate = self.channel.ca_free_at
        if self.config.pim_priority:
            return self.pim_queue if pim_candidate <= mem_candidate else self.mem_queue
        return self.mem_queue if mem_candidate <= pim_candidate else self.pim_queue

    def step(self) -> Optional[IssueRecord]:
        """Issue one command; returns its record or ``None`` when drained."""
        queue = self._select_queue()
        if queue is None:
            return None
        cmd = queue[0]
        self._maybe_refresh(cmd)
        queue.popleft()

        interrupted = False
        earliest = self._pim_frontier if cmd.is_pim else 0.0
        if (cmd.ctype is CommandType.PIM_GEMV
                and not self.config.header_aware_refresh
                and self.config.refresh_enabled):
            # Baseline behaviour: a refresh deadline inside the GEMV window
            # preempts it; charge a re-activation penalty.
            duration = self._estimate_duration(cmd)
            if max(earliest, self.channel.ca_free_at) + duration > self._next_refresh:
                interrupted = True

        record = self.channel.issue(cmd, earliest=earliest)
        self._clock = max(self._clock, record.issue_time)
        if cmd.ctype is CommandType.PIM_HEADER:
            self._pending_gemv_cycles = self._estimate_duration(
                Command(CommandType.PIM_GEMV, k=max(1, cmd.k)))
        elif cmd.ctype is CommandType.PIM_GEMV:
            self._pending_gemv_cycles = 0.0

        if interrupted:
            penalty = self.channel.timing.tRFC + self.channel.timing.tRCD
            record = IssueRecord(record.command, record.issue_time,
                                 record.bus_release,
                                 record.complete_time + penalty)
            self.stats.add("refresh.gemv_interrupted")

        if cmd.ctype is CommandType.PIM_ACTIVATION:
            self._open_pim_acts.append(cmd)
        elif cmd.ctype in (CommandType.PIM_PRECHARGE, CommandType.PIM_GEMV):
            self._open_pim_acts.clear()
        elif cmd.ctype is CommandType.ACT:
            self._open_mem_rows[cmd.bank] = cmd.row
        elif cmd.ctype is CommandType.PRE:
            self._open_mem_rows.pop(cmd.bank, None)

        if cmd.is_pim and cmd.ctype is not CommandType.PIM_HEADER:
            self._pim_frontier = max(self._pim_frontier, record.complete_time)
        self.records.append(record)
        return record

    def drain(self) -> List[IssueRecord]:
        """Issue all queued commands; returns the accumulated records."""
        while self.step() is not None:
            pass
        return self.records

    # ------------------------------------------------------------------
    # Batch-replay fast path.
    # ------------------------------------------------------------------

    def drain_fast(self, hunt_budget: int = 128) -> List[IssueRecord]:
        """Drain like :meth:`drain`, replaying periodic runs arithmetically.

        The command-level simulation is time-translation invariant: every
        timing rule depends only on time *differences* (the refresh deadline
        is folded in as a clock-relative offset).  So while draining, the
        controller digests its full timing state — clocks, per-bank row
        buffers, the tFAW window, data-bus bookings, refresh deadline — into
        a translation-invariant key before each command.  When a key recurs,
        the commands issued between the two occurrences form one period of a
        homogeneous run (a fine-grained GEMV wave train, a GWRITE or RD/WR
        burst, a multi-request composite stream — including any refreshes
        the period contains), and every remaining structurally identical
        repetition still in the queue is replayed in one arithmetic step via
        :meth:`~repro.dram.channel.Channel.issue_run`.

        Equivalence with :meth:`drain`: finish time, refresh counts, C/A
        busy cycles and all per-command-type stats are bit-identical.  Only
        the per-command :class:`IssueRecord` list is abridged — replayed
        commands do not materialize records (that is where the speedup
        comes from); :attr:`replay` reports how many were skipped.

        ``hunt_budget`` bounds how many state digests may be taken without
        a successful replay before the hunt is abandoned, so aperiodic
        streams (e.g. RD runs that outpace the data bus and grow a booked-
        burst backlog) degrade to near-:meth:`drain` cost.
        """
        self.replay = ReplaySummary()
        history: Dict[tuple, _RunBoundary] = {}
        log: List[Command] = []
        hunting = hunt_budget > 0
        observations = 0
        # State digests are only taken when the queue head matches an
        # anchor signature (re-picked after enough misses), so steady runs
        # pay one digest per period instead of one per command.
        anchor: Optional[tuple] = None
        misses = 0
        while True:
            if hunting:
                queue = self._single_queue()
                # Positions with a fine-grained wave in flight cannot be
                # replay boundaries (the pending activates would go stale),
                # so they neither observe nor count toward re-anchoring.
                if (queue is not None and len(queue) >= 2
                        and not self._open_pim_acts):
                    head = queue[0]
                    sig = (head.ctype, head.bank, head.banks, head.k)
                    if anchor is None or misses > self._REANCHOR_AFTER:
                        anchor = sig
                        misses = 0
                    if sig == anchor:
                        misses = 0
                        observations += 1
                        if self._observe_boundary(queue, history, log):
                            history.clear()
                            log.clear()
                            anchor = None
                            observations = 0
                            continue
                    else:
                        misses += 1
                if observations >= hunt_budget or len(log) >= self._LOG_CAP:
                    hunting = False
                    history.clear()
                    log.clear()
            record = self.step()
            if record is None:
                return self.records
            self.replay.stepped += 1
            if hunting:
                log.append(record.command)

    #: Consecutive anchor misses (at eligible boundaries) tolerated before
    #: the hunt re-anchors on the current queue head (covers prefixes like
    #: a GWRITE burst ahead of a wave train).
    _REANCHOR_AFTER = 4

    #: Hard cap on the popped-command log retained while hunting.
    _LOG_CAP = 1 << 16

    def _single_queue(self) -> Optional[Deque[Command]]:
        """The active queue when exactly one has pending commands."""
        if self.pim_queue and not self.mem_queue:
            return self.pim_queue
        if self.mem_queue and not self.pim_queue:
            return self.mem_queue
        return None

    def _state_key(self, pim_run: bool) -> tuple:
        """Translation-invariant digest of the controller state.

        The refresh deadline is deliberately *not* part of the key: two
        states that match on this key behave identically as long as no
        refresh fires, which is what the bounded (deadline-limited) skip
        exploits.  The deadline offset is kept separately per boundary and
        compared on a hit — equal offsets upgrade the match to an exact
        recurrence (refreshes are then part of the period and the skip is
        unbounded).
        """
        base = self._clock
        return (
            pim_run,
            # A frontier behind the C/A frontier is dead: every PIM issue
            # path max-combines the two, so clamp for the digest.
            max(self._pim_frontier, self.channel.ca_free_at) - base,
            self._pending_gemv_cycles,
            tuple((c.ctype, c.bank, c.banks, c.k)
                  for c in self._open_pim_acts),
            tuple(sorted(self._open_mem_rows.items())),
            self.channel.state_key(base),
        )

    def _stat_registries(self) -> List[StatsRegistry]:
        registries = [self.stats]
        if self.channel.stats is not self.stats:
            registries.append(self.channel.stats)
        return registries

    def counter_view(self) -> Dict[str, float]:
        """Typed counter vector measured from the command-level simulation.

        Maps the controller/channel stat registries onto the counter
        taxonomy of :mod:`repro.counters.report` (the cycle tier of the
        refutation harness).  GEMV issue slots count dot-product waves
        whether they were issued as explicit ``PIM_DOTPRODUCT`` commands
        (fine-grained encoding) or sequenced inside ``PIM_GEMV``
        (composite encoding); refresh stalls count issued ``REF``
        commands.  Because every constituent stat is charged through
        :meth:`~repro.dram.channel.Channel.issue` and scaled
        arithmetically by the :meth:`drain_fast` replay deltas, the view
        is bit-identical between :meth:`drain` and :meth:`drain_fast`.
        """
        totals: Dict[str, float] = {}
        for registry in self._stat_registries():
            for name, value in registry.as_dict().items():
                totals[name] = totals.get(name, 0.0) + value
        return {
            "dram.ca_busy_cycles": float(self.channel.ca_busy_cycles),
            "dram.refresh_stalls": totals.get("refresh.issued", 0.0),
            "dram.row_activations": totals.get("dram.row_activations", 0.0),
            "pim.gemv_issue_slots": (totals.get("pim.gemv_waves", 0.0)
                                     + totals.get("cmd.PIM_DOTPRODUCT", 0.0)),
        }

    def _observe_boundary(self, queue: Deque[Command],
                          history: Dict[tuple, _RunBoundary],
                          log: List[Command]) -> bool:
        """Snapshot the state before a pop; replay a run when it recurs.

        Returns ``True`` when a run was replayed (the caller restarts the
        hunt with fresh history), ``False`` to proceed with a normal step.
        """
        key = self._state_key(queue is self.pim_queue)
        refresh_rel = (self._next_refresh - self._clock
                       if self.config.refresh_enabled else None)
        boundary = _RunBoundary(
            pops=len(log), clock=self._clock, records_len=len(self.records),
            ca_busy=self.channel.ca_busy_cycles,
            refresh_rel=refresh_rel, next_refresh=self._next_refresh,
            counters=tuple(r.as_dict() for r in self._stat_registries()),
        )
        previous = history.get(key)
        if previous is None:
            history[key] = boundary
            return False
        period = self._clock - previous.clock
        block = log[previous.pops:]
        if (period <= 0 or not block or self._open_pim_acts
                or not self._replay_hazard_free(queue is self.pim_queue)):
            history[key] = boundary
            return False
        reps = self._count_matching_reps(queue, block)
        if reps > 0:
            if previous.refresh_rel == refresh_rel:
                # Exact recurrence: any refreshes are part of the period,
                # so the deadline shifts along with the clocks.
                self._apply_run(queue, len(block), reps, period,
                                previous, boundary, shift_refresh=True)
                return True
            if previous.next_refresh == self._next_refresh:
                # Deadline-agnostic recurrence (no refresh fired during the
                # probe): skip only repetitions that provably finish every
                # refresh-sensitive check before the (unmoved) deadline.
                reps = min(reps, self._deadline_limited_reps(period, block))
                if reps > 0:
                    self._apply_run(queue, len(block), reps, period,
                                    previous, boundary, shift_refresh=False)
                    return True
        history[key] = boundary
        return False

    def _deadline_limited_reps(self, period: float,
                               block: List[Command]) -> int:
        """Repetitions that stay clear of the refresh deadline.

        Every refresh-sensitive comparison inside a skipped repetition
        ``j`` involves a time below ``clock + (j+1)*period + pending``,
        where ``pending`` bounds the announced-GEMV hoist and interrupt
        look-ahead; requiring that to stay below the deadline is (slightly
        conservatively) safe, and the crossing repetition is then stepped
        through the ordinary slow path.
        """
        pending = self._pending_gemv_cycles
        for cmd in block:
            if cmd.ctype in (CommandType.PIM_HEADER, CommandType.PIM_GEMV):
                pending = max(pending, self._estimate_duration(
                    Command(CommandType.PIM_GEMV, k=max(1, cmd.k))))
        headroom = self._next_refresh - self._clock - pending
        reps = int(headroom // period)
        while reps > 0 and self._clock + reps * period + pending >= self._next_refresh:
            reps -= 1
        return reps

    def _replay_hazard_free(self, pim_run: bool) -> bool:
        """Row values of replayed commands may differ across repetitions
        (timing is row-independent), so forbid replay while the *opposite*
        row buffers hold rows a replayed activate could collide with."""
        if not self.channel.dual_row_buffer:
            return True
        other = BufferTarget.MEM if pim_run else BufferTarget.PIM
        return all(bank.open_row(other) is None
                   for bank in self.channel.banks)

    @staticmethod
    def _count_matching_reps(queue: Deque[Command],
                             block: List[Command]) -> int:
        """Full repetitions of ``block`` at the head of ``queue``.

        Commands match structurally — row and meta are timing-irrelevant
        (rows cycle per wave, tags vary per request) and are excluded.
        """
        length = len(block)
        full = len(queue) // length
        for index, cmd in enumerate(islice(queue, full * length)):
            ref = block[index % length]
            if (cmd.ctype is not ref.ctype or cmd.bank != ref.bank
                    or cmd.banks != ref.banks or cmd.k != ref.k):
                return index // length
        return full

    def _apply_run(self, queue: Deque[Command], length: int, reps: int,
                   period: float, previous: _RunBoundary,
                   current: _RunBoundary, shift_refresh: bool) -> None:
        """Advance state over ``reps`` repetitions in one arithmetic step."""
        shift = reps * period
        # Per-repetition stat deltas, measured over the probe repetition.
        registries = self._stat_registries()
        channel_registry = self.channel.stats
        channel_deltas: Dict[str, float] = {}
        for registry, snapshot in zip(registries, previous.counters):
            deltas = {
                name: value - snapshot.get(name, 0.0)
                for name, value in registry.as_dict().items()
                if value != snapshot.get(name, 0.0)
            }
            if registry is channel_registry:
                channel_deltas = deltas
            else:
                for name, delta in deltas.items():
                    registry.add(name, delta * reps)
        self.channel.issue_run(
            reps, period,
            ca_busy_per_rep=current.ca_busy - previous.ca_busy,
            stat_deltas=channel_deltas,
        )
        # Completion frontier of the probe repetition, shifted to the last
        # replayed repetition (replayed commands materialize no records).
        probe_finish = max(
            (r.complete_time for r in self.records[previous.records_len:]),
            default=self._clock,
        )
        self._replay_finish = max(self._replay_finish, probe_finish + shift)
        self._clock += shift
        self._pim_frontier += shift
        if shift_refresh:
            self._next_refresh += shift
        for _ in range(reps * length):
            queue.popleft()
        self.replay.replayed += reps * length
        self.replay.runs += 1

    @property
    def finish_time(self) -> float:
        """Completion time of the last finished command."""
        recorded = max((r.complete_time for r in self.records), default=0.0)
        return max(recorded, self._replay_finish)
