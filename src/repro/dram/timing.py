"""HBM timing parameters (paper Table 2) and derived quantities.

All values are in cycles of the 1 GHz memory clock, so one cycle equals one
nanosecond in the prototype configuration.  Table 2 lists the constraint
set the NeuPIMs memory controller must respect when interleaving regular
memory commands with PIM commands; parameters the table omits (CAS latency,
burst length, read-to-precharge) use JEDEC-typical values and are called
out as such in the attribute docs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TimingParams:
    """DRAM timing constraints in memory-clock cycles.

    The first group is Table 2 verbatim; the second group fills in
    parameters a command-level simulation additionally needs.
    """

    # --- Table 2 of the paper ---
    tRP: int = 14      #: row precharge
    tRCD: int = 14     #: row activate to column command
    tRAS: int = 34     #: row activate to precharge
    tRRD_L: int = 6    #: activate to activate, same bank group
    tWR: int = 16      #: write recovery
    tCCD_S: int = 1    #: column-to-column, different bank group
    tCCD_L: int = 2    #: column-to-column, same bank group
    tREFI: int = 3900  #: average refresh interval
    tRFC: int = 260    #: refresh cycle time
    tFAW: int = 30     #: four-activation window

    # --- JEDEC-typical values not listed in Table 2 ---
    tCL: int = 14      #: CAS (read) latency
    tBL: int = 4       #: burst length on the data bus, cycles per column access
    tRTP: int = 8      #: read to precharge
    tRRD_S: int = 4    #: activate to activate, different bank group

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            if getattr(self, name) <= 0:
                raise ValueError(f"timing parameter {name} must be positive")
        if self.tRAS < self.tRCD:
            raise ValueError("tRAS must be at least tRCD")
        if self.tFAW < self.tRRD_L:
            raise ValueError("tFAW must be at least tRRD_L")

    @property
    def row_cycle(self) -> int:
        """tRC: minimum time between activates to the same bank (tRAS+tRP)."""
        return self.tRAS + self.tRP

    @property
    def refresh_overhead(self) -> float:
        """Fraction of time lost to refresh (tRFC / tREFI)."""
        return self.tRFC / self.tREFI


@dataclass(frozen=True)
class HbmOrganization:
    """HBM organization from Table 2.

    The paper's prototype has 32 channels per chip, 32 banks per channel
    (grouped 4 banks per bank group), 1 GB per channel, 1 KB DRAM pages
    (row-buffer size), at 1 GHz.
    """

    channels: int = 32
    banks_per_channel: int = 32
    banks_per_group: int = 4
    capacity_per_channel: int = 1 << 30  #: bytes (1 GB)
    page_bytes: int = 1024               #: row buffer / DRAM page size
    clock_ghz: float = 1.0
    #: data bus bytes per cycle per channel; 64 B/cycle at 1 GHz gives the
    #: 2 TB/s-class aggregate of an HBM2E-generation 32-channel stack
    bus_bytes_per_cycle: int = 64

    def __post_init__(self) -> None:
        if self.banks_per_channel % self.banks_per_group != 0:
            raise ValueError("banks_per_channel must be a multiple of banks_per_group")
        for name in ("channels", "banks_per_channel", "banks_per_group",
                     "capacity_per_channel", "page_bytes"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.clock_ghz <= 0 or self.bus_bytes_per_cycle <= 0:
            raise ValueError("clock and bus width must be positive")

    @property
    def bank_groups(self) -> int:
        return self.banks_per_channel // self.banks_per_group

    @property
    def channel_bandwidth(self) -> float:
        """Peak external bandwidth of one channel in bytes/second."""
        return self.bus_bytes_per_cycle * self.clock_ghz * 1e9

    @property
    def total_bandwidth(self) -> float:
        """Peak aggregate external bandwidth in bytes/second."""
        return self.channel_bandwidth * self.channels

    @property
    def total_capacity(self) -> int:
        """Total device capacity in bytes."""
        return self.capacity_per_channel * self.channels

    def rows_per_bank(self) -> int:
        """Number of DRAM rows in one bank."""
        bank_bytes = self.capacity_per_channel // self.banks_per_channel
        return bank_bytes // self.page_bytes

    def elements_per_page(self, dtype_bytes: int) -> int:
        """Elements of the given width per DRAM page (Algorithm 1's P_DRAM)."""
        if dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")
        return self.page_bytes // dtype_bytes


DEFAULT_TIMING = TimingParams()
DEFAULT_ORGANIZATION = HbmOrganization()


@dataclass(frozen=True)
class PimTiming:
    """Timing of the in-bank PIM datapath (Newton-style).

    ``dotprod_cycles_per_chunk`` is the cycles the parallel multiplier +
    adder tree needs per column chunk of an open row; one chunk covers
    ``chunk_bytes`` of the row buffer (2 cycles per 32 B = Newton-class
    column-command pacing at tCCD_L).  ``gwrite_cycles`` copies one DRAM
    page into the channel's global vector buffer.  ``rdresult_cycles``
    drains per-bank accumulators to the host.
    """

    chunk_bytes: int = 32
    dotprod_cycles_per_chunk: int = 2
    gwrite_cycles: int = 30
    rdresult_cycles: int = 20
    header_cycles: int = 4

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            if getattr(self, name) <= 0:
                raise ValueError(f"PIM timing {name} must be positive")

    def dotprod_cycles_per_page(self, page_bytes: int) -> int:
        """Cycles to MAC one full open row against the global vector."""
        chunks = -(-page_bytes // self.chunk_bytes)
        return chunks * self.dotprod_cycles_per_chunk


DEFAULT_PIM_TIMING = PimTiming()
