"""DRAM bank state machines: single and dual row buffer variants.

Figure 8 of the paper contrasts (a) existing PIM banks with a single row
buffer — which forces "blocked mode", where either the host or the PIM owns
the bank — against (b) NeuPIMs banks with *dual row buffers* (a MEM row
buffer for regular read/write and a PIM row buffer for GEMV), letting both
flows proceed concurrently as long as they touch different rows.

The bank model enforces the Table 2 timing constraints per command and the
structural hazards of each organization:

* single-buffer banks reject MEM commands while a PIM operation holds the
  row buffer (and vice versa);
* dual-buffer banks allow concurrent MEM/PIM activity but refuse to open
  the *same row* in both buffers (the paper's controller-enforced rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dram.commands import BufferTarget, CommandType
from repro.dram.timing import TimingParams


class TimingViolation(RuntimeError):
    """Raised when a command is issued before its constraints allow."""


class StructuralHazard(RuntimeError):
    """Raised on row-buffer conflicts (wrong row open, blocked mode, ...)."""


@dataclass
class _RowBuffer:
    """One row buffer's state within a bank."""

    open_row: Optional[int] = None
    act_time: float = float("-inf")
    pre_allowed_at: float = float("-inf")   # earliest PRE (tRAS / tRTP / tWR)
    act_allowed_at: float = float("-inf")   # earliest next ACT (after PRE+tRP)
    last_col_time: float = float("-inf")    # for tCCD spacing


class Bank:
    """A DRAM bank with one or two row buffers.

    Parameters
    ----------
    index:
        Bank index within its channel.
    timing:
        DRAM timing constraints.
    dual_row_buffer:
        ``True`` builds a NeuPIMs bank (separate MEM and PIM buffers);
        ``False`` builds a conventional blocked-mode PIM bank where both
        flows share a single buffer.
    """

    def __init__(self, index: int, timing: TimingParams,
                 dual_row_buffer: bool = True) -> None:
        self.index = index
        self.timing = timing
        self.dual_row_buffer = dual_row_buffer
        self._buffers: Dict[BufferTarget, _RowBuffer] = {
            BufferTarget.MEM: _RowBuffer()
        }
        if dual_row_buffer:
            self._buffers[BufferTarget.PIM] = _RowBuffer()
        #: time until which a PIM operation owns the (shared) buffer —
        #: only meaningful for single-buffer banks (blocked mode).
        self.pim_busy_until: float = float("-inf")
        #: last activate on *any* buffer of this bank (activate spacing).
        self._last_act_any: float = float("-inf")

    def _buffer(self, target: BufferTarget) -> _RowBuffer:
        """Resolve the row buffer for a command target."""
        if target is BufferTarget.NONE:
            raise ValueError("command does not target a row buffer")
        if not self.dual_row_buffer:
            return self._buffers[BufferTarget.MEM]
        return self._buffers[target]

    def open_row(self, target: BufferTarget) -> Optional[int]:
        """Row currently open in the targeted buffer (``None`` if closed)."""
        return self._buffer(target).open_row

    def _other_buffer_row(self, target: BufferTarget) -> Optional[int]:
        if not self.dual_row_buffer:
            return None
        other = BufferTarget.PIM if target is BufferTarget.MEM else BufferTarget.MEM
        return self._buffers[other].open_row

    # ------------------------------------------------------------------
    # Earliest-issue queries (used by the controller to schedule).
    # ------------------------------------------------------------------

    def earliest_activate(self, target: BufferTarget, now: float) -> float:
        """Earliest cycle an ACT on ``target`` could issue at or after ``now``."""
        buf = self._buffer(target)
        t = max(now, buf.act_allowed_at)
        # Activate-to-activate spacing within the bank (row decoder shared).
        t = max(t, self._last_act_any + self.timing.tRRD_L)
        if not self.dual_row_buffer:
            t = max(t, self.pim_busy_until)
        return t

    def earliest_column(self, target: BufferTarget, row: int, now: float) -> float:
        """Earliest cycle a RD/WR/DOTPRODUCT on ``row`` could issue."""
        buf = self._buffer(target)
        if buf.open_row != row:
            raise StructuralHazard(
                f"bank {self.index}: row {row} not open in {target.value} buffer "
                f"(open: {buf.open_row})"
            )
        t = max(now, buf.act_time + self.timing.tRCD)
        t = max(t, buf.last_col_time + self.timing.tCCD_L)
        if not self.dual_row_buffer and target is BufferTarget.MEM:
            t = max(t, self.pim_busy_until)
        return t

    def earliest_precharge(self, target: BufferTarget, now: float) -> float:
        """Earliest cycle a PRE on ``target`` could issue."""
        buf = self._buffer(target)
        return max(now, buf.pre_allowed_at)

    # ------------------------------------------------------------------
    # State transitions.
    # ------------------------------------------------------------------

    def activate(self, target: BufferTarget, row: int, time: float) -> None:
        """Open ``row`` in the targeted buffer at ``time``."""
        buf = self._buffer(target)
        if buf.open_row is not None:
            raise StructuralHazard(
                f"bank {self.index}: {target.value} buffer already open on row "
                f"{buf.open_row}; precharge first"
            )
        if self._other_buffer_row(target) == row:
            raise StructuralHazard(
                f"bank {self.index}: row {row} already open in the other buffer"
            )
        earliest = self.earliest_activate(target, time)
        if time < earliest:
            raise TimingViolation(
                f"bank {self.index}: ACT at {time} before earliest {earliest}"
            )
        buf.open_row = row
        buf.act_time = time
        buf.pre_allowed_at = time + self.timing.tRAS
        self._last_act_any = time

    def column_access(self, target: BufferTarget, row: int, time: float,
                      is_write: bool = False) -> float:
        """Perform a column access; returns data-transfer completion time."""
        buf = self._buffer(target)
        earliest = self.earliest_column(target, row, time)
        if time < earliest:
            raise TimingViolation(
                f"bank {self.index}: column access at {time} before {earliest}"
            )
        buf.last_col_time = time
        if is_write:
            data_end = time + self.timing.tCL + self.timing.tBL
            buf.pre_allowed_at = max(buf.pre_allowed_at, data_end + self.timing.tWR)
        else:
            data_end = time + self.timing.tCL + self.timing.tBL
            buf.pre_allowed_at = max(buf.pre_allowed_at, time + self.timing.tRTP)
        return data_end

    def precharge(self, target: BufferTarget, time: float) -> None:
        """Close the targeted buffer at ``time``."""
        buf = self._buffer(target)
        if buf.open_row is None:
            # Precharge of an idle bank is a legal no-op in DRAM.
            buf.act_allowed_at = max(buf.act_allowed_at, time + self.timing.tRP)
            return
        earliest = self.earliest_precharge(target, time)
        if time < earliest:
            raise TimingViolation(
                f"bank {self.index}: PRE at {time} before earliest {earliest}"
            )
        buf.open_row = None
        buf.act_allowed_at = time + self.timing.tRP

    def begin_pim_hold(self, until: float) -> None:
        """Blocked mode: mark the shared buffer as PIM-owned until ``until``."""
        if self.dual_row_buffer:
            return
        self.pim_busy_until = max(self.pim_busy_until, until)

    def refresh(self, time: float, trfc: int) -> None:
        """Apply a refresh: all buffers closed, bank unusable for tRFC."""
        for buf in self._buffers.values():
            buf.open_row = None
            buf.act_allowed_at = max(buf.act_allowed_at, time + trfc)
        self.pim_busy_until = max(self.pim_busy_until, time + trfc)

    def is_blocked_for_mem(self, time: float) -> bool:
        """Whether blocked-mode PIM activity stalls MEM commands at ``time``."""
        return (not self.dual_row_buffer) and time < self.pim_busy_until

    # ------------------------------------------------------------------
    # Batch replay (fast path) support.
    # ------------------------------------------------------------------

    def state_key(self, base: float, horizon: float) -> tuple:
        """Translation-invariant digest of the bank state relative to ``base``.

        ``horizon`` is the channel's C/A frontier: no future command can
        take effect before it, and every issue path max-combines these
        timestamps with it.  Timestamps already dead by ``horizon`` (minus
        the constraint they feed) are therefore clamped to their floor, so
        long-stale history (an activate from thousands of cycles ago) does
        not keep otherwise-identical states from matching.  Clamping is
        sound for dual-row-buffer banks only — blocked mode compares
        ``pim_busy_until`` against pre-frontier candidate times — so single
        -buffer banks digest raw values.
        """
        if not self.dual_row_buffer:
            parts = [self.pim_busy_until - base, self._last_act_any - base]
            for buf in self._buffers.values():
                parts.append(buf.open_row)
                parts.append(buf.act_time - base)
                parts.append(buf.pre_allowed_at - base)
                parts.append(buf.act_allowed_at - base)
                parts.append(buf.last_col_time - base)
            return tuple(parts)
        timing = self.timing
        parts = [
            self.pim_busy_until - base,
            max(self._last_act_any, horizon - timing.tRRD_L) - base,
        ]
        for buf in self._buffers.values():
            parts.append(buf.open_row)
            parts.append(max(buf.act_time, horizon - timing.tRCD) - base)
            parts.append(max(buf.pre_allowed_at, horizon) - base)
            parts.append(max(buf.act_allowed_at, horizon) - base)
            parts.append(max(buf.last_col_time, horizon - timing.tCCD_L) - base)
        return tuple(parts)

    def time_shift(self, dt: float) -> None:
        """Advance every stored absolute time by ``dt`` cycles."""
        self.pim_busy_until += dt
        self._last_act_any += dt
        for buf in self._buffers.values():
            buf.act_time += dt
            buf.pre_allowed_at += dt
            buf.act_allowed_at += dt
            buf.last_col_time += dt


def command_targets_bank(ctype: CommandType) -> bool:
    """Whether a command type addresses an individual bank."""
    return ctype in (CommandType.ACT, CommandType.PRE, CommandType.RD,
                     CommandType.WR)
