"""Figure 5: GPU resource utilization for four open LLMs.

Regenerates the compute / bandwidth / capacity utilization bars for
GPT-NeoX, LLaMA2, OPT and MPT on RTX 3090- and A100-class GPU clusters.
Paper shape: capacity approaches 100% (cluster size is capacity-driven)
while compute utilization stays below 40%.
"""

import pytest

from repro.analysis.report import format_table
from repro.baselines.gpu import A100_40GB, RTX3090_24GB, gpu_cluster_utilization
from repro.model.spec import GPT_NEOX_20B, LLAMA2_13B, MPT_30B, OPT_30B

from benchmarks.conftest import record

MODELS = (GPT_NEOX_20B, LLAMA2_13B, OPT_30B, MPT_30B)


@pytest.mark.parametrize("gpu,gpu_name", [(RTX3090_24GB, "RTX 3090"),
                                          (A100_40GB, "A100")],
                         ids=["rtx3090", "a100"])
def test_fig05_gpu_utilization(benchmark, gpu, gpu_name):
    def run():
        return {spec.name: gpu_cluster_utilization(spec, gpu)
                for spec in MODELS}

    results = benchmark(run)

    rows = [
        (name, round(util["compute"], 3), round(util["bandwidth"], 3),
         round(util["capacity"], 3), int(util["num_gpus"]))
        for name, util in results.items()
    ]
    print()
    print(format_table(
        ["model", "compute", "bandwidth", "capacity", "GPUs"],
        rows, title=f"Figure 5 — GPU utilization ({gpu_name})"))

    for name, util in results.items():
        # Paper shape: compute < 40%, capacity high.
        assert util["compute"] < 0.4, name
        assert util["capacity"] > 0.55, name
    record(benchmark, {
        f"{name}.compute": util["compute"]
        for name, util in results.items()
    })
