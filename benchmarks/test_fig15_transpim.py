"""Figure 15: NeuPIMs speedup over TransPIM.

Regenerates the speedup bars for both datasets across batch sizes.  Paper
shape: two orders of magnitude (79x-431x, average 228x), growing with
batch size — TransPIM's single-request token dataflow cannot batch, so
the gap is essentially the batch size itself plus the GEMM-rate deficit.
"""

import pytest

from repro.analysis.metrics import iteration_throughput
from repro.analysis.report import format_series, geomean
from repro.baselines.transpim import TransPimDevice
from repro.core.device import NeuPimsDevice
from repro.model.spec import GPT3_7B
from repro.serving.trace import ALPACA, SHAREGPT, sample_batches

from benchmarks.conftest import BATCH_SIZES, record


@pytest.mark.parametrize("trace", [ALPACA, SHAREGPT], ids=lambda t: t.name)
def test_fig15_transpim_speedup(benchmark, trace):
    neupims = NeuPimsDevice(GPT3_7B, tp=1, layers_resident=8)
    transpim = TransPimDevice(GPT3_7B, layers_resident=8)

    def run():
        speedups = {}
        for batch_size in BATCH_SIZES:
            batches = sample_batches(trace, batch_size, 2, seed=11)
            ratio = []
            for batch in batches:
                t_neu = iteration_throughput(neupims.iteration(batch),
                                             len(batch))
                t_trans = iteration_throughput(transpim.iteration(batch),
                                               len(batch))
                ratio.append(t_neu / t_trans)
            speedups[batch_size] = sum(ratio) / len(ratio)
        return speedups

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_series(f"Figure 15 — NeuPIMs speedup over TransPIM "
                        f"({trace.name})", speedups, unit="x"))

    ordered = [speedups[b] for b in BATCH_SIZES]
    # Paper shape: speedup grows with batch size and is >> 10x.
    assert ordered[-1] > ordered[0]
    assert all(s > 10 for s in ordered)
    assert ordered[-1] > 100
    record(benchmark, {"geomean_speedup": geomean(ordered),
                       "max_speedup": max(ordered)})
