"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper: it
prints the same rows/series the paper reports (run with ``pytest -s`` to
see them) and records the headline numbers in ``benchmark.extra_info`` so
``--benchmark-json`` output carries the experiment results.
"""

from __future__ import annotations

from typing import Dict

from repro.core.system import NeuPimsSystem, ParallelismScheme
from repro.model.spec import ModelSpec

#: Number of sampled batches per workload point (the paper uses 10; the
#: benchmarks use 3 to keep wall-clock time reasonable — the variance
#: across warmed batches is small).
NUM_BATCHES = 3

#: Figure 12 sweep points.
BATCH_SIZES = (64, 128, 256, 384, 512)


def table3_scheme(spec: ModelSpec) -> ParallelismScheme:
    """The model's default (TP, PP) from Table 3."""
    return ParallelismScheme(spec.tensor_parallel, spec.pipeline_parallel)


def record(benchmark, values: Dict[str, float]) -> None:
    """Attach experiment outputs to the benchmark JSON."""
    for key, value in values.items():
        benchmark.extra_info[key] = value
