"""§9 discussion: NeuPIMs' (in)efficiency for model training.

Quantifies the paper's training argument: training steps are GEMM-only
(fixed-length sequences, matrix-matrix attention), so the PIM has nothing
to accelerate and the NeuPIMs speedup ceiling over NPU-only is ~1.0 —
versus the large GEMV time share of generation-phase inference.
"""

from repro.analysis.report import format_table
from repro.analysis.training import (
    inference_vs_training_pim_value,
    profile_training_step,
)
from repro.model.spec import GPT3_7B, GPT3_13B

from benchmarks.conftest import record


def test_training_vs_inference_pim_value(benchmark):
    def run():
        return {
            spec.name: inference_vs_training_pim_value(spec, batch_size=64,
                                                       seq_len=384)
            for spec in (GPT3_7B, GPT3_13B)
        }

    contrast = benchmark(run)

    rows = [
        (name,
         f"{v['inference_gemv_time_share']:.1%}",
         f"{v['training_gemv_time_share']:.1%}",
         round(v["training_speedup_ceiling"], 3))
        for name, v in contrast.items()
    ]
    print()
    print(format_table(
        ["model", "inference GEMV time share", "training GEMV time share",
         "training speedup ceiling"],
        rows, title="§9 — PIM value: inference vs training"))

    for name, v in contrast.items():
        assert v["inference_gemv_time_share"] > 0.3, name
        assert v["training_gemv_time_share"] == 0.0, name
        assert abs(v["training_speedup_ceiling"] - 1.0) < 1e-6, name
    record(benchmark, {
        f"{name}.inference_share": v["inference_gemv_time_share"]
        for name, v in contrast.items()
    })


def test_training_step_profile(benchmark):
    profile = benchmark(profile_training_step, GPT3_7B, 8, 512)
    print(f"\nGPT3-7B training step (B=8, seq 512): "
          f"{profile.gemm_flops / 1e12:.1f} TFLOP GEMM, "
          f"{profile.gemv_flops:.0f} FLOP GEMV, "
          f"ceiling {profile.neupims_speedup_ceiling:.3f}x")
    assert profile.gemv_fraction == 0.0
    record(benchmark, {"gemm_tflops": profile.gemm_flops / 1e12})
