"""Extra ablations beyond the paper's Figure 13.

Design-choice sweeps DESIGN.md calls out:

* channel-balancing policy under increasing sequence-length skew;
* composite-ISA contribution in isolation (C/A traffic and refresh
  interaction);
* DRAM page size sensitivity of the MHA latency estimator;
* adaptive-SBI fallback vs forced SBI at small batch;
* the full feature-flag cross (``repro.analysis.ablation``), shardable
  across workers via ``run_ablation_grid(parallel=...)``.
"""

import os

import numpy as np

from repro.analysis.ablation import ablation_axes, run_ablation_grid
from repro.analysis.metrics import iteration_throughput
from repro.exec import ProcessPoolBackend
from repro.analysis.report import format_series, format_table
from repro.core.binpack import (
    channel_loads,
    greedy_min_load_assign,
    load_imbalance,
    round_robin_assign,
)
from repro.core.config import NeuPimsConfig
from repro.core.device import NeuPimsDevice
from repro.core.estimator import MhaLatencyEstimator, analytic_latencies
from repro.dram.timing import HbmOrganization
from repro.model.spec import GPT3_7B
from repro.serving.trace import SHAREGPT, warmed_batch

from benchmarks.conftest import record
from tests.conftest import make_request


def test_balancing_policy_vs_skew(benchmark):
    """GMLBP's advantage grows with sequence-length skew."""
    estimator = MhaLatencyEstimator(GPT3_7B, HbmOrganization(),
                                    analytic_latencies())
    channels = 16

    def imbalance_gap(sigma, seed):
        rng = np.random.default_rng(seed)
        lengths = np.clip(rng.lognormal(np.log(200), sigma, 128),
                          1, 8192).astype(int)
        greedy = [make_request(i, input_len=int(n))
                  for i, n in enumerate(lengths)]
        rr = [make_request(i, input_len=int(n))
              for i, n in enumerate(lengths)]
        greedy_min_load_assign(greedy, estimator, channels)
        round_robin_assign(rr, channels)
        return (load_imbalance(channel_loads(rr, estimator, channels))
                / load_imbalance(channel_loads(greedy, estimator, channels)))

    def run():
        return {
            sigma: float(np.mean([imbalance_gap(sigma, seed)
                                  for seed in range(8)]))
            for sigma in (0.1, 0.5, 1.0)
        }

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_series("round-robin imbalance / greedy imbalance", gaps))
    assert gaps[1.0] > gaps[0.1]
    record(benchmark, {f"sigma_{k}": v for k, v in gaps.items()})


def test_composite_isa_isolated(benchmark):
    """Composite ISA alone (on a DRB device) buys a measurable slice."""
    batch = warmed_batch(SHAREGPT, 128, seed=5)

    def run():
        with_isa = NeuPimsDevice(
            GPT3_7B, NeuPimsConfig(composite_isa=True), tp=4,
            layers_resident=8)
        without = NeuPimsDevice(
            GPT3_7B, NeuPimsConfig(composite_isa=False), tp=4,
            layers_resident=8)
        t_with = with_isa.iteration(list(batch)).latency
        t_without = without.iteration(list(batch)).latency
        return t_without / t_with

    gain = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ncomposite ISA speedup on NeuPIMs: {gain:.3f}x")
    assert gain >= 1.0
    record(benchmark, {"composite_isa_gain": gain})


def test_page_size_sensitivity(benchmark):
    """Larger DRAM pages amortize GWRITEs but waste partial pages."""
    def run():
        results = {}
        for page_bytes in (512, 1024, 2048):
            org = HbmOrganization(page_bytes=page_bytes)
            estimator = MhaLatencyEstimator(
                GPT3_7B, org, analytic_latencies(org=org))
            results[page_bytes] = estimator.estimate(384)
        return results

    estimates = benchmark(run)
    print()
    print(format_series("MHA estimate (cycles) vs page size", estimates))
    assert all(v > 0 for v in estimates.values())
    record(benchmark, {f"page_{k}": v for k, v in estimates.items()})


def test_feature_flag_grid(benchmark):
    """The full technique cross: every flag combination, one grid.

    Runs through the sharded execution subsystem; set
    ``ABLATION_WORKERS`` (CI's workers matrix does) to shard the grid
    across a process pool — the records are identical either way.
    """
    workers = int(os.environ.get("ABLATION_WORKERS", "0"))
    # An explicit pool even at workers=1, so the CI matrix's 1-worker
    # cell measures pool overhead rather than silently running serial.
    backend = ProcessPoolBackend(workers) if workers else None

    def run():
        return run_ablation_grid(ablation_axes(batch_sizes=(64, 256)),
                                 parallel=backend)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    neupims = result.filter(dual_row_buffer=True, sub_batch_interleaving=True,
                            greedy_binpack=True)
    naive = result.filter(dual_row_buffer=False,
                          sub_batch_interleaving=False, greedy_binpack=False)
    rows = []
    for cell in result.records:
        rows.append((
            "DRB" if cell["dual_row_buffer"] else "blocked",
            "SBI" if cell["sub_batch_interleaving"] else "serial",
            "GMLBP" if cell["greedy_binpack"] else "RR",
            cell["batch_size"],
            round(cell["tokens_per_second"]),
        ))
    print()
    print(format_table(["bank", "schedule", "balancing", "batch", "tok/s"],
                       rows, title="feature-flag cross (ShareGPT)"))
    # The full NeuPIMs setting must dominate the naive setting cell-wise.
    for batch_size in (64, 256):
        best = neupims.filter(batch_size=batch_size).records[0]
        worst = naive.filter(batch_size=batch_size).records[0]
        assert best["tokens_per_second"] > worst["tokens_per_second"]
    record(benchmark, {
        f"grid_{r['batch_size']}_{int(r['dual_row_buffer'])}"
        f"{int(r['sub_batch_interleaving'])}{int(r['greedy_binpack'])}":
            r["tokens_per_second"]
        for r in result.records
    })


def test_adaptive_sbi_fallback(benchmark):
    """Adaptive SBI matches serialized execution at small batch and
    forced SBI at large batch — the best of Figure 13's two regimes."""
    def throughput(config, batch_size, seed):
        device = NeuPimsDevice(GPT3_7B, config, tp=4, layers_resident=8)
        batch = warmed_batch(SHAREGPT, batch_size, seed=seed)
        return iteration_throughput(device.iteration(batch), batch_size)

    def run():
        rows = []
        for batch_size in (32, 256, 512):
            adaptive = throughput(NeuPimsConfig(), batch_size, 7)
            forced = throughput(NeuPimsConfig(adaptive_sbi=False),
                                batch_size, 7)
            serialized = throughput(
                NeuPimsConfig(sub_batch_interleaving=False), batch_size, 7)
            rows.append((batch_size, adaptive, forced, serialized))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(["batch", "adaptive", "forced SBI", "serialized"],
                       [(b, round(a), round(f), round(s))
                        for b, a, f, s in rows],
                       title="Adaptive SBI ablation (tokens/s)"))
    for batch_size, adaptive, forced, serialized in rows:
        assert adaptive >= max(forced, serialized) * 0.999
    record(benchmark, {f"adaptive_{b}": a for b, a, _, _ in rows})
