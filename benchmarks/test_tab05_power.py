"""Table 5: memory power — non-PIM HBM vs dual-row-buffer PIM.

Regenerates the average-power comparison with the Micron-style power
model: the dual-row-buffer PIM draws more power (paper: 364.1 mW ->
634.8 mW, a 1.8x increase), but the throughput gain nets an energy
*reduction* per token (paper: ~25%).
"""

from repro.analysis.metrics import compare_systems
from repro.analysis.report import format_table
from repro.dram.channel import Channel
from repro.dram.commands import Command, CommandType
from repro.dram.power import PowerModel
from repro.model.spec import GPT3_30B
from repro.serving.trace import SHAREGPT

from benchmarks.conftest import record


def _hbm_channel_power() -> float:
    """NPU-only: streaming read traffic on a vanilla HBM channel."""
    channel = Channel(0, dual_row_buffer=False)
    for round_index in range(40):
        for bank in range(8):
            channel.issue(Command(CommandType.ACT, bank=bank,
                                  row=round_index))
        for bank in range(8):
            channel.issue(Command(CommandType.RD, bank=bank))
        for bank in range(8):
            channel.issue(Command(CommandType.PRE, bank=bank))
    model = PowerModel(dual_row_buffer=False,
                       banks_per_channel=channel.org.banks_per_channel)
    return model.report(channel.issued).average_power_mw


def _pim_channel_power() -> float:
    """NeuPIMs: GEMV waves concurrent with memory reads."""
    channel = Channel(0, dual_row_buffer=True)
    channel.issue(Command(CommandType.PIM_GWRITE, bank=0, row=1))
    last = 0.0
    for _ in range(30):
        rec = channel.issue(Command(CommandType.PIM_GEMV, k=32),
                            earliest=last)
        last = rec.complete_time
    for i in range(400):
        bank = 8 + (i % 8)
        channel.issue(Command(CommandType.ACT, bank=bank, row=i))
        channel.issue(Command(CommandType.RD, bank=bank))
        channel.issue(Command(CommandType.PRE, bank=bank))
    model = PowerModel(dual_row_buffer=True,
                       banks_per_channel=channel.org.banks_per_channel)
    return model.report(channel.issued, elapsed_cycles=last).average_power_mw


def test_tab05_power(benchmark):
    def run():
        return _hbm_channel_power(), _pim_channel_power()

    hbm_mw, pim_mw = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = pim_mw / hbm_mw

    # Energy per token: power ratio divided by the measured speedup.
    results = compare_systems(GPT3_30B, SHAREGPT, batch_size=256, tp=4,
                              layers_resident=24, num_batches=2, seed=0)
    speedup = (results["NeuPIMs"].tokens_per_second
               / results["NPU-only"].tokens_per_second)
    energy_ratio = ratio / speedup

    rows = [
        ("NPU-only", "HBM (non-PIM)", round(hbm_mw, 1)),
        ("NeuPIMs", "Dual row buffered PIM", round(pim_mw, 1)),
    ]
    print()
    print(format_table(["baseline", "memory", "average power (mW)"], rows,
                       title="Table 5 — memory power per channel"))
    print(f"power ratio {ratio:.2f}x, speedup {speedup:.2f}x, "
          f"energy per token {energy_ratio:.2f}x "
          f"({100 * (1 - energy_ratio):.0f}% reduction)")

    # Paper shape: ~1.8x power but net energy reduction.
    assert 1.2 < ratio < 2.5
    assert energy_ratio < 1.0
    record(benchmark, {"hbm_mw": hbm_mw, "pim_mw": pim_mw,
                       "power_ratio": ratio, "energy_ratio": energy_ratio})
