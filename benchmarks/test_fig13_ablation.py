"""Figure 13: ablation study — DRB, GMLBP and SBI stacked on NPU+PIM.

Regenerates the throughput-improvement bars for GPT3-7B / ShareGPT across
batch sizes: dual row buffers give the largest single gain (paper: ~70%
on average), greedy min-load bin packing always helps, and sub-batch
interleaving wins for batch sizes >= 256.
"""

from repro.analysis.metrics import iteration_throughput
from repro.analysis.report import format_table
from repro.baselines.npu_pim import ablation_device
from repro.model.spec import GPT3_7B
from repro.serving.trace import SHAREGPT, sample_batches

from benchmarks.conftest import BATCH_SIZES, NUM_BATCHES, record

CONFIGS = (
    ("NPU+PIM", {}),
    ("+DRB", {"dual_row_buffer": True}),
    ("+DRB+GMLBP", {"dual_row_buffer": True, "greedy_binpack": True}),
    ("+DRB+GMLBP+SBI", {"dual_row_buffer": True, "greedy_binpack": True,
                        "sub_batch_interleaving": True}),
)


def _throughput(flags, batch_size, seed=0):
    device = ablation_device(GPT3_7B, tp=4, layers_resident=8, **flags)
    batches = sample_batches(SHAREGPT, batch_size, NUM_BATCHES, seed=seed)
    values = []
    for batch in batches:
        result = device.iteration(batch)
        values.append(iteration_throughput(result, len(batch)))
    return sum(values) / len(values)


def test_fig13_ablation(benchmark):
    def run():
        table = {}
        for batch_size in BATCH_SIZES:
            base = _throughput(CONFIGS[0][1], batch_size)
            table[batch_size] = {
                name: _throughput(flags, batch_size) / base
                for name, flags in CONFIGS
            }
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[f"B={b}"] + [round(table[b][name], 2)
                          for name, _ in CONFIGS]
            for b in BATCH_SIZES]
    print()
    print(format_table(["batch"] + [name for name, _ in CONFIGS], rows,
                       title="Figure 13 — throughput improvement over "
                             "NPU+PIM (GPT3-7B, ShareGPT)"))

    drb_gains = [table[b]["+DRB"] for b in BATCH_SIZES]
    for batch_size in BATCH_SIZES:
        point = table[batch_size]
        # DRB always helps; GMLBP never hurts; full stack >= DRB+GMLBP - eps.
        assert point["+DRB"] > 1.05
        assert point["+DRB+GMLBP"] >= point["+DRB"] * 0.999
        assert point["+DRB+GMLBP+SBI"] >= point["+DRB+GMLBP"] * 0.999
    # SBI's benefit appears at large batch sizes (paper: B >= 256).
    assert table[512]["+DRB+GMLBP+SBI"] > table[512]["+DRB+GMLBP"] * 1.05
    # DRB average gain in the paper's ballpark (69.7%).
    avg_drb = sum(drb_gains) / len(drb_gains)
    assert 1.2 < avg_drb < 2.6
    record(benchmark, {"avg_drb_gain": avg_drb,
                       "sbi_gain_at_512":
                           table[512]["+DRB+GMLBP+SBI"]
                           / table[512]["+DRB+GMLBP"]})
