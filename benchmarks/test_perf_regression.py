"""Performance-regression harness for the serving-scale fast paths.

Times the three hot paths this repository's perf work targets and emits
their headline numbers as ``BENCH`` JSON (and ``--benchmark-json``
``extra_info``) so the trajectory is tracked across commits:

* command-stream construction — cold build vs interned rebuild;
* command-level drain — per-command :meth:`drain` vs batch-replay
  :meth:`drain_fast` on a 4096x4096 fine-grained GEMV (the acceptance
  target is a >=10x ratio at bit-identical aggregates);
* a 512-request serving run through the iteration scheduler with the
  memoized estimator and incremental channel-load tracking;
* the serving iteration hot loop itself, reported as wall time per
  generated token and per iteration;
* the equivalence-class serving engine — a large-batch (1024-request)
  decode run at ``grouping="auto"`` vs ``grouping="off"``, asserting
  bit-identical records and a >=5x wall-clock speedup;
* the observer path — a batch-mode ``Session.run()`` with the event bus
  attached but unsubscribed vs one with the bus detached entirely,
  gating the zero-overhead-when-empty contract at <5% slowdown;
* the sharded parallel sweep over the extra-ablation grid — serial vs
  1/2/4-worker process pools, with record-for-record identity enforced
  (``ABLATION_WORKERS`` pins a single worker count for CI's matrix).
"""

import json
import os
import time

from repro.analysis.ablation import ablation_axes, run_ablation_grid
from repro.core.device import NeuPimsDevice
from repro.exec import (PerfCacheWarmup, ProcessPoolBackend, SerialBackend,
                        available_workers)
from repro.dram.channel import Channel
from repro.dram.controller import ControllerConfig, MemoryController
from repro.dram.timing import HbmOrganization
from repro.model.spec import GPT3_7B
from repro.perf import invalidate
from repro.perf.streams import interned_stream
from repro.pim.gemv import GemvOp, fine_grained_stream
from repro.serving.pool import RequestPool
from repro.serving.scheduler import IterationScheduler
from repro.serving.trace import ALPACA, SHAREGPT, warmed_batch

from benchmarks.conftest import record

ORG = HbmOrganization()
BIG_GEMV = GemvOp(rows=4096, cols=4096, tag="bench")


def emit(name, values):
    """Print one BENCH JSON line (the perf-trajectory seed format)."""
    print(f"\nBENCH {json.dumps({'bench': name, **values}, sort_keys=True)}")


def test_stream_build_interning(benchmark):
    invalidate()
    cold_start = time.perf_counter()
    cold = fine_grained_stream(BIG_GEMV, ORG)
    cold_seconds = time.perf_counter() - cold_start
    interned_stream(BIG_GEMV, ORG, composite=False)  # warm the cache

    warm = benchmark(lambda: interned_stream(BIG_GEMV, ORG, composite=False))
    assert list(warm) == cold

    warm_start = time.perf_counter()
    for _ in range(100):
        interned_stream(BIG_GEMV, ORG, composite=False)
    warm_seconds = (time.perf_counter() - warm_start) / 100
    speedup = cold_seconds / max(warm_seconds, 1e-9)
    assert speedup > 10
    values = {
        "commands": len(cold),
        "cold_build_ms": round(cold_seconds * 1e3, 3),
        "interned_us": round(warm_seconds * 1e6, 3),
        "speedup": round(speedup, 1),
    }
    emit("stream_build", values)
    record(benchmark, values)


def test_drain_fast_vs_drain(benchmark):
    """The acceptance bar: >=10x on drain with identical aggregates."""
    stream = fine_grained_stream(BIG_GEMV, ORG)

    def fresh():
        channel = Channel(0)
        controller = MemoryController(
            channel, ControllerConfig(header_aware_refresh=False))
        controller.enqueue_pim(list(stream))
        return controller

    slow_start = time.perf_counter()
    slow = fresh()
    slow.drain()
    slow_seconds = time.perf_counter() - slow_start

    # Best-of-3 for the fast side: a single tens-of-ms sample on a shared
    # CI runner is noise-prone, and the ratio below is a hard gate.
    fast_seconds = float("inf")
    for _ in range(3):
        candidate = fresh()
        fast_start = time.perf_counter()
        candidate.drain_fast()
        fast_seconds = min(fast_seconds, time.perf_counter() - fast_start)
        fast = candidate

    # Bit-identical aggregates: finish time, refresh counts, per-type stats.
    assert fast.finish_time == slow.finish_time
    assert fast.stats.as_dict() == slow.stats.as_dict()
    assert fast.channel.ca_busy_cycles == slow.channel.ca_busy_cycles

    ratio = slow_seconds / max(fast_seconds, 1e-9)
    assert ratio >= 10, f"drain_fast only {ratio:.1f}x faster"

    benchmark.pedantic(lambda: fresh().drain_fast(), rounds=3, iterations=1)
    values = {
        "commands": len(stream),
        "drain_ms": round(slow_seconds * 1e3, 2),
        "drain_fast_ms": round(fast_seconds * 1e3, 2),
        "speedup": round(ratio, 1),
        "replayed_commands": fast.replay.replayed,
        "stepped_commands": fast.replay.stepped,
        "refreshes": fast.stats.get("refresh.issued"),
        "finish_cycles": fast.finish_time,
    }
    emit("drain_fast", values)
    record(benchmark, values)


def test_serving_512_batch(benchmark):
    """A 512-request serving run: memoized estimates + live load tracking."""
    spec = GPT3_7B

    def run():
        device = NeuPimsDevice(spec, tp=spec.tensor_parallel,
                               layers_resident=4)
        tracker = device.attach_load_tracker()
        pool = RequestPool()
        pool.submit_all(warmed_batch(ALPACA, 512, seed=11))
        scheduler = IterationScheduler(
            pool, device.executor(), max_batch_size=512,
            assign_channels=device.assign_channels, load_tracker=tracker)
        return scheduler.run(max_iterations=2000)

    wall_start = time.perf_counter()
    stats = run()
    wall_seconds = time.perf_counter() - wall_start
    assert stats.total_tokens > 0
    assert len(stats.iterations[0].__dict__) > 0

    benchmark.pedantic(run, rounds=1, iterations=1)
    values = {
        "requests": 512,
        "iterations": len(stats.iterations),
        "tokens": stats.total_tokens,
        "wall_seconds": round(wall_seconds, 3),
        "sim_throughput_tok_s": round(
            stats.throughput_tokens_per_second()),
        "iterations_per_wall_second": round(
            len(stats.iterations) / max(wall_seconds, 1e-9), 1),
    }
    emit("serving_512", values)
    record(benchmark, values)


def test_iteration_loop_per_token(benchmark):
    """The serving iteration hot loop, normalized to time per token.

    A decode-heavy 256-request run exercises exactly the per-iteration
    path this PR optimizes: bucket-indexed pool views, counter-based
    admission, memoized per-request MHA contributions and the tuple heap.
    """
    spec = GPT3_7B

    def run():
        device = NeuPimsDevice(spec, tp=spec.tensor_parallel,
                               layers_resident=4)
        tracker = device.attach_load_tracker()
        pool = RequestPool()
        pool.submit_all(warmed_batch(SHAREGPT, 256, seed=3))
        scheduler = IterationScheduler(
            pool, device.executor(), max_batch_size=256,
            assign_channels=device.assign_channels, load_tracker=tracker)
        return scheduler.run(max_iterations=1000)

    wall_start = time.perf_counter()
    stats = run()
    wall_seconds = time.perf_counter() - wall_start
    iterations = len(stats.iterations)
    assert stats.total_tokens > 0 and iterations > 0

    benchmark.pedantic(run, rounds=1, iterations=1)
    values = {
        "requests": 256,
        "iterations": iterations,
        "tokens": stats.total_tokens,
        "wall_seconds": round(wall_seconds, 3),
        "us_per_token": round(wall_seconds * 1e6 / stats.total_tokens, 2),
        "ms_per_iteration": round(wall_seconds * 1e3 / iterations, 3),
    }
    emit("iteration_loop", values)
    record(benchmark, values)


def test_grouped_serving_large_batch(benchmark):
    """The equivalence-class serving engine's acceptance bar.

    A 1024-request class-friendly decode batch (bucketed lengths — the
    regime the grouped engine targets) runs at both grouping modes;
    ``run_serving_bench`` itself raises if records or aggregates diverge,
    and the wall-clock gate requires the group-commit path to be >=5x
    the per-request path.  Single-threaded, so no core-count gating.
    """
    from repro.api.bench import run_serving_bench

    values = run_serving_bench(num_requests=1024, repeats=3)
    assert values["records_identical"]
    assert values["iterations"] > 0 and values["tokens"] > 0
    assert values["speedup"] >= 5.0, \
        f"grouped serving only {values['speedup']}x vs per-request"

    benchmark.pedantic(
        lambda: run_serving_bench(num_requests=64, repeats=1),
        rounds=1, iterations=1)
    emit("grouped_serving", values)
    record(benchmark, values)


def test_observer_overhead_batch_run(benchmark):
    """The zero-overhead observer contract behind the streaming API.

    Batch-mode ``run()`` leaves the session's event bus unsubscribed, so
    the serving loop's emission sites reduce to a ``None``/``active``
    branch and no event object is ever constructed.  This run must stay
    within 5% of a run with the bus detached from the scheduler
    entirely — i.e. of the pre-redesign serving-bench loop the committed
    baseline anchors.  Per-request mode (``grouping="off"``) maximizes
    guard-site executions per wall second; both sides take interleaved
    best-of-5 minima so the ratio is robust to shared-runner noise.
    """
    from repro.api.bench import serving_bench_spec
    from repro.api.session import Session

    def run_once(detach_bus):
        session = Session(serving_bench_spec(512, "off"))
        session.materialize()
        assert session.scheduler.events is session.events
        assert not session.events.active  # no subscribers in batch mode
        if detach_bus:
            session.scheduler.events = None
        start = time.perf_counter()
        result = session.run()
        return result, time.perf_counter() - start

    with_bus = float("inf")
    without_bus = float("inf")
    bus_result = bare_result = None
    for _ in range(5):
        result, seconds = run_once(detach_bus=True)
        without_bus = min(without_bus, seconds)
        bare_result = result
        result, seconds = run_once(detach_bus=False)
        with_bus = min(with_bus, seconds)
        bus_result = result

    # The idle bus must not change a single simulated number ...
    assert bus_result.to_dict() == bare_result.to_dict()
    # ... and may cost at most 5% wall clock (the ISSUE gate).
    overhead = with_bus / max(without_bus, 1e-9) - 1.0
    assert overhead < 0.05, \
        f"idle event bus costs {overhead:.1%} (>5%) on batch run()"

    # Informational: the same run with a subscriber attached (the price
    # of actually observing; not gated).
    session = Session(serving_bench_spec(512, "off"))
    events_seen = []
    session.events.subscribe(None, events_seen.append)
    start = time.perf_counter()
    session.run()
    subscribed = time.perf_counter() - start

    benchmark.pedantic(lambda: run_once(detach_bus=False), rounds=1,
                       iterations=1)
    values = {
        "requests": 512,
        "iterations": bus_result.iterations,
        "no_bus_s": round(without_bus, 3),
        "idle_bus_s": round(with_bus, 3),
        "idle_overhead_pct": round(overhead * 100, 2),
        "subscribed_s": round(subscribed, 3),
        "events_delivered": len(events_seen),
    }
    emit("observer_overhead", values)
    record(benchmark, values)


def test_parallel_sweep_scaling(benchmark):
    """Worker scaling of the sharded extra-ablation sweep.

    Runs the grid serially, then through 1/2/4-worker process pools
    (``ABLATION_WORKERS`` pins one count for CI's workers matrix), and
    requires every parallel run to reproduce the serial records exactly.
    The >=2x gate at 4 workers only enforces where 4 cores exist; the
    BENCH JSON reports the scaling curve everywhere.
    """
    axes = ablation_axes(batch_sizes=(64, 128, 256, 512),
                         datasets=("sharegpt", "alpaca"))
    num_batches = 8
    pinned = int(os.environ.get("ABLATION_WORKERS", "0"))
    worker_counts = [pinned] if pinned else [1, 2, 4]

    serial_start = time.perf_counter()
    serial = run_ablation_grid(axes, parallel=SerialBackend(),
                               num_batches=num_batches)
    serial_seconds = time.perf_counter() - serial_start
    assert len(serial.records) == 64

    values = {
        "cells": len(serial.records),
        "serial_s": round(serial_seconds, 3),
        "cpus": available_workers(),
    }
    for workers in worker_counts:
        backend = ProcessPoolBackend(workers, chunk_size=2,
                                     warmup=PerfCacheWarmup())
        pool_start = time.perf_counter()
        pooled = run_ablation_grid(axes, parallel=backend,
                                   num_batches=num_batches)
        pool_seconds = time.perf_counter() - pool_start
        assert pooled.records == serial.records, \
            f"{workers}-worker records diverge from serial"
        values[f"workers_{workers}_s"] = round(pool_seconds, 3)
        values[f"speedup_{workers}w"] = round(
            serial_seconds / max(pool_seconds, 1e-9), 2)

    # The acceptance gate: >=2x at 4 workers, enforced where the
    # hardware can express it (a 1-core container cannot).
    if available_workers() >= 4 and "speedup_4w" in values:
        assert values["speedup_4w"] >= 2.0, \
            f"4-worker sweep only {values['speedup_4w']}x vs serial"

    benchmark.pedantic(
        lambda: run_ablation_grid(ablation_axes(batch_sizes=(64,)),
                                  num_batches=2),
        rounds=1, iterations=1)
    emit("parallel_sweep", values)
    record(benchmark, values)


def test_faults_disabled_serving_baseline(benchmark):
    """The resilience layer's zero-overhead-when-disabled gate.

    The serving bench runs with everything this PR added left at its
    default (``faults="none"``, no deadlines/retries/shedding): the
    simulated metrics must stay bit-identical to the committed baseline
    — proving the fault branches never perturb the default path — and
    the grouped-engine wall-clock speedup must stay within 5% of the
    baseline anchor (the single-``is not None``-branch overhead budget).
    """
    from repro.api.bench import compare_to_baseline, run_serving_bench

    baseline_path = os.path.join(os.path.dirname(__file__),
                                 "serving_bench_baseline.json")
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    values = run_serving_bench(num_requests=1024, repeats=3)
    problems = compare_to_baseline(values, baseline, tolerance=0.05)
    assert not problems, "; ".join(problems)

    benchmark.pedantic(
        lambda: run_serving_bench(num_requests=64, repeats=1),
        rounds=1, iterations=1)
    emit("faults_disabled_serving", values)
    record(benchmark, values)


def test_counters_disabled_serving_baseline(benchmark):
    """The counters subsystem's zero-overhead-when-disabled gate.

    The serving bench runs with the counters component at its default
    (``counters="none"`` — the factory returns ``None`` and every
    producer skips its charging branch): the simulated metrics must
    stay bit-identical to the committed baseline, and the
    grouped-engine wall-clock speedup must stay within 5% of the
    baseline anchor — the same single-``is not None``-branch budget the
    faults layer is held to.
    """
    from repro.api.bench import compare_to_baseline, run_serving_bench
    from repro.api.bench import serving_bench_spec
    from repro.api.session import Session

    spec = serving_bench_spec(64, "auto")
    assert spec.counters == "none"
    session = Session(spec)
    result = session.run()
    assert session.counters is None
    assert not result.counters and "counters" not in result.to_dict()

    baseline_path = os.path.join(os.path.dirname(__file__),
                                 "serving_bench_baseline.json")
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    values = run_serving_bench(num_requests=1024, repeats=3)
    problems = compare_to_baseline(values, baseline, tolerance=0.05)
    assert not problems, "; ".join(problems)

    benchmark.pedantic(
        lambda: run_serving_bench(num_requests=64, repeats=1),
        rounds=1, iterations=1)
    emit("counters_disabled_serving", values)
    record(benchmark, values)


def test_single_node_router_serving_baseline(benchmark):
    """The cluster tier's zero-overhead-when-disabled gate.

    The committed serving-bench workload runs once as a plain
    ``Session`` and once as a 1-node round-robin fleet with no fault
    schedule: the fleet's node payload must be bit-identical to the
    plain run *and* to the committed simulated-metric baseline (the
    router adds no probes, no executor wrapper, no re-dispatch on the
    disabled path), and the router wrapper may cost at most 5% wall
    clock over driving the session directly.
    """
    from repro.api.bench import compare_to_baseline, serving_bench_spec
    from repro.api.session import Session
    from repro.cluster import FleetSpec, run_fleet

    node = serving_bench_spec(1024, "auto")
    fleet = FleetSpec(nodes=(node,), traffic=node.traffic)

    plain_result, plain_seconds = None, float("inf")
    for _ in range(3):
        session = Session(node)
        start = time.perf_counter()
        plain_result = session.run()
        plain_seconds = min(plain_seconds, time.perf_counter() - start)
    fleet_result, fleet_seconds = None, float("inf")
    for _ in range(3):
        start = time.perf_counter()
        fleet_result = run_fleet(fleet)
        fleet_seconds = min(fleet_seconds, time.perf_counter() - start)

    node_result = fleet_result.nodes[0]
    assert node_result.to_dict() == plain_result.to_dict(), \
        "1-node fleet diverged from the plain Session run"
    overhead = fleet_seconds / max(plain_seconds, 1e-9) - 1.0
    assert overhead < 0.05, \
        f"single-node router overhead {overhead:.1%} exceeds the 5% budget"

    baseline_path = os.path.join(os.path.dirname(__file__),
                                 "serving_bench_baseline.json")
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    # The wall-clock `speedup` anchor belongs to the grouped-engine
    # bench; this gate compares the deterministic simulated metrics.
    baseline.pop("speedup", None)
    values = {
        "bench": "single_node_router",
        "requests": 1024,
        "iterations": node_result.iterations,
        "tokens": node_result.total_tokens,
        "sim_tokens_per_s": round(node_result.tokens_per_second, 3),
        "sim_time_ms": round(node_result.total_time_cycles / 1e6, 3),
        "wall_plain_s": round(plain_seconds, 3),
        "wall_router_s": round(fleet_seconds, 3),
        "router_overhead": round(overhead, 4),
    }
    problems = compare_to_baseline(values, baseline, tolerance=0.05)
    assert not problems, "; ".join(problems)

    benchmark.pedantic(
        lambda: run_fleet(FleetSpec(
            nodes=(serving_bench_spec(64, "auto"),),
            traffic=serving_bench_spec(64, "auto").traffic)),
        rounds=1, iterations=1)
    emit("single_node_router", values)
    record(benchmark, values)
