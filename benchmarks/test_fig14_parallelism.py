"""Figure 14: multi-NeuPIMs throughput across (TP, PP) schemes.

Regenerates the parallelization-scheme sweep: 256 total requests served by
4 / 8 / 16 / 64 NeuPIMs devices under different tensor/pipeline splits.
Paper shape: TP-heavy schemes beat PP-heavy ones at equal device count
because they keep the per-device batch large.
"""

from repro.analysis.report import format_table
from repro.core.system import NeuPimsSystem, ParallelismScheme
from repro.model.spec import GPT3_7B, GPT3_175B
from repro.serving.trace import SHAREGPT, warmed_batch

from benchmarks.conftest import record

TOTAL_REQUESTS = 256

#: (device count, [(tp, pp), ...]) — the paper's x-axis groups.
SCHEMES = (
    (4, [(4, 1), (2, 2)]),
    (8, [(8, 1), (4, 2)]),
    (16, [(8, 2), (4, 4)]),
    (64, [(16, 4), (8, 8)]),
)


def _throughput(spec, tp, pp):
    system = NeuPimsSystem(spec, ParallelismScheme(tp, pp))
    batch = warmed_batch(SHAREGPT, TOTAL_REQUESTS, seed=0)
    return system.throughput_tokens_per_second(batch) / 1e3


def test_fig14_parallelism_schemes(benchmark):
    spec = GPT3_7B

    def run():
        table = {}
        for devices, combos in SCHEMES:
            for tp, pp in combos:
                if spec.num_heads % tp:
                    continue
                table[(devices, tp, pp)] = _throughput(spec, tp, pp)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [(f"{devices} devices", f"(TP={tp}, PP={pp})", round(value, 1))
            for (devices, tp, pp), value in table.items()]
    print()
    print(format_table(["cluster", "scheme", "throughput (k tok/s)"], rows,
                       title="Figure 14 — multi-NeuPIMs throughput, "
                             "256 requests"))

    # Paper shape: at each device count, the TP-heavy scheme wins.
    for devices, combos in SCHEMES:
        values = [table[(devices, tp, pp)] for tp, pp in combos
                  if (devices, tp, pp) in table]
        if len(values) == 2:
            assert values[0] >= values[1], f"{devices} devices"
    record(benchmark, {f"tp{tp}_pp{pp}": v
                       for (_, tp, pp), v in table.items()})


def test_fig14_large_model(benchmark):
    """The same preference holds for GPT3-175B (TP=8/PP=4 default)."""
    spec = GPT3_175B

    def run():
        return {
            (8, 4): _throughput(spec, 8, 4),
            (4, 8): _throughput(spec, 4, 8),
        }

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["scheme", "throughput (k tok/s)"],
        [(f"(TP={tp}, PP={pp})", round(v, 1)) for (tp, pp), v in table.items()],
        title="Figure 14 — GPT3-175B, 32 devices"))
    assert table[(8, 4)] >= table[(4, 8)]
    record(benchmark, {"tp8_pp4": table[(8, 4)], "tp4_pp8": table[(4, 8)]})
