"""Table 4: average NPU / PIM compute and bandwidth utilization.

Regenerates the utilization table for GPT3-30B, batch 256, ShareGPT:
NPU-only -> NPU+PIM -> NeuPIMs raises NPU utilization (paper: 12.3% ->
28.0% -> 64.9%) and PIM utilization (- -> 17.0% -> 26.4%).
"""

from repro.analysis.metrics import compare_systems
from repro.analysis.report import format_table
from repro.model.spec import GPT3_30B
from repro.serving.trace import SHAREGPT

from benchmarks.conftest import NUM_BATCHES, record


def test_tab04_utilization(benchmark):
    def run():
        return compare_systems(GPT3_30B, SHAREGPT, batch_size=256,
                               tp=4, layers_resident=24,
                               num_batches=NUM_BATCHES, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name in ("NPU-only", "NPU+PIM", "NeuPIMs"):
        util = results[name].utilization
        rows.append((name, round(util.get("npu", 0.0), 3),
                     round(util.get("pim", 0.0), 3),
                     round(util.get("bandwidth", 0.0), 3)))
    print()
    print(format_table(["system", "NPU", "PIM", "bandwidth"], rows,
                       title="Table 4 — utilization "
                             "(GPT3-30B, B=256, ShareGPT)"))

    npu_only = results["NPU-only"].utilization
    naive = results["NPU+PIM"].utilization
    neupims = results["NeuPIMs"].utilization

    # Paper shape: each step raises NPU utilization; NeuPIMs raises PIM
    # utilization over the naive integration.
    assert npu_only["npu"] < naive["npu"] < neupims["npu"]
    assert neupims["pim"] > naive["pim"]
    # NPU-only burns bandwidth on MHA; naive NPU+PIM leaves it idle.
    assert naive["bandwidth"] < npu_only["bandwidth"]
    record(benchmark, {
        f"{name}.{resource}": results[name].utilization.get(resource, 0.0)
        for name in ("NPU-only", "NPU+PIM", "NeuPIMs")
        for resource in ("npu", "pim", "bandwidth")
    })
