"""§8.2 area overhead: dual row buffer costs ~3.11% of bank area.

Regenerates the CACTI-methodology estimate: doubling the sense-amplifier
stripe (plus its latch state) while sharing the mat and decoders.
"""

from repro.analysis.area import BankAreaModel, dual_row_buffer_area_overhead

from benchmarks.conftest import record


def test_area_overhead(benchmark):
    overhead = benchmark(dual_row_buffer_area_overhead)

    print()
    print(f"dual row buffer area overhead: {overhead * 100:.2f}% "
          f"(paper: 3.11%)")

    assert 0.02 < overhead < 0.05
    record(benchmark, {"area_overhead": overhead})


def test_area_overhead_sensitivity(benchmark):
    """Sweep the latch factor: the overhead stays marginal (< 7%) across
    the plausible range, supporting the paper's practicality claim."""
    model = BankAreaModel()

    def run():
        return {f: model.dual_row_buffer_overhead(f)
                for f in (0.0, 0.25, 0.5, 1.0)}

    sweep = benchmark(run)
    for factor, overhead in sweep.items():
        print(f"latch_factor={factor}: {overhead * 100:.2f}%")
        assert overhead < 0.07
    record(benchmark, {f"latch_{f}": o for f, o in sweep.items()})
