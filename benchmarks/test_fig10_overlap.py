"""Figure 10: head-granularity overlap inside the MHA layer.

Regenerates the overlap analysis: with dual row buffers the vector units
consume partial logits while the PIM computes the next head's GEMV, so
the per-request MHA pipeline is PIM-bound with small idleness; blocked
mode serializes logit -> transfer -> softmax -> transfer -> attend per
head and the PIM idles between GEMVs.
"""

from repro.analysis.report import format_table
from repro.core.overlap import HeadPipelineModel
from repro.model.spec import GPT3_13B

from benchmarks.conftest import record


def test_fig10_mha_overlap(benchmark):
    seq_len = 512

    def run():
        dual = HeadPipelineModel(GPT3_13B, dual_row_buffer=True)
        blocked = HeadPipelineModel(GPT3_13B, dual_row_buffer=False)
        return dual.run(seq_len), blocked.run(seq_len)

    dual_tl, blocked_tl = benchmark(run)

    rows = [
        ("NeuPIMs (dual row buffers)", round(dual_tl.total_cycles),
         f"{dual_tl.pim_idle_fraction:.1%}",
         f"{dual_tl.vector_idle_fraction:.1%}"),
        ("blocked mode", round(blocked_tl.total_cycles),
         f"{blocked_tl.pim_idle_fraction:.1%}",
         f"{blocked_tl.vector_idle_fraction:.1%}"),
    ]
    print()
    print(format_table(
        ["configuration", "MHA cycles (per request)", "PIM idle",
         "vector idle"],
        rows, title=f"Figure 10 — head-pipelined MHA (GPT3-13B, "
                    f"seq {seq_len})"))

    speedup = blocked_tl.total_cycles / dual_tl.total_cycles
    print(f"overlap speedup: {speedup:.2f}x")

    # Paper shape: overlap removes the inter-head idleness on the PIM.
    assert dual_tl.pim_idle_fraction < blocked_tl.pim_idle_fraction
    assert speedup > 1.1
    record(benchmark, {
        "overlap_speedup": speedup,
        "dual_pim_idle": dual_tl.pim_idle_fraction,
        "blocked_pim_idle": blocked_tl.pim_idle_fraction,
    })
