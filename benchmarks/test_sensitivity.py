"""Calibration-sensitivity tornado: do the conclusions survive the knobs?

Perturbs every fidelity parameter DESIGN.md §6 calls out (bus width, PIM
MAC pacing, blocked-mode overhead, bandwidth derate) by 2x in each
direction and re-measures the NeuPIMs-over-naive speedup.  The headline
conclusion — NeuPIMs beats the naive NPU+PIM integration — must hold at
*every* setting.
"""

from repro.analysis.report import format_table
from repro.analysis.sensitivity import (
    conclusion_robust,
    sensitivity_sweep,
    tornado_table,
)

from benchmarks.conftest import record


def test_sensitivity_tornado(benchmark):
    points = benchmark.pedantic(sensitivity_sweep, rounds=1, iterations=1)

    table = tornado_table(points)
    rows = []
    for knob, by_scale in sorted(table.items()):
        scales = sorted(by_scale)
        rows.append([knob] + [f"{by_scale[s]:.2f}x @ {s}x" for s in scales])
    width = max(len(r) for r in rows)
    headers = ["knob"] + [f"setting {i}" for i in range(1, width)]
    rows = [r + [""] * (width - len(r)) for r in rows]
    print()
    print(format_table(headers, rows,
                       title="Calibration sensitivity — NeuPIMs speedup "
                             "over naive NPU+PIM (GPT3-7B, B=256, ShareGPT)"))

    assert conclusion_robust(points, threshold=1.0), \
        "NeuPIMs lost to the naive integration under some calibration"
    speedups = [p.speedup_vs_naive for p in points]
    spread = max(speedups) / min(speedups)
    print(f"speedup range: {min(speedups):.2f}x - {max(speedups):.2f}x "
          f"(spread {spread:.2f}x)")
    record(benchmark, {"min_speedup": min(speedups),
                       "max_speedup": max(speedups)})
