"""Figure 4: arithmetic intensities of LLM layers on the device roofline.

Regenerates the roofline coordinates for GPT3-13B and GPT3-175B: the
``Logit, Attend`` operators of the generation phase sit deep in the
memory-bound region while the summarization phase and the batched
weight-activation GEMMs are compute-bound.
"""

import pytest

from repro.analysis.report import format_table
from repro.model.roofline import roofline_points
from repro.model.spec import GPT3_13B, GPT3_175B

from benchmarks.conftest import record


@pytest.mark.parametrize("spec", [GPT3_13B, GPT3_175B],
                         ids=lambda s: s.name)
def test_fig04_roofline(benchmark, spec):
    points = benchmark(roofline_points, spec, 64, 256)

    rows = [
        (p.phase, p.label, round(p.arithmetic_intensity, 2),
         round(p.attainable_tflops, 1), p.bound)
        for p in points
    ]
    print()
    print(format_table(
        ["phase", "operators", "FLOPs/byte", "attainable TFLOPS", "bound"],
        rows, title=f"Figure 4 — {spec.name} roofline points"))

    gen_mha = next(p for p in points
                   if p.phase == "generation" and "Logit" in p.label)
    sum_gemm = next(p for p in points
                    if p.phase == "summarization" and "QKV" in p.label)
    # Paper shape: generation MHA memory-bound, summarization compute-bound.
    assert gen_mha.bound == "memory"
    assert sum_gemm.bound == "compute"
    record(benchmark, {
        "generation_mha_intensity": gen_mha.arithmetic_intensity,
        "summarization_gemm_intensity": sum_gemm.arithmetic_intensity,
    })
