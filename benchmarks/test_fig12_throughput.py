"""Figure 12: end-to-end throughput of GPU-only / NPU-only / NPU+PIM /
NeuPIMs across models, datasets and batch sizes.

Regenerates all ten panels: {GPT3-7B, 13B, 30B, 175B} x {Alpaca, ShareGPT}
x batch sizes {64, 128, 256, 384, 512}, printing tokens/s per system.
Paper shape: NeuPIMs > NPU+PIM > NPU-only ≈ GPU-only everywhere, with
gains growing with batch size and larger on ShareGPT.
"""

import pytest

from repro.analysis.metrics import compare_systems
from repro.analysis.report import format_table, geomean
from repro.model.spec import GPT3_7B, GPT3_13B, GPT3_30B, GPT3_175B
from repro.serving.trace import ALPACA, SHAREGPT

from benchmarks.conftest import BATCH_SIZES, NUM_BATCHES, record

MODELS = (GPT3_7B, GPT3_13B, GPT3_30B, GPT3_175B)
SYSTEMS = ("GPU-only", "NPU-only", "NPU+PIM", "NeuPIMs")


@pytest.mark.parametrize("trace", [ALPACA, SHAREGPT], ids=lambda t: t.name)
@pytest.mark.parametrize("spec", MODELS, ids=lambda s: s.name)
def test_fig12_throughput(benchmark, spec, trace):
    layers = spec.layers_per_stage(spec.pipeline_parallel)

    def run():
        results = {}
        for batch_size in BATCH_SIZES:
            results[batch_size] = compare_systems(
                spec, trace, batch_size, tp=spec.tensor_parallel,
                layers_resident=layers, num_batches=NUM_BATCHES, seed=1)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for batch_size, point in results.items():
        rows.append([batch_size] + [
            round(point[name].tokens_per_second) for name in SYSTEMS])
    print()
    print(format_table(
        ["batch"] + list(SYSTEMS), rows,
        title=f"Figure 12 — throughput (tokens/s), {spec.name}, {trace.name}"))

    speedups_vs_naive = []
    for batch_size, point in results.items():
        neupims = point["NeuPIMs"].tokens_per_second
        naive = point["NPU+PIM"].tokens_per_second
        npu = point["NPU-only"].tokens_per_second
        gpu = point["GPU-only"].tokens_per_second
        # Paper shape per panel.
        assert neupims > naive, f"B={batch_size}"
        assert neupims > npu, f"B={batch_size}"
        assert naive >= 0.9 * npu, f"B={batch_size}"
        assert 0.3 * npu < gpu < 1.5 * npu, f"B={batch_size}"
        speedups_vs_naive.append(neupims / naive)

    # Gains grow with batch size.
    assert speedups_vs_naive[-1] > speedups_vs_naive[0] * 0.95
    record(benchmark, {
        "geomean_speedup_vs_npu_pim": geomean(speedups_vs_naive),
        "max_speedup_vs_npu_pim": max(speedups_vs_naive),
    })
