"""Figure 9: C/A bus traffic — fine-grained PIM commands vs PIM_GEMV.

Regenerates the command-timing comparison: the baseline encoding drives a
GEMV with per-wave PIM_ACTIVATION / PIM_DOTPRODUCT commands (heavy C/A
traffic), while the NeuPIMs composite PIM_GEMV encoding issues a constant
number of commands, leaving the bus idle for concurrent memory commands.
"""

from repro.analysis.report import format_table
from repro.dram.timing import HbmOrganization
from repro.pim.engine import measure_gemv_latency
from repro.pim.gemv import GemvOp, command_count

from benchmarks.conftest import record


def test_fig09_ca_bus_traffic(benchmark):
    org = HbmOrganization()
    # A ShareGPT-sized logit GEMV: seq 384 x 32 heads rows, head_dim cols.
    op = GemvOp(rows=384 * 32, cols=128, tag="logit")

    def run():
        fine_latency, fine_ctrl = measure_gemv_latency(
            op, composite=False, refresh=False)
        comp_latency, comp_ctrl = measure_gemv_latency(
            op, composite=True, refresh=False)
        return fine_latency, fine_ctrl, comp_latency, comp_ctrl

    fine_latency, fine_ctrl, comp_latency, comp_ctrl = benchmark(run)

    fine_cmds = command_count(op, org, composite=False)
    comp_cmds = command_count(op, org, composite=True)
    fine_busy = fine_ctrl.channel.ca_busy_cycles
    comp_busy = comp_ctrl.channel.ca_busy_cycles
    fine_idle = 1.0 - fine_ctrl.channel.ca_utilization(fine_latency)
    comp_idle = 1.0 - comp_ctrl.channel.ca_utilization(comp_latency)

    rows = [
        ("fine-grained (Newton)", fine_cmds, round(fine_busy),
         round(fine_latency), round(fine_idle, 4)),
        ("composite (NeuPIMs)", comp_cmds, round(comp_busy),
         round(comp_latency), round(comp_idle, 4)),
    ]
    print()
    print(format_table(
        ["encoding", "C/A commands", "bus busy (cyc)", "GEMV latency (cyc)",
         "bus idle fraction"],
        rows, title="Figure 9 — C/A bus occupancy per GEMV"))

    # Paper shape: composite slashes command traffic and frees the bus.
    assert comp_cmds < fine_cmds / 20
    assert comp_busy < fine_busy / 10
    assert comp_idle > fine_idle
    assert comp_latency <= fine_latency
    record(benchmark, {
        "fine_commands": fine_cmds, "composite_commands": comp_cmds,
        "fine_bus_busy": fine_busy, "composite_bus_busy": comp_busy,
    })
