"""Figure 6: NPU/PIM utilization per decoder-block layer (naive NPU+PIM).

Regenerates the per-layer utilization bars of the blocked-mode NPU+PIM
baseline: the NPU is busy during QKV generation and projection+FFNs while
the PIM idles, and vice versa during MHA — so the *total* utilization of
both units stays under 40%.
"""

from repro.analysis.report import format_table
from repro.baselines.npu_pim import naive_npu_pim_device
from repro.model.spec import GPT3_30B
from repro.serving.trace import SHAREGPT, warmed_batch

from benchmarks.conftest import record


def test_fig06_per_layer_utilization(benchmark):
    device = naive_npu_pim_device(GPT3_30B, tp=4, layers_resident=24)
    batch = warmed_batch(SHAREGPT, 256, seed=0)

    def run():
        device.assign_channels([r for r in batch if r.channel is None])
        gemm = device.gemm_stage_cycles(len(batch))
        mha = device.mha_stage(batch)
        return gemm, mha

    gemm, mha = benchmark(run)

    t_mha = mha.duration(device.config.dual_row_buffer)
    total = gemm.qkv_cycles + t_mha + gemm.projffn_cycles
    npu_during_gemm = gemm.compute_cycles / gemm.total_cycles
    pim_during_mha = mha.pim_busy_cycles / t_mha
    npu_total = gemm.compute_cycles / total
    pim_total = mha.pim_busy_cycles / total

    rows = [
        ("QKV Generation", round(npu_during_gemm, 3), 0.0),
        ("Multi-Head Attention", 0.0, round(pim_during_mha, 3)),
        ("Projection + FFNs", round(npu_during_gemm, 3), 0.0),
        ("Total", round(npu_total, 3), round(pim_total, 3)),
    ]
    print()
    print(format_table(["stage", "NPU compute", "PIM compute"], rows,
                       title="Figure 6 — naive NPU+PIM per-stage utilization"
                             " (GPT3-30B, B=256, ShareGPT)"))

    # Paper shape: each unit idles while the other works; totals < 40%.
    assert npu_total < 0.4
    assert pim_total < 0.4
    record(benchmark, {"npu_total": npu_total, "pim_total": pim_total})
