"""Unit tests for the NPU substrate (systolic arrays, vector units, chip)."""

import pytest

from repro.dram.timing import HbmOrganization
from repro.model.layers import GemmShape, GemvShape
from repro.npu.chip import NpuChip, NpuConfig
from repro.npu.systolic import (
    SystolicConfig,
    gemm_compute_cycles,
    gemm_efficiency,
    schedule_gemm,
)
from repro.npu.vector import (
    VectorConfig,
    activation_cycles,
    elementwise_cycles,
    layernorm_cycles,
    softmax_cycles,
)


class TestSystolic:
    def test_peak_flops(self):
        config = SystolicConfig()
        assert config.peak_flops == 2 * 128 * 128 * 1e9

    def test_tile_counts(self):
        schedule = schedule_gemm(GemmShape(m=10, k=256, n=384),
                                 SystolicConfig(), num_arrays=1)
        assert schedule.tiles_k == 2
        assert schedule.tiles_n == 3
        assert schedule.total_tiles == 6

    def test_small_m_pays_pipeline_depth(self):
        """Sub-batch interleaving's penalty at small batch: the tile pitch
        cannot drop below the array depth."""
        config = SystolicConfig()
        small = schedule_gemm(GemmShape(m=8, k=128, n=128), config, 1)
        assert small.cycles_per_tile == 128

    def test_large_m_streams_at_m_cycles(self):
        config = SystolicConfig()
        schedule = schedule_gemm(GemmShape(m=512, k=128, n=128), config, 1)
        assert schedule.cycles_per_tile == 512

    def test_arrays_divide_tiles(self):
        gemm = GemmShape(m=256, k=1024, n=1024)
        one = gemm_compute_cycles(gemm, SystolicConfig(), num_arrays=1)
        eight = gemm_compute_cycles(gemm, SystolicConfig(), num_arrays=8)
        assert one > 7 * eight

    def test_efficiency_high_for_large_m(self):
        gemm = GemmShape(m=1024, k=4096, n=4096)
        assert gemm_efficiency(gemm, SystolicConfig(), 8) > 0.9

    def test_efficiency_low_for_tiny_m(self):
        gemm = GemmShape(m=4, k=4096, n=4096)
        assert gemm_efficiency(gemm, SystolicConfig(), 8) < 0.1

    def test_invalid_arrays_raise(self):
        with pytest.raises(ValueError):
            schedule_gemm(GemmShape(m=1, k=1, n=1), SystolicConfig(), 0)


class TestVector:
    def test_elementwise_scales_with_elements(self):
        config = VectorConfig()
        assert elementwise_cycles(12800, config) > \
            elementwise_cycles(1280, config)

    def test_zero_elements_zero_cycles(self):
        assert elementwise_cycles(0, VectorConfig()) == 0.0

    def test_launch_overhead_floor(self):
        config = VectorConfig(launch_overhead=16)
        assert elementwise_cycles(1, config) == 17

    def test_softmax_scales_with_heads_and_seq(self):
        config = VectorConfig()
        base = softmax_cycles(128, 8, config)
        assert softmax_cycles(256, 8, config) > base
        assert softmax_cycles(128, 16, config) > base

    def test_softmax_invalid_raises(self):
        with pytest.raises(ValueError):
            softmax_cycles(0, 8, VectorConfig())

    def test_layernorm_and_activation_positive(self):
        config = VectorConfig()
        assert layernorm_cycles(16, 4096, config) > 0
        assert activation_cycles(16, 16384, config) > 0

    def test_negative_elements_raise(self):
        with pytest.raises(ValueError):
            elementwise_cycles(-1, VectorConfig())


class TestNpuChip:
    def test_peak_flops_table2(self):
        """8 x 128x128 arrays at 1 GHz = 262 TFLOPS."""
        assert NpuConfig().peak_flops == pytest.approx(262.144e12)

    def test_gemm_cycles_roofline_max(self):
        chip = NpuChip()
        gemm = GemmShape(m=256, k=4096, n=4096)
        cycles = chip.gemm_cycles(gemm)
        compute = gemm_compute_cycles(gemm, chip.config.systolic, 8)
        memory = chip._bytes_cycles(gemm.bytes_moved(2))
        assert cycles == pytest.approx(max(compute, memory))

    def test_small_batch_gemm_memory_bound(self):
        """At tiny M, weight streaming dominates — the GPU/NPU generation
        bottleneck of §2.1."""
        chip = NpuChip()
        gemm = GemmShape(m=4, k=4096, n=4096)
        compute = gemm_compute_cycles(gemm, chip.config.systolic, 8)
        assert chip.gemm_cycles(gemm) > compute

    def test_gemv_bandwidth_bound(self):
        chip = NpuChip()
        gemv = GemvShape(rows=4096, cols=4096)
        expected = chip._bytes_cycles(gemv.bytes_moved(2))
        assert chip.gemv_cycles(gemv) == pytest.approx(expected)

    def test_gemm_utilization_increases_with_batch(self):
        chip = NpuChip()
        util_small = chip.gemm_compute_utilization(GemmShape(4, 4096, 4096))
        util_large = chip.gemm_compute_utilization(GemmShape(512, 4096, 4096))
        assert util_large > 3 * util_small

    def test_softmax_parallel_over_vector_units(self):
        chip = NpuChip()
        one_head = chip.softmax_latency(1024, 1)
        many_heads = chip.softmax_latency(1024, 8)
        assert many_heads < 8 * one_head

    def test_invalid_derate_raises(self):
        with pytest.raises(ValueError):
            NpuChip(bandwidth_derate=0.0)

    def test_effective_bandwidth_derated(self):
        chip = NpuChip(org=HbmOrganization(), bandwidth_derate=0.5)
        assert chip.effective_bandwidth == \
            pytest.approx(0.5 * HbmOrganization().total_bandwidth)
