"""Unit tests for the baseline device models."""

import pytest

from repro.baselines.gpu import (
    A100_40GB,
    RTX3090_24GB,
    GpuModel,
    GpuOnlyDevice,
    gpu_cluster_utilization,
)
from repro.baselines.npu_only import NpuOnlyDevice
from repro.baselines.npu_pim import ablation_device, naive_npu_pim_device
from repro.baselines.transpim import TransPimDevice, TransPimModel
from repro.core.config import NeuPimsConfig
from repro.core.device import NeuPimsDevice
from repro.model.spec import GPT3_7B, GPT_NEOX_20B, LLAMA2_13B
from repro.serving.trace import ALPACA, SHAREGPT, warmed_batch


def batch(n=32, seed=0, trace=SHAREGPT):
    return warmed_batch(trace, n, seed=seed)


class TestNpuOnly:
    def test_iteration_latency_positive(self):
        device = NpuOnlyDevice(GPT3_7B, layers_resident=2)
        assert device.iteration(batch(8)).latency > 0

    def test_mha_dominates_for_long_sequences(self):
        """§3.1: bandwidth-bound MHA keeps the NPU idle most of the time."""
        device = NpuOnlyDevice(GPT3_7B, tp=4, layers_resident=2)
        result = device.iteration(batch(256))
        assert result.utilization("npu") < 0.4

    def test_no_pim_activity(self):
        device = NpuOnlyDevice(GPT3_7B, layers_resident=2)
        assert device.iteration(batch(8)).utilization("pim") == 0.0

    def test_external_bytes_include_kv(self):
        device = NpuOnlyDevice(GPT3_7B, layers_resident=1)
        short = device.iteration(batch(8, trace=ALPACA)).external_bytes
        long = device.iteration(batch(8, trace=SHAREGPT, seed=1)).external_bytes
        assert long > short

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            NpuOnlyDevice(GPT3_7B).iteration([])

    def test_executor(self):
        device = NpuOnlyDevice(GPT3_7B, layers_resident=1)
        reqs = batch(4)
        assert device.executor()(reqs) == pytest.approx(
            device.iteration(reqs).latency)


class TestGpuOnly:
    def test_iteration_latency_positive(self):
        device = GpuOnlyDevice(GPT3_7B, layers_resident=2)
        assert device.iteration(batch(8)).latency > 0

    def test_gpu_marginally_below_npu_only(self):
        """Figure 12: GPU-only and NPU-only are close, GPU slightly lower."""
        gpu = GpuOnlyDevice(GPT3_7B, tp=4, layers_resident=4)
        npu = NpuOnlyDevice(GPT3_7B, tp=4, layers_resident=4)
        reqs = batch(128)
        t_gpu = gpu.iteration(reqs).latency
        t_npu = npu.iteration(list(reqs)).latency
        assert 1.0 <= t_gpu / t_npu <= 3.0

    def test_a100_faster_than_rtx3090(self):
        reqs = batch(64)
        fast = GpuOnlyDevice(GPT3_7B, A100_40GB, layers_resident=2)
        slow = GpuOnlyDevice(GPT3_7B, RTX3090_24GB, layers_resident=2)
        assert fast.iteration(reqs).latency < slow.iteration(reqs).latency

    def test_invalid_gpu_model_raises(self):
        with pytest.raises(ValueError):
            GpuModel(roofline=A100_40GB.roofline, memory_bytes=0)

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            GpuOnlyDevice(GPT3_7B).iteration([])


class TestFigure5:
    def test_capacity_utilization_near_one(self):
        """Figure 5: GPU counts are capacity-determined, so capacity
        utilization approaches 100%."""
        for spec in (GPT_NEOX_20B, LLAMA2_13B):
            util = gpu_cluster_utilization(spec, A100_40GB)
            assert util["capacity"] > 0.6

    def test_compute_utilization_under_40_percent(self):
        """Figure 5: compute utilization stays below 40%."""
        for spec in (GPT_NEOX_20B, LLAMA2_13B):
            util = gpu_cluster_utilization(spec, A100_40GB)
            assert util["compute"] < 0.4

    def test_bandwidth_utilization_exceeds_compute(self):
        util = gpu_cluster_utilization(GPT_NEOX_20B, A100_40GB)
        assert util["bandwidth"] > util["compute"]

    def test_gpu_count_scales_with_model(self):
        small = gpu_cluster_utilization(LLAMA2_13B, A100_40GB)
        large = gpu_cluster_utilization(GPT_NEOX_20B, A100_40GB)
        assert large["num_gpus"] >= small["num_gpus"]

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            gpu_cluster_utilization(GPT3_7B, A100_40GB, batch_size=0)


class TestNaiveNpuPim:
    def test_all_features_disabled(self):
        device = naive_npu_pim_device(GPT3_7B)
        assert not device.config.dual_row_buffer
        assert not device.config.composite_isa
        assert not device.config.greedy_binpack
        assert not device.config.sub_batch_interleaving

    def test_hardware_overrides_preserved(self):
        config = NeuPimsConfig(bandwidth_derate=0.5)
        device = naive_npu_pim_device(GPT3_7B, config=config)
        assert device.config.bandwidth_derate == 0.5
        assert not device.config.dual_row_buffer

    def test_ablation_stacking_improves_throughput(self):
        """Figure 13: each added technique helps at large batch."""
        reqs = batch(256, seed=2)
        latencies = []
        for flags in (
            {},
            {"dual_row_buffer": True},
            {"dual_row_buffer": True, "greedy_binpack": True},
            {"dual_row_buffer": True, "greedy_binpack": True,
             "sub_batch_interleaving": True},
        ):
            device = ablation_device(GPT3_7B, tp=4, layers_resident=4, **flags)
            fresh = batch(256, seed=2)
            latencies.append(device.iteration(fresh).latency)
        assert latencies[1] < latencies[0]          # DRB helps
        assert latencies[2] <= latencies[1] * 1.001  # GMLBP never hurts
        assert latencies[3] < latencies[2]          # SBI helps at B=256

    def test_composite_isa_tied_to_drb(self):
        device = ablation_device(GPT3_7B, dual_row_buffer=True)
        assert device.config.composite_isa
        device = ablation_device(GPT3_7B, dual_row_buffer=False)
        assert not device.config.composite_isa


class TestTransPim:
    def test_single_request_token_cycles_positive(self):
        device = TransPimDevice(GPT3_7B, layers_resident=2)
        assert device.request_token_cycles(128) > 0

    def test_no_batching_latency_linear_in_batch(self):
        device = TransPimDevice(GPT3_7B, layers_resident=2)
        one = device.iteration(batch(1)).latency
        eight = device.iteration(batch(8, seed=1)).latency
        assert eight > 5 * one

    def test_neupims_speedup_grows_with_batch(self):
        """Figure 15: the gap grows with batch size (it *is* the lost
        batching)."""
        speedups = []
        for size in (16, 64):
            reqs = batch(size, seed=3)
            neupims = NeuPimsDevice(GPT3_7B, tp=1, layers_resident=2)
            transpim = TransPimDevice(GPT3_7B, layers_resident=2)
            t_n = neupims.iteration(reqs).latency
            t_t = transpim.iteration(batch(size, seed=3)).latency
            speedups.append(t_t / t_n)
        assert speedups[1] > speedups[0] > 1.0

    def test_speedup_order_of_magnitude_at_large_batch(self):
        """Figure 15 reports 79x-431x; at batch 256 we expect >> 10x."""
        reqs = batch(256, seed=4)
        neupims = NeuPimsDevice(GPT3_7B, tp=1, layers_resident=2)
        transpim = TransPimDevice(GPT3_7B, layers_resident=2)
        speedup = (transpim.iteration(batch(256, seed=4)).latency
                   / neupims.iteration(reqs).latency)
        assert speedup > 30

    def test_invalid_efficiency_raises(self):
        with pytest.raises(ValueError):
            TransPimModel(dataflow_efficiency=0.0)

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            TransPimDevice(GPT3_7B).iteration([])
