"""Tests for instruction scheduling and binary serialization."""

import pytest

from repro.compiler.lower import emit_binary, lower_model
from repro.compiler.schedule import (
    balance_report,
    deserialize,
    roundtrip_equal,
    schedule_binary,
    serialize,
)
from repro.core.config import NeuPimsConfig
from repro.model.spec import GPT3_7B


@pytest.fixture
def binary():
    module = lower_model(GPT3_7B, [64, 128], num_layers=1)
    return emit_binary(module, NeuPimsConfig())


class TestSchedule:
    def test_all_instructions_scheduled(self, binary):
        queues = schedule_binary(binary)
        assert queues.npu_instruction_count == len(binary.npu_instructions)
        assert len(queues.pim) == len(binary.pim_commands)

    def test_arrays_load_balanced(self, binary):
        queues = schedule_binary(binary)
        report = balance_report(queues)
        assert report["arrays"] == 8
        assert report["imbalance"] < 1.1

    def test_makespan_matches_binary_estimate(self, binary):
        queues = schedule_binary(binary)
        assert queues.npu_makespan_cycles() == pytest.approx(
            binary.npu_cycle_estimate)

    def test_empty_binary(self):
        from repro.compiler.lower import DeviceBinary
        queues = schedule_binary(DeviceBinary(model_name="empty"))
        assert queues.npu_makespan_cycles() == 0.0
        assert balance_report(queues)["arrays"] == 0


class TestSerialization:
    def test_roundtrip(self, binary):
        text = serialize(binary)
        restored = deserialize(text)
        assert roundtrip_equal(binary, restored)

    def test_serialized_deterministic(self, binary):
        assert serialize(binary) == serialize(binary)

    def test_bad_magic_raises(self):
        with pytest.raises(ValueError, match="magic"):
            deserialize("GARBAGE\nmodel x\n")

    def test_missing_model_header_raises(self):
        with pytest.raises(ValueError, match="model"):
            deserialize("NEUPIMS-BIN v1\n")

    def test_malformed_instruction_raises(self):
        text = "NEUPIMS-BIN v1\nmodel m\nNPU 0 qkv\n"
        with pytest.raises(ValueError, match="malformed"):
            deserialize(text)

    def test_unknown_record_raises(self):
        text = "NEUPIMS-BIN v1\nmodel m\nGPU 0\n"
        with pytest.raises(ValueError, match="unknown record"):
            deserialize(text)

    def test_pim_commands_preserved_exactly(self, binary):
        restored = deserialize(serialize(binary))
        originals = [c for c in binary.pim_commands if c.banks]
        copies = [c for c in restored.pim_commands if c.banks]
        assert originals == copies
