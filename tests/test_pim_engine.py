"""Unit tests for the PIM execution engine and calibration."""

import pytest

from repro.dram.timing import HbmOrganization
from repro.model.spec import GPT3_7B
from repro.pim.engine import (
    CalibratedLatencies,
    PimChannelEngine,
    calibrate,
    measure_gemv_latency,
)
from repro.pim.gemv import GemvOp


class TestMeasureGemv:
    def test_latency_positive(self):
        latency, _ = measure_gemv_latency(GemvOp(rows=64, cols=512))
        assert latency > 0

    def test_latency_scales_with_rows(self):
        small, _ = measure_gemv_latency(GemvOp(rows=32, cols=512),
                                        refresh=False)
        large, _ = measure_gemv_latency(GemvOp(rows=320, cols=512),
                                        refresh=False)
        assert large > small

    def test_composite_not_slower_than_fine_grained(self):
        op = GemvOp(rows=320, cols=1024)
        composite, _ = measure_gemv_latency(op, composite=True, refresh=False)
        fine, _ = measure_gemv_latency(op, composite=False, refresh=False)
        assert composite <= fine

    def test_controller_returned_for_inspection(self):
        op = GemvOp(rows=32, cols=512)
        _, controller = measure_gemv_latency(op)
        assert controller.records


class TestCalibration:
    def test_calibrated_latencies_positive(self):
        cal = calibrate()
        assert cal.l_tile > 0
        assert cal.l_gwrite > 0

    def test_l_tile_near_wave_pitch(self):
        """The measured per-wave cost should sit near the page MAC time."""
        org = HbmOrganization()
        cal = calibrate(org=org)
        from repro.dram.timing import PimTiming, TimingParams
        mac = PimTiming().dotprod_cycles_per_page(org.page_bytes)
        pitch = max(mac, TimingParams().row_cycle // 2)
        assert 0.5 * pitch <= cal.l_tile <= 2.0 * pitch

    def test_invalid_latencies_rejected(self):
        with pytest.raises(ValueError):
            CalibratedLatencies(l_tile=0.0, l_gwrite=1.0)


class TestPimChannelEngine:
    def test_run_requests_returns_per_request_timings(self):
        engine = PimChannelEngine(GPT3_7B)
        total, executions = engine.run_requests([64, 128])
        assert total > 0
        assert len(executions) == 2
        assert all(e.total_cycles > 0 for e in executions)

    def test_longer_sequence_takes_longer(self):
        engine = PimChannelEngine(GPT3_7B)
        _, executions = engine.run_requests([64, 512])
        assert executions[1].total_cycles > executions[0].total_cycles

    def test_requests_serialize_on_channel(self):
        engine = PimChannelEngine(GPT3_7B)
        single, _ = engine.run_requests([128])
        double, _ = engine.run_requests([128, 128])
        assert double > 1.5 * single

    def test_mha_ops_shapes(self):
        engine = PimChannelEngine(GPT3_7B)
        logit, attend = engine.mha_ops(seq_len=100)
        assert logit.rows == 100 * 32
        assert logit.cols == 128
        assert attend.rows == 128 * 32
        assert attend.cols == 100

    def test_blocked_engine_slower_than_dual(self):
        dual = PimChannelEngine(GPT3_7B, dual_row_buffer=True, composite=True)
        blocked = PimChannelEngine(GPT3_7B, dual_row_buffer=False,
                                   composite=False)
        t_dual, _ = dual.run_requests([256])
        t_blocked, _ = blocked.run_requests([256])
        assert t_blocked >= t_dual
