"""The cross-fidelity counters subsystem: taxonomy, conservation, PGO.

Covers the eighth registry kind end to end:

* the frozen :class:`~repro.counters.report.CounterReport` (canonical
  pairs, merge/drift arithmetic, JSON round trips);
* the spec-layer satellite — ``counters``/``counters_options`` fields
  with frozen-canonical-pairs discipline and the pre-counters JSON
  shape of built-in-only payloads;
* conservation invariants — identical :class:`CounterReport`\\ s across
  ``drain_fast`` on/off, grouping ``auto``/``off``, stream vs batch
  consumption, and the 1-node fleet rollup vs a plain ``Session``;
* executor-wrapper composition — the counting wrapper and a
  latency-scaling degrade wrapper commute on all simulated metrics;
* the refutation harness and the :class:`FidelityProfile` behind
  ``fidelity="auto"`` (deterministic audits, spec resolution, and the
  analytic-where-proven / cycle-where-refuted speed contract).
"""

import json
from dataclasses import replace

import pytest

from repro.api.session import RunResult, Session
from repro.api.spec import ScenarioSpec, TrafficSpec
from repro.counters import (COUNTER_NAMES, CounterCollector, CounterReport,
                            FidelityProfile, counting_executor, region_key,
                            spec_region)
from repro.counters.refute import (DEFAULT_BOUNDS, REGIONS, fine_wave_pitch,
                                   predict_gemv_counters, run_refute)


def serving_spec(**overrides):
    """A small serving scenario with typed counters attached."""
    base = dict(
        model="gpt3-7b", counters="typed",
        traffic=TrafficSpec(kind="poisson", max_requests=8,
                            horizon_cycles=5e6, seed=3))
    base.update(overrides)
    return ScenarioSpec(**base)


# ----------------------------------------------------------------------
# CounterReport.
# ----------------------------------------------------------------------

class TestCounterReport:
    def test_taxonomy_is_sorted_and_namespaced(self):
        assert list(COUNTER_NAMES) == sorted(COUNTER_NAMES)
        assert all("." in name for name in COUNTER_NAMES)

    def test_canonical_pairs(self):
        a = CounterReport.from_mapping(
            {"b.x": 2.0, "a.y": 1.0, "c.z": 0.0})
        assert a.counters == (("a.y", 1.0), ("b.x", 2.0))
        assert a.get("a.y") == 1.0
        assert a.get("missing") == 0.0
        assert bool(a) and not bool(CounterReport())

    def test_merge_sums_counterwise(self):
        a = CounterReport.from_mapping({"a": 1.0, "b": 2.0})
        b = CounterReport.from_mapping({"b": 3.0, "c": 4.0})
        merged = CounterReport.merge([a, b])
        assert merged.as_dict() == {"a": 1.0, "b": 5.0, "c": 4.0}

    def test_json_round_trip(self):
        report = CounterReport.from_mapping({"a": 1.5, "b": 2.0})
        payload = json.loads(json.dumps(report.to_dict()))
        assert CounterReport.from_dict(payload) == report

    def test_drift_is_symmetric_relative_error(self):
        a = CounterReport.from_mapping({"x": 100.0, "y": 1.0})
        b = CounterReport.from_mapping({"x": 80.0, "z": 2.0})
        drift = a.drift(b)
        assert drift["x"] == pytest.approx(0.2)
        assert drift["y"] == 1.0 and drift["z"] == 1.0
        assert drift == b.drift(a)
        assert CounterReport().drift(CounterReport()) == {}


class TestCounterCollector:
    def test_charge_and_snapshot(self):
        collector = CounterCollector()
        collector.charge({"a": 1.0, "b": 2.0})
        collector.charge({"a": 1.0}, scale=3.0)
        collector.charge_one("c", 0.5)
        assert collector.snapshot() == {"a": 4.0, "b": 2.0, "c": 0.5}
        assert collector.report() == CounterReport.from_mapping(
            {"a": 4.0, "b": 2.0, "c": 0.5})
        collector.reset()
        assert not collector.report()

    def test_counting_executor_passes_latency_through(self):
        collector = CounterCollector()
        wrapped = counting_executor(collector)(lambda batch: 42.0)
        assert wrapped([1, 2, 3]) == 42.0
        assert collector.snapshot() == {"exec.wrapped_iterations": 1.0,
                                        "exec.wrapped_requests": 3.0}


# ----------------------------------------------------------------------
# Spec-layer satellite.
# ----------------------------------------------------------------------

class TestSpecCountersFields:
    def test_defaults_omitted_from_payload(self):
        """Built-in-only payloads keep their exact pre-counters shape."""
        payload = ScenarioSpec().to_dict()
        assert "counters" not in payload
        assert "counters_options" not in payload

    def test_round_trip_with_counters(self):
        spec = ScenarioSpec(counters="typed")
        payload = spec.to_dict()
        assert payload["counters"] == "typed"
        assert ScenarioSpec.from_dict(
            json.loads(json.dumps(payload))) == spec

    def test_options_freeze_canonically(self):
        spec = ScenarioSpec(fidelity="auto",
                            fidelity_options={"profile": {"regions": {}}})
        assert spec == ScenarioSpec.from_dict(spec.to_dict())
        assert hash(spec) == hash(ScenarioSpec.from_dict(spec.to_dict()))

    def test_unknown_counters_component_rejected(self):
        with pytest.raises(ValueError, match="counters"):
            ScenarioSpec(counters="nope")

    def test_unknown_key_regression(self):
        payload = ScenarioSpec().to_dict()
        payload["countres"] = "typed"
        with pytest.raises((TypeError, ValueError)):
            ScenarioSpec.from_dict(payload)

    def test_counters_rejected_under_pipeline_parallelism(self):
        with pytest.raises(ValueError, match="pp"):
            ScenarioSpec(counters="typed", pp=2)

    def test_component_factories(self):
        session = Session(ScenarioSpec())
        from repro.registry import REGISTRY
        assert REGISTRY.create("counters", "none", session) is None
        created = REGISTRY.create("counters", "typed", session)
        assert isinstance(created, CounterCollector)
        with pytest.raises(ValueError, match="unknown"):
            REGISTRY.create("counters", "typed", session, bogus=1)


# ----------------------------------------------------------------------
# Conservation invariants.
# ----------------------------------------------------------------------

class TestConservation:
    def test_drain_fast_preserves_counter_view(self):
        """Batch replay charges counters arithmetically, bit-identical."""
        from repro.pim.engine import measure_gemv_latency
        from repro.pim.gemv import GemvOp
        op = GemvOp(rows=2048, cols=512, tag="t")
        for composite, dual in REGIONS:
            slow_t, slow = measure_gemv_latency(
                op, dual_row_buffer=dual, composite=composite, fast=False)
            fast_t, fast = measure_gemv_latency(
                op, dual_row_buffer=dual, composite=composite, fast=True)
            assert fast_t == slow_t
            assert fast.counter_view() == slow.counter_view(), \
                region_key(composite, dual)

    def test_grouping_modes_bit_identical(self):
        reports = {}
        for grouping in ("auto", "off"):
            spec = serving_spec()
            spec = spec.override(
                serving=replace(spec.serving, grouping=grouping))
            reports[grouping] = Session(spec).run().counters
        assert reports["auto"] == reports["off"]
        assert reports["auto"]

    def test_stream_vs_batch_bit_identical(self):
        batch = Session(serving_spec()).run()
        streamed = Session(serving_spec())
        for _ in streamed.stream():
            pass
        assert streamed.result().counters == batch.counters

    def test_result_rebuild_never_double_charges(self):
        session = Session(serving_spec())
        first = session.run().counters
        assert session.result().counters == first
        assert session.result().counters == first

    def test_expected_counter_names_present(self):
        report = Session(serving_spec()).run().counters
        assert set(report.as_dict()) <= set(COUNTER_NAMES)
        assert report.get("pim.gemv_issue_slots") > 0
        assert report.get("npu.systolic_busy_cycles") > 0
        assert report.get("kv.page_churn") > 0

    def test_single_node_fleet_rollup_matches_plain_session(self):
        """1-node fleet counters == plain Session counters (rollup)."""
        from repro.cluster import FleetSpec, run_fleet
        node = serving_spec()
        fleet = FleetSpec(nodes=(node,), traffic=node.traffic)
        fleet_result = run_fleet(fleet)
        plain = Session(node).run()
        node_report = fleet_result.nodes[0].counters
        assert node_report == plain.counters
        assert CounterReport.merge(
            n.counters for n in fleet_result.nodes) == plain.counters

    def test_disabled_path_reports_nothing(self):
        spec = serving_spec(counters="none")
        session = Session(spec)
        result = session.run()
        assert session.counters is None
        assert not result.counters
        assert "counters" not in result.to_dict()


# ----------------------------------------------------------------------
# RunResult integration.
# ----------------------------------------------------------------------

class TestRunResultCounters:
    def test_round_trip(self):
        result = Session(serving_spec()).run()
        payload = json.loads(json.dumps(result.to_dict()))
        rebuilt = RunResult.from_dict(payload)
        assert rebuilt.counters == result.counters
        assert rebuilt.to_dict() == result.to_dict()

    def test_counters_sampled_events_fold_to_iteration_charges(self):
        from repro.serving.events import CountersSampled
        session = Session(serving_spec())
        sampled = [e for e in session.stream()
                   if isinstance(e, CountersSampled)]
        assert sampled
        folded = CounterReport.merge(
            CounterReport(counters=e.counters) for e in sampled)
        # Events carry the per-iteration device vectors; the final
        # report adds the build-time KV churn on top.
        expected = session.result().counters.as_dict()
        expected.pop("kv.page_churn", None)
        assert folded.as_dict() == pytest.approx(expected)


# ----------------------------------------------------------------------
# Executor-wrapper composition (the ordering-contract satellite).
# ----------------------------------------------------------------------

class TestWrapperComposition:
    @staticmethod
    def _degrade(factor):
        def wrapper(inner):
            def run(batch):
                return inner(batch) * factor
            return run
        return wrapper

    def _run(self, wrappers):
        spec = serving_spec()
        spec = spec.override(
            serving=replace(spec.serving, grouping="off"))
        session = Session(spec)

        def composed(inner):
            for wrap in reversed(wrappers):
                inner = wrap(inner)
            return inner
        session.executor_wrapper = composed
        return session.run()

    def test_counting_commutes_with_degrade(self):
        """Pass-through counting composes commutatively with derates."""
        degrade = self._degrade(1.25)
        col_a, col_b = CounterCollector(), CounterCollector()
        a = self._run([counting_executor(col_a), degrade])
        b = self._run([degrade, counting_executor(col_b)])
        assert a.to_dict() == b.to_dict()
        assert col_a.snapshot() == col_b.snapshot()
        assert col_a.snapshot()["exec.wrapped_iterations"] == a.iterations


# ----------------------------------------------------------------------
# Refutation harness.
# ----------------------------------------------------------------------

class TestRefute:
    def test_default_grid_within_bounds(self):
        report = run_refute(seq_lens=(128, 512))
        assert report["passed"] and not report["violations"]
        for name, entry in report["worst"].items():
            assert entry["drift"] <= report["bounds"][name]
        assert len(report["cells"]) == len(REGIONS) * 2 * 2
        # JSON-ready end to end.
        json.dumps(report)

    def test_issue_slots_exact_everywhere(self):
        report = run_refute(seq_lens=(128,))
        for cell in report["cells"]:
            slot = cell["counters"]["pim.gemv_issue_slots"]
            assert slot["predicted"] == slot["measured"]

    def test_fine_wave_pitch_matches_measurement(self):
        """The closed-form fine pitch is exact (refresh off)."""
        from repro.dram.timing import (HbmOrganization, PimTiming,
                                       TimingParams)
        from repro.pim.engine import measure_gemv_latency
        from repro.pim.gemv import GemvOp
        org, timing, pim = HbmOrganization(), TimingParams(), PimTiming()
        pitch = fine_wave_pitch(timing, org, pim)
        per_wave = {}
        for rows in (2048, 4096):
            op = GemvOp(rows=rows, cols=128, tag="t")
            latency, _ = measure_gemv_latency(
                op, composite=False, refresh=False, fast=True)
            per_wave[op.waves(org, 2)] = latency
        waves = sorted(per_wave)
        measured_pitch = ((per_wave[waves[1]] - per_wave[waves[0]])
                          / (waves[1] - waves[0]))
        assert measured_pitch == pytest.approx(pitch)

    def test_bad_bounds_and_seq_lens_rejected(self):
        with pytest.raises(ValueError, match="unknown counter bound"):
            run_refute(seq_lens=(128,), bounds={"nope": 1.0})
        with pytest.raises(ValueError, match="positive"):
            run_refute(seq_lens=(0,))

    def test_violations_pin_regions_to_cycle(self):
        """A refuted region is demoted to cycle in the emitted profile."""
        report = run_refute(seq_lens=(512,),
                            bounds={"dram.ca_busy_cycles": 0.0})
        assert not report["passed"]
        violated = {v["region"] for v in report["violations"]}
        assert violated
        profile = FidelityProfile.from_dict(report["profile"])
        for composite, dual in REGIONS:
            region = region_key(composite, dual)
            expected = "cycle" if region in violated else "analytic"
            assert profile.tier_for(region) == expected

    def test_predictions_are_pure_arithmetic(self):
        from repro.core.estimator import analytic_latencies
        from repro.dram.timing import (HbmOrganization, PimTiming,
                                       TimingParams)
        from repro.pim.gemv import GemvOp
        org, timing, pim = HbmOrganization(), TimingParams(), PimTiming()
        latencies = analytic_latencies(timing, org, pim)
        op = GemvOp(rows=1024, cols=128, tag="t")
        counters, latency = predict_gemv_counters(
            op, org, True, 2, timing, pim, latencies)
        assert latency > 0
        assert set(counters) == set(DEFAULT_BOUNDS)
        again, _ = predict_gemv_counters(op, org, True, 2, timing, pim,
                                         latencies)
        assert counters == again


# ----------------------------------------------------------------------
# FidelityProfile and fidelity="auto".
# ----------------------------------------------------------------------

class TestFidelityProfile:
    def test_round_trip_and_unknown_key(self):
        profile = FidelityProfile(
            regions=(("composite:dual", "cycle"),),
            default="analytic", audit_fraction=0.25, seed=7)
        payload = json.loads(json.dumps(profile.to_dict()))
        assert FidelityProfile.from_dict(payload) == profile
        with pytest.raises(ValueError, match="unknown FidelityProfile"):
            FidelityProfile.from_dict({"regions": {}, "nope": 1})

    def test_validation(self):
        with pytest.raises(ValueError, match="tier"):
            FidelityProfile(regions=(("r", "quantum"),))
        with pytest.raises(ValueError, match="audit_fraction"):
            FidelityProfile(audit_fraction=1.5)

    def test_audit_is_deterministic_and_seeded(self):
        profile = FidelityProfile(audit_fraction=0.5, seed=1)
        tokens = [f"scenario-{i}" for i in range(200)]
        first = [profile.decide("composite:dual", t) for t in tokens]
        assert first == [profile.decide("composite:dual", t)
                         for t in tokens]
        audited = first.count("cycle")
        assert 0 < audited < len(tokens)
        other = FidelityProfile(audit_fraction=0.5, seed=2)
        assert first != [other.decide("composite:dual", t)
                         for t in tokens]

    def test_resolve_honors_spec_constraints(self):
        cycle_everywhere = FidelityProfile(default="cycle")
        spec = ScenarioSpec(model="gpt3-7b")
        assert spec_region(spec) == "composite:dual"
        assert cycle_everywhere.resolve(spec) == "cycle"
        # Non-PIM baselines and pipeline-parallel engines stay analytic.
        assert cycle_everywhere.resolve(
            ScenarioSpec(system="npu-only")) == "analytic"
        assert cycle_everywhere.resolve(
            ScenarioSpec(pp=2)) == "analytic"

    def test_auto_fidelity_resolves_through_profile(self):
        profile = FidelityProfile(
            regions=(("composite:dual", "cycle"),)).to_dict()
        spec = ScenarioSpec(model="gpt3-7b", fidelity="auto",
                            fidelity_options={"profile": profile})
        assert spec.resolve_fidelity() == "cycle"
        session = Session(spec)
        assert session.fidelity == "cycle"
        assert session.run().fidelity == "cycle"
        # The blocked-buffer region is not pinned, so it runs analytic.
        blocked = ScenarioSpec(model="gpt3-7b", system="npu-pim",
                               fidelity="auto",
                               fidelity_options={"profile": profile})
        assert blocked.resolve_fidelity() == "analytic"

    def test_auto_profile_pickles_through_parallel_runner(self):
        from repro.api.session import run_scenarios
        profile = run_refute(seq_lens=(128,))["profile"]
        specs = [ScenarioSpec(model="gpt3-7b", fidelity="auto",
                              fidelity_options={"profile": profile}),
                 ScenarioSpec(model="gpt3-7b", fidelity="cycle")]
        results = run_scenarios(specs, parallel=2)
        assert [r.fidelity for r in results] == ["analytic", "cycle"]

    def test_auto_matches_cycle_latency_percentiles(self):
        """The accuracy half of the PGO payoff: near-cycle percentiles.

        The default grid's profile keeps every region analytic; the
        resulting sweep must reproduce the cycle tier's serving latency
        percentiles within the refutation-backed tolerance.
        """
        profile = FidelityProfile().to_dict()  # all-analytic

        def sweep(fidelity, options):
            return [
                Session(ScenarioSpec(
                    model="gpt3-7b", fidelity=fidelity,
                    fidelity_options=options,
                    traffic=TrafficSpec(kind="poisson", max_requests=6,
                                        horizon_cycles=4e6,
                                        seed=seed))).run()
                for seed in (1, 2, 3)
            ]

        cycle_results = sweep("cycle", None)
        auto_results = sweep("auto", {"profile": profile})
        assert all(r.fidelity == "analytic" for r in auto_results)
        percentiles = ("ttft_p50_ms", "tpot_p50_ms", "end_to_end_p50_ms",
                       "end_to_end_p99_ms")
        for auto, cycle in zip(auto_results, cycle_results):
            assert set(percentiles) <= set(cycle.latency_ms)
            for key in percentiles:
                assert auto.latency_ms[key] == pytest.approx(
                    cycle.latency_ms[key], rel=0.15)

    def test_auto_is_measurably_faster_than_all_cycle(self):
        """The speed half: auto skips the cycle tier's calibration.

        What the profile buys is the per-hardware-config command-level
        calibration replay the cycle tier pays on every fresh perf
        cache (every sweep worker, every new config).  Best-of-3 minima
        over 20 cold materializations keep the ratio robust to
        shared-runner noise; the margin is ~3x locally, so the >1.5x
        gate has headroom.
        """
        import time

        from repro.perf import invalidate
        profile = FidelityProfile().to_dict()
        auto_spec = ScenarioSpec(
            model="gpt3-7b", fidelity="auto",
            fidelity_options={"profile": profile},
            traffic=TrafficSpec(kind="external"))
        cycle_spec = ScenarioSpec(model="gpt3-7b", fidelity="cycle",
                                  traffic=TrafficSpec(kind="external"))

        def cold_materializations(spec, reps=20):
            start = time.perf_counter()
            for _ in range(reps):
                invalidate()
                Session(spec).materialize()
            return time.perf_counter() - start

        cold_materializations(cycle_spec, 2)  # warm both code paths
        cold_materializations(auto_spec, 2)
        cycle_wall = min(cold_materializations(cycle_spec)
                         for _ in range(3))
        auto_wall = min(cold_materializations(auto_spec)
                        for _ in range(3))
        assert cycle_wall > auto_wall * 1.5, \
            f"auto ({auto_wall:.3f}s) not measurably faster than " \
            f"all-cycle ({cycle_wall:.3f}s)"
