"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binpack import (
    channel_loads,
    greedy_min_load_assign,
    load_imbalance,
    round_robin_assign,
)
from repro.core.estimator import MhaLatencyEstimator, analytic_latencies
from repro.core.partition import partition_batch
from repro.dram.timing import HbmOrganization
from repro.model.layers import decoder_block_operators
from repro.model.spec import GPT3_7B
from repro.serving.paging import PagedKvAllocator, PagedKvConfig
from repro.sim.engine import Resource
from repro.sim.stats import merge_intervals

from tests.conftest import make_request

ESTIMATOR = MhaLatencyEstimator(GPT3_7B, HbmOrganization(),
                                analytic_latencies())

seq_lens = st.lists(st.integers(min_value=1, max_value=4096),
                    min_size=1, max_size=40)


class TestEstimatorProperties:
    @given(seq=st.integers(min_value=1, max_value=100_000))
    def test_estimate_positive(self, seq):
        assert ESTIMATOR.estimate(seq) > 0

    @given(a=st.integers(min_value=1, max_value=50_000),
           b=st.integers(min_value=0, max_value=50_000))
    def test_estimate_monotonic(self, a, b):
        assert ESTIMATOR.estimate(a + b + 1) >= ESTIMATOR.estimate(a)

    @given(a=st.integers(min_value=1, max_value=10_000),
           b=st.integers(min_value=1, max_value=10_000))
    def test_estimate_subadditive_in_concatenation(self, a, b):
        """Two short requests cost at least one long one (per-GEMV floors
        and GWRITE overheads make splitting never cheaper)."""
        assert ESTIMATOR.estimate(a) + ESTIMATOR.estimate(b) >= \
            ESTIMATOR.estimate(a + b) * 0.99


class TestBinPackProperties:
    @given(lengths=seq_lens,
           channels=st.integers(min_value=1, max_value=32))
    @settings(max_examples=50)
    def test_greedy_assigns_every_request_to_valid_channel(self, lengths,
                                                           channels):
        requests = [make_request(i, input_len=n)
                    for i, n in enumerate(lengths)]
        assignment = greedy_min_load_assign(requests, ESTIMATOR, channels)
        assert set(assignment) == {r.request_id for r in requests}
        assert all(0 <= c < channels for c in assignment.values())

    @given(lengths=seq_lens,
           channels=st.integers(min_value=1, max_value=16))
    @settings(max_examples=50)
    def test_greedy_within_largest_item_of_round_robin(self, lengths,
                                                       channels):
        # Online greedy does NOT strictly dominate round robin — for
        # some arrival orders RR lands a fraction of a percent better
        # (hypothesis found lengths=[1724, 6, 1135, 1723, 1, 1134] on 2
        # channels, greedy 0.03% worse).  The provable relation is via
        # list scheduling: greedy_max <= mean + largest item, and
        # rr_max >= mean, so greedy_max <= rr_max + largest item.
        greedy_reqs = [make_request(i, input_len=n)
                       for i, n in enumerate(lengths)]
        rr_reqs = [make_request(i, input_len=n)
                   for i, n in enumerate(lengths)]
        greedy_min_load_assign(greedy_reqs, ESTIMATOR, channels)
        round_robin_assign(rr_reqs, channels)
        greedy_max = max(channel_loads(greedy_reqs, ESTIMATOR, channels))
        rr_max = max(channel_loads(rr_reqs, ESTIMATOR, channels))
        largest = max(ESTIMATOR.estimate(r.seq_len) for r in greedy_reqs)
        assert greedy_max <= rr_max + largest * 1.0001

    @given(lengths=seq_lens, channels=st.integers(min_value=1, max_value=16))
    @settings(max_examples=50)
    def test_greedy_within_lpt_bound_of_mean(self, lengths, channels):
        """LPT is a 4/3-approximation: max load <= 4/3 OPT + one job;
        check the weaker bound max <= mean + largest item."""
        requests = [make_request(i, input_len=n)
                    for i, n in enumerate(lengths)]
        greedy_min_load_assign(requests, ESTIMATOR, channels)
        loads = channel_loads(requests, ESTIMATOR, channels)
        mean = sum(loads) / channels
        largest = max(ESTIMATOR.estimate(r.seq_len) for r in requests)
        assert max(loads) <= mean + largest + 1e-6


class TestPartitionProperties:
    @given(lengths=seq_lens, channels=st.integers(min_value=1, max_value=16))
    @settings(max_examples=50)
    def test_partition_is_exact_two_coloring(self, lengths, channels):
        requests = [make_request(i, input_len=n, channel=i % channels)
                    for i, n in enumerate(lengths)]
        sb1, sb2 = partition_batch(requests, channels)
        ids = sorted(r.request_id for r in sb1 + sb2)
        assert ids == sorted(r.request_id for r in requests)

    @given(lengths=seq_lens, channels=st.integers(min_value=1, max_value=16))
    @settings(max_examples=50)
    def test_partition_size_skew_at_most_one(self, lengths, channels):
        requests = [make_request(i, input_len=n, channel=i % channels)
                    for i, n in enumerate(lengths)]
        sb1, sb2 = partition_batch(requests, channels)
        assert abs(len(sb1) - len(sb2)) <= 1

    @given(lengths=seq_lens, channels=st.integers(min_value=1, max_value=16))
    @settings(max_examples=50)
    def test_per_channel_split_within_one(self, lengths, channels):
        requests = [make_request(i, input_len=n, channel=i % channels)
                    for i, n in enumerate(lengths)]
        sb1, sb2 = partition_batch(requests, channels)
        for channel in range(channels):
            n1 = sum(1 for r in sb1 if r.channel == channel)
            n2 = sum(1 for r in sb2 if r.channel == channel)
            assert abs(n1 - n2) <= 1


class TestPagingProperties:
    @given(tokens=st.lists(st.integers(min_value=1, max_value=2000),
                           min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_allocate_release_conserves_blocks(self, tokens):
        allocator = PagedKvAllocator(PagedKvConfig(), GPT3_7B)
        total = allocator.total_blocks
        for i, t in enumerate(tokens):
            if allocator.can_allocate(i, t):
                allocator.allocate(i, t)
        assert allocator.free_blocks + allocator.used_blocks == total
        for i in list(allocator.resident_requests()):
            allocator.release(i)
        assert allocator.free_blocks == total

    @given(growth=st.lists(st.integers(min_value=1, max_value=64),
                           min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_monotonic_growth_allocates_exact_blocks(self, growth):
        allocator = PagedKvAllocator(PagedKvConfig(), GPT3_7B)
        context = 0
        for delta in growth:
            context += delta
            allocator.allocate(0, context)
        assert allocator.used_blocks == allocator.blocks_for(context)


class TestSimProperties:
    @given(durations=st.lists(st.floats(min_value=0.1, max_value=100.0),
                              min_size=1, max_size=30))
    def test_resource_bookings_never_overlap(self, durations):
        resource = Resource("r")
        for d in durations:
            resource.acquire_for(d)
        intervals = resource.intervals
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2 + 1e-9

    @given(intervals=st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)), max_size=30))
    def test_merge_intervals_disjoint_and_sorted(self, intervals):
        merged = merge_intervals(intervals)
        for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
            assert e1 < s2
        assert all(s < e for s, e in merged)


class TestOperatorProperties:
    @given(lengths=st.lists(st.integers(min_value=1, max_value=2048),
                            min_size=1, max_size=16))
    @settings(max_examples=30)
    def test_operator_flops_and_bytes_positive(self, lengths):
        ops = decoder_block_operators(GPT3_7B, lengths)
        assert all(op.flops > 0 for op in ops)
        assert all(op.bytes_moved > 0 for op in ops)

    @given(lengths=st.lists(st.integers(min_value=1, max_value=2048),
                            min_size=1, max_size=16))
    @settings(max_examples=30)
    def test_gemm_flops_independent_of_seq_lens(self, lengths):
        """Generation-phase GEMM work depends only on the batch size."""
        ops_a = decoder_block_operators(GPT3_7B, lengths)
        ops_b = decoder_block_operators(GPT3_7B, [1] * len(lengths))
        qkv_a = next(op for op in ops_a if op.name == "qkv_generation")
        qkv_b = next(op for op in ops_b if op.name == "qkv_generation")
        assert qkv_a.flops == qkv_b.flops
