"""Equivalence-class serving engine: grouped == per-request, bit for bit.

The grouped engine's contract is that ``grouping="auto"/"on"`` produces
records and aggregates **bit-identical** to ``grouping="off"`` for every
scenario.  These tests pin that contract across randomized Poisson and
replay traces (a seeded-random property loop), the multi-device system
engine, KV-pressure fallbacks and feature-flag variants, plus the unit
behavior of the grouping primitives themselves.
"""

import random

import pytest

from repro.api import ScenarioSpec, ServingSpec, Session, TrafficSpec
from repro.api.bench import bucketed_replay_triples, serving_bench_spec
from repro.core.device import NeuPimsDevice
from repro.model.spec import GPT3_7B
from repro.serving.grouping import (GroupedExecutor, GroupedScheduleState,
                                    class_histogram, mha_histogram,
                                    shift_histogram)
from repro.serving.pool import RequestPool
from repro.serving.request import InferenceRequest, RequestStatus
from repro.serving.scheduler import IterationScheduler

FAST = dict(model="gpt3-7b", fidelity="analytic")


def run_pair(spec):
    """One scenario at both grouping modes -> (off, auto) result dicts."""
    off = Session(spec.override(grouping="off")).run()
    auto = Session(spec.override(grouping="auto")).run()
    return off.to_dict(), auto.to_dict()


class TestRecordIdentity:
    def test_replay_bucketed_trace_identical(self):
        spec = serving_bench_spec(num_requests=96)
        off, auto = run_pair(spec)
        assert off == auto
        assert off["iterations"] > 0

    def test_poisson_streaming_identical(self):
        spec = ScenarioSpec(
            layers_resident=2, **FAST,
            traffic=TrafficSpec.poisson(rate_per_kcycle=0.05,
                                        horizon_cycles=3e6, seed=11),
            serving=ServingSpec(max_batch_size=24))
        off, auto = run_pair(spec)
        assert off == auto

    def test_system_engine_identical(self):
        spec = ScenarioSpec(
            pp=2, tp=2, **FAST,
            traffic=TrafficSpec.poisson(rate_per_kcycle=0.05,
                                        horizon_cycles=2e6, seed=5),
            serving=ServingSpec(max_batch_size=16))
        off, auto = run_pair(spec)
        assert off == auto

    def test_kv_pressure_fallback_identical(self):
        # A tiny KV pool forces the grouped engine to refuse batched
        # growth and hand iterations to the per-request path (which owns
        # the exact mid-generation OOM semantics).
        spec = ScenarioSpec(
            layers_resident=2, **FAST,
            traffic=TrafficSpec.poisson(rate_per_kcycle=0.08,
                                        horizon_cycles=3e6, seed=2),
            serving=ServingSpec(max_batch_size=32,
                                kv_capacity_bytes=1 << 22))
        off, auto = run_pair(spec)
        assert off == auto

    def test_randomized_property_loop(self):
        # Seeded-random sweep over traffic shapes and serving knobs: the
        # grouped path must be bit-identical on every draw.
        rng = random.Random(1234)
        for trial in range(6):
            if rng.random() < 0.5:
                traffic = TrafficSpec.poisson(
                    rate_per_kcycle=rng.choice((0.02, 0.05, 0.1)),
                    horizon_cycles=rng.choice((1e6, 2e6)),
                    seed=rng.randrange(1000))
            else:
                triples = [(rng.choice((32, 64, 128)),
                            rng.choice((8, 16, 24)),
                            float(rng.randrange(0, 500_000)))
                           for _ in range(rng.randrange(8, 40))]
                traffic = TrafficSpec.replay(triples)
            spec = ScenarioSpec(
                layers_resident=rng.choice((1, 2)), **FAST,
                traffic=traffic,
                serving=ServingSpec(
                    max_batch_size=rng.choice((4, 12, 32)),
                    paged_kv=rng.random() < 0.8,
                    load_tracker=rng.random() < 0.8,
                    max_iterations=rng.choice((200, 100_000))))
            if rng.random() < 0.3:
                spec = spec.override(sub_batch_interleaving=False)
            off, auto = run_pair(spec)
            assert off == auto, f"trial {trial} diverged: {spec}"

    def test_latency_report_identical(self):
        spec = ScenarioSpec(
            layers_resident=2, **FAST,
            traffic=TrafficSpec.poisson(rate_per_kcycle=0.05,
                                        horizon_cycles=3e6, seed=9),
            serving=ServingSpec(max_batch_size=16))
        off = Session(spec.override(grouping="off"))
        auto = Session(spec.override(grouping="auto"))
        off.run()
        auto.run()
        assert off.latency_tracker.report().summary() == \
            auto.latency_tracker.report().summary()


class TestGroupingModes:
    def test_on_requires_class_engine(self):
        spec = ScenarioSpec(
            system="gpu-only", layers_resident=2, model="gpt3-7b",
            fidelity="analytic",
            traffic=TrafficSpec.poisson(horizon_cycles=1e6),
            serving=ServingSpec(grouping="on"))
        with pytest.raises(ValueError, match="class-grouped"):
            Session(spec).materialize()

    def test_auto_falls_back_for_baselines(self):
        base = ScenarioSpec(
            system="gpu-only", layers_resident=2, model="gpt3-7b",
            fidelity="analytic",
            traffic=TrafficSpec.poisson(rate_per_kcycle=0.05,
                                        horizon_cycles=2e6, seed=4),
            serving=ServingSpec(max_batch_size=8))
        off, auto = run_pair(base)
        assert off == auto

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="grouping"):
            ServingSpec(grouping="sometimes")
        pool = RequestPool()
        with pytest.raises(ValueError, match="grouping"):
            IterationScheduler(pool, lambda batch: 1.0, 4,
                               grouping="sometimes")
        with pytest.raises(ValueError, match="GroupedExecutor"):
            IterationScheduler(pool, lambda batch: 1.0, 4, grouping="on")

    def test_grouping_knob_round_trips(self):
        spec = ScenarioSpec(serving=ServingSpec(grouping="on"))
        assert ScenarioSpec.from_dict(spec.to_dict()).serving.grouping == \
            "on"
        assert spec.override(grouping="off").serving.grouping == "off"


class TestGroupCommitWindows:
    def _scheduler(self, batch_size=32, grouping="auto", output_len=40):
        device = NeuPimsDevice(GPT3_7B, tp=4, layers_resident=2)
        pool = RequestPool()
        pool.submit_all(
            InferenceRequest(i, input_len=64 + 32 * (i % 3),
                             output_len=output_len,
                             status=RequestStatus.RUNNING)
            for i in range(batch_size))
        grouped = GroupedExecutor(
            device.prepare_class_plan,
            lambda plan, shift: device.iteration_from_plan(plan,
                                                           shift).latency)
        scheduler = IterationScheduler(
            pool, device.executor(), max_batch_size=batch_size,
            assign_channels=device.assign_channels,
            grouping=grouping, grouped=grouped)
        return scheduler

    def test_one_call_commits_a_window(self):
        scheduler = self._scheduler()
        record = scheduler.run_iteration(max_steps=10)
        assert record is not None
        assert len(scheduler.stats.iterations) == 10
        # Deferred state: pool objects untouched until sync.
        scheduler.sync_grouped()
        generated = [r.generated for r in scheduler.pool.running()]
        assert generated  # batch still running after 10 iterations

    def test_single_step_calls_match_run(self):
        full = self._scheduler()
        full.run(max_iterations=25)
        stepped = self._scheduler()
        for _ in range(25):
            if stepped.run_iteration(max_steps=1) is None:
                break
        stepped.sync_grouped()
        a = [(r.index, r.start_time, r.latency, r.batch_size)
             for r in full.stats.iterations[:25]]
        b = [(r.index, r.start_time, r.latency, r.batch_size)
             for r in stepped.stats.iterations[:25]]
        assert a == b

    def test_max_iterations_budget_respected(self):
        scheduler = self._scheduler()
        stats = scheduler.run(max_iterations=7)
        assert len(stats.iterations) == 7


class TestGroupingPrimitives:
    def _requests(self):
        reqs = []
        for i, (seq, out, channel) in enumerate(
                [(64, 8, 0), (64, 8, 0), (64, 4, 1), (128, 8, 1)]):
            request = InferenceRequest(i, input_len=seq, output_len=out,
                                       status=RequestStatus.RUNNING)
            request.channel = channel
            reqs.append(request)
        return reqs

    def test_mha_histogram_canonical(self):
        hist = mha_histogram(self._requests())
        assert hist == ((0, 64, 2), (1, 64, 1), (1, 128, 1))

    def test_shift_preserves_order_and_counts(self):
        hist = mha_histogram(self._requests())
        shifted = shift_histogram(hist, 3)
        assert shifted == ((0, 67, 2), (1, 67, 1), (1, 131, 1))
        assert shift_histogram(hist, 0) is hist

    def test_class_histogram_keys(self):
        classes = class_histogram(self._requests())
        assert classes == {(0, 64, 8): 2, (1, 64, 4): 1, (1, 128, 8): 1}

    def test_pool_class_histogram(self):
        pool = RequestPool()
        for request in self._requests():
            pool.submit(request)
        assert pool.class_histogram() == class_histogram(self._requests())
        assert pool.class_histogram(RequestStatus.WAITING) == {}

    def test_state_sync_applies_tokens_and_finishes(self):
        reqs = self._requests()
        state = GroupedScheduleState(reqs, plan=None)
        assert state.steps_until_finish() == 4
        for _ in range(4):
            state.advance()
        state.sync(None, None, None, clock_end=0.0)
        assert [r.generated for r in reqs] == [4, 4, 4, 4]
        assert reqs[2].status is RequestStatus.DONE
        assert reqs[0].status is RequestStatus.RUNNING

    def test_mha_stage_matches_class_stage(self):
        device = NeuPimsDevice(GPT3_7B, tp=4, layers_resident=2)
        reqs = self._requests()
        assert device.mha_stage(reqs) == \
            device.mha_stage_classes(mha_histogram(reqs))

    def test_iteration_replay_memo_hits_are_identical(self):
        device = NeuPimsDevice(GPT3_7B, tp=4, layers_resident=2)
        reqs = self._requests()
        plan = device.prepare_class_plan(reqs)
        first = device.iteration_from_plan(plan, 0)
        again = device.iteration_from_plan(plan, 0)
        assert again is first  # exact-signature replay
        shifted = device.iteration_from_plan(plan, 1)
        assert shifted.latency >= 0


class TestAllocatorLedger:
    def test_grouped_run_keeps_ledger_consistent(self):
        spec = serving_bench_spec(num_requests=64)
        session = Session(spec.override(grouping="auto"))
        session.run()
        assert all(allocator.ledger_consistent()
                   for allocator in session.allocators)
        # All requests retired -> everything released.
        assert all(allocator.used_blocks == 0
                   for allocator in session.allocators)

    def test_bucketed_triples_deterministic(self):
        assert bucketed_replay_triples(16) == bucketed_replay_triples(16)
        with pytest.raises(ValueError):
            bucketed_replay_triples(0)
