"""Unit tests for the bank state machines (single vs dual row buffer)."""

import pytest

from repro.dram.bank import Bank, StructuralHazard, TimingViolation
from repro.dram.commands import BufferTarget
from repro.dram.timing import TimingParams


@pytest.fixture
def timing():
    return TimingParams()


def dual_bank(timing):
    return Bank(0, timing, dual_row_buffer=True)


def single_bank(timing):
    return Bank(0, timing, dual_row_buffer=False)


class TestActivation:
    def test_activate_opens_row(self, timing):
        bank = dual_bank(timing)
        bank.activate(BufferTarget.MEM, row=5, time=0.0)
        assert bank.open_row(BufferTarget.MEM) == 5

    def test_activate_open_buffer_raises(self, timing):
        bank = dual_bank(timing)
        bank.activate(BufferTarget.MEM, row=5, time=0.0)
        with pytest.raises(StructuralHazard):
            bank.activate(BufferTarget.MEM, row=6, time=100.0)

    def test_reactivation_requires_precharge_plus_trp(self, timing):
        bank = dual_bank(timing)
        bank.activate(BufferTarget.MEM, row=5, time=0.0)
        bank.precharge(BufferTarget.MEM, time=float(timing.tRAS))
        earliest = bank.earliest_activate(BufferTarget.MEM, 0.0)
        assert earliest == timing.tRAS + timing.tRP

    def test_early_activate_raises_timing_violation(self, timing):
        bank = dual_bank(timing)
        bank.activate(BufferTarget.MEM, row=5, time=0.0)
        bank.precharge(BufferTarget.MEM, time=float(timing.tRAS))
        with pytest.raises(TimingViolation):
            bank.activate(BufferTarget.MEM, row=6, time=timing.tRAS + 1)


class TestDualRowBuffer:
    def test_both_buffers_can_hold_different_rows(self, timing):
        bank = dual_bank(timing)
        bank.activate(BufferTarget.MEM, row=5, time=0.0)
        t = bank.earliest_activate(BufferTarget.PIM, 0.0)
        bank.activate(BufferTarget.PIM, row=9, time=t)
        assert bank.open_row(BufferTarget.MEM) == 5
        assert bank.open_row(BufferTarget.PIM) == 9

    def test_same_row_in_both_buffers_rejected(self, timing):
        """The paper's controller rule: multiple activations must not be
        issued over the same bank row."""
        bank = dual_bank(timing)
        bank.activate(BufferTarget.MEM, row=5, time=0.0)
        t = bank.earliest_activate(BufferTarget.PIM, 0.0)
        with pytest.raises(StructuralHazard):
            bank.activate(BufferTarget.PIM, row=5, time=t)

    def test_cross_buffer_activates_spaced_by_trrd(self, timing):
        bank = dual_bank(timing)
        bank.activate(BufferTarget.MEM, row=5, time=0.0)
        assert bank.earliest_activate(BufferTarget.PIM, 0.0) == timing.tRRD_L

    def test_single_buffer_bank_maps_pim_to_shared_buffer(self, timing):
        bank = single_bank(timing)
        bank.activate(BufferTarget.PIM, row=3, time=0.0)
        assert bank.open_row(BufferTarget.MEM) == 3


class TestBlockedMode:
    def test_pim_hold_blocks_mem_in_single_buffer(self, timing):
        bank = single_bank(timing)
        bank.begin_pim_hold(until=500.0)
        assert bank.is_blocked_for_mem(100.0)
        assert not bank.is_blocked_for_mem(600.0)

    def test_dual_buffer_never_blocked(self, timing):
        bank = dual_bank(timing)
        bank.begin_pim_hold(until=500.0)
        assert not bank.is_blocked_for_mem(100.0)

    def test_blocked_mode_delays_activate(self, timing):
        bank = single_bank(timing)
        bank.begin_pim_hold(until=500.0)
        assert bank.earliest_activate(BufferTarget.MEM, 0.0) >= 500.0


class TestColumnAccess:
    def test_column_requires_trcd_after_activate(self, timing):
        bank = dual_bank(timing)
        bank.activate(BufferTarget.MEM, row=5, time=0.0)
        assert bank.earliest_column(BufferTarget.MEM, 5, 0.0) == timing.tRCD

    def test_column_on_wrong_row_raises(self, timing):
        bank = dual_bank(timing)
        bank.activate(BufferTarget.MEM, row=5, time=0.0)
        with pytest.raises(StructuralHazard):
            bank.earliest_column(BufferTarget.MEM, 7, 100.0)

    def test_consecutive_columns_spaced_by_tccd(self, timing):
        bank = dual_bank(timing)
        bank.activate(BufferTarget.MEM, row=5, time=0.0)
        bank.column_access(BufferTarget.MEM, 5, float(timing.tRCD))
        earliest = bank.earliest_column(BufferTarget.MEM, 5, 0.0)
        assert earliest == timing.tRCD + timing.tCCD_L

    def test_early_column_raises(self, timing):
        bank = dual_bank(timing)
        bank.activate(BufferTarget.MEM, row=5, time=0.0)
        with pytest.raises(TimingViolation):
            bank.column_access(BufferTarget.MEM, 5, 1.0)

    def test_write_extends_precharge_point(self, timing):
        bank = dual_bank(timing)
        bank.activate(BufferTarget.MEM, row=5, time=0.0)
        end = bank.column_access(BufferTarget.MEM, 5, float(timing.tRCD),
                                 is_write=True)
        assert bank.earliest_precharge(BufferTarget.MEM, 0.0) == \
            end + timing.tWR


class TestPrechargeAndRefresh:
    def test_precharge_before_tras_raises(self, timing):
        bank = dual_bank(timing)
        bank.activate(BufferTarget.MEM, row=5, time=0.0)
        with pytest.raises(TimingViolation):
            bank.precharge(BufferTarget.MEM, time=1.0)

    def test_precharge_idle_bank_is_noop(self, timing):
        bank = dual_bank(timing)
        bank.precharge(BufferTarget.MEM, time=0.0)
        assert bank.open_row(BufferTarget.MEM) is None

    def test_refresh_closes_all_buffers(self, timing):
        bank = dual_bank(timing)
        bank.activate(BufferTarget.MEM, row=5, time=0.0)
        bank.refresh(time=100.0, trfc=timing.tRFC)
        assert bank.open_row(BufferTarget.MEM) is None
        assert bank.earliest_activate(BufferTarget.MEM, 0.0) >= \
            100.0 + timing.tRFC
