"""Tests for the Figure 10 head-granularity overlap model."""

import pytest

from repro.core.overlap import HeadPipelineModel, OverlapTimeline
from repro.model.spec import GPT3_7B, GPT3_30B


class TestHeadPipeline:
    def test_dual_pipeline_faster_than_blocked(self):
        model = HeadPipelineModel(GPT3_7B)
        assert model.overlap_speedup(512) > 1.0

    def test_dual_total_close_to_pim_busy(self):
        """With softmax much cheaper than the GEMVs, the pipeline is
        PIM-bound — validating the device model's max() approximation."""
        model = HeadPipelineModel(GPT3_7B, dual_row_buffer=True)
        timeline = model.run(512)
        assert timeline.total_cycles < 1.3 * timeline.pim_busy

    def test_blocked_pim_idles_during_softmax(self):
        blocked = HeadPipelineModel(GPT3_7B, dual_row_buffer=False)
        dual = HeadPipelineModel(GPT3_7B, dual_row_buffer=True)
        assert blocked.run(512).pim_idle_fraction > \
            dual.run(512).pim_idle_fraction

    def test_vector_units_mostly_idle_either_way(self):
        """Figure 10: the vector units are cheap relative to the GEMVs."""
        model = HeadPipelineModel(GPT3_7B, dual_row_buffer=True)
        assert model.run(512).vector_idle_fraction > 0.5

    def test_speedup_grows_with_head_count(self):
        small = HeadPipelineModel(GPT3_7B)     # 32 heads
        large = HeadPipelineModel(GPT3_30B)    # 56 heads
        assert large.overlap_speedup(256) >= small.overlap_speedup(256) * 0.9

    def test_invalid_seq_raises(self):
        with pytest.raises(ValueError):
            HeadPipelineModel(GPT3_7B).run(0)

    def test_negative_transfer_raises(self):
        with pytest.raises(ValueError):
            HeadPipelineModel(GPT3_7B, transfer_cycles=-1.0)

    def test_timeline_idle_fractions_bounded(self):
        timeline = OverlapTimeline(total_cycles=100.0, pim_busy=80.0,
                                   vector_busy=10.0)
        assert timeline.pim_idle_fraction == pytest.approx(0.2)
        assert timeline.vector_idle_fraction == pytest.approx(0.9)

    def test_zero_total_timeline(self):
        timeline = OverlapTimeline(0.0, 0.0, 0.0)
        assert timeline.pim_idle_fraction == 0.0
