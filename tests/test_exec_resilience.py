"""Crash-tolerant parallel execution: TaskError, retries and salvage.

The acceptance bar: a worker that is killed or times out mid-sweep is
retried (then salvaged in the parent), and the merged result stays
identical to a serial run — recovery must never perturb ordering.
"""

import os
import pickle

import pytest

from repro.exec import (
    FaultyBackend,
    ProcessPoolBackend,
    SerialBackend,
    TaskError,
    TaskSpec,
    WorkerCrash,
    is_picklable,
)


def square(x):
    """Trivial pure task."""
    return x * x


def boom(x):
    """Task that always raises (a deterministic bug)."""
    raise ValueError(f"bad cell {x}")


def crash_once(x, marker):
    """Die abruptly on the first attempt, succeed after (marker file)."""
    if not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(1)
    return x * x


def crash_in_worker(x, parent_pid):
    """Die on every attempt except in the parent (the salvage path)."""
    if os.getpid() != parent_pid:
        os._exit(1)
    return x * x


class _PoisonedState:
    """Object whose pickling hook raises a non-pickling error."""

    def __getstate__(self):
        raise RuntimeError("bug in __getstate__, not a pickling failure")


class TestTaskError:
    def test_serial_backend_wraps_with_index_and_digest(self):
        tasks = [TaskSpec(square, (0,)), TaskSpec(boom, (1,)),
                 TaskSpec(square, (2,))]
        with pytest.raises(TaskError) as err:
            SerialBackend().run(tasks)
        assert err.value.index == 1
        assert err.value.digest == TaskSpec(boom, (1,)).digest()
        assert "ValueError: bad cell 1" in err.value.message
        assert "task 1" in str(err.value)

    def test_pool_backend_propagates_across_processes(self):
        tasks = [TaskSpec(square, (i,)) for i in range(4)]
        tasks.insert(2, TaskSpec(boom, (9,)))
        pool = ProcessPoolBackend(workers=2)
        with pytest.raises(TaskError) as err:
            pool.run(tasks)
        assert err.value.index == 2
        assert err.value.digest == TaskSpec(boom, (9,)).digest()

    def test_task_error_round_trips_through_pickle(self):
        error = TaskError(7, "abc123def456", "ValueError: x")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, TaskError)
        assert (clone.index, clone.digest, clone.message) == \
            (7, "abc123def456", "ValueError: x")

    def test_digest_stable_and_argument_sensitive(self):
        assert TaskSpec(square, (1,)).digest() == \
            TaskSpec(square, (1,)).digest()
        assert TaskSpec(square, (1,)).digest() != \
            TaskSpec(square, (2,)).digest()
        assert len(TaskSpec(square, (1,)).digest()) == 12


class TestIsPicklable:
    def test_plain_objects_and_failures(self):
        assert is_picklable(TaskSpec(square, (1,)))
        assert not is_picklable(lambda x: x)
        assert not is_picklable(open(os.devnull))

    def test_non_pickling_errors_propagate(self):
        # A bug inside __getstate__ is not "unpicklable" — it must
        # surface, not be swallowed into a False.
        with pytest.raises(RuntimeError, match="bug in __getstate__"):
            is_picklable(_PoisonedState())


class TestCrashRecovery:
    def test_killed_worker_retried_result_matches_serial(self, tmp_path):
        marker = str(tmp_path / "crashed-once")
        tasks = [TaskSpec(square, (i,)) for i in range(6)]
        tasks.insert(3, TaskSpec(crash_once, (7, marker)))
        # Serial reference: pre-create the marker so the crash branch
        # (os._exit) never fires in the pytest process itself.
        open(marker, "w").close()
        serial = SerialBackend().run(list(tasks))
        os.remove(marker)
        pool = ProcessPoolBackend(workers=2, task_timeout=1.0,
                                  max_retries=1)
        assert pool.run(tasks) == serial
        assert pool.retried_chunks == 1
        assert pool.salvaged_chunks == 0

    def test_persistent_crash_salvaged_in_parent(self):
        parent = os.getpid()
        tasks = [TaskSpec(square, (i,)) for i in range(4)]
        tasks.insert(2, TaskSpec(crash_in_worker, (5, parent)))
        pool = ProcessPoolBackend(workers=2, task_timeout=1.0,
                                  max_retries=1)
        out = pool.run(tasks)
        assert out == [0, 1, 25, 4, 9]
        assert pool.retried_chunks == 1
        assert pool.salvaged_chunks == 1

    def test_salvage_disabled_raises(self):
        parent = os.getpid()
        tasks = [TaskSpec(square, (i,)) for i in range(4)]
        tasks.append(TaskSpec(crash_in_worker, (5, parent)))
        pool = ProcessPoolBackend(workers=2, task_timeout=1.0,
                                  max_retries=0, salvage=False)
        with pytest.raises(RuntimeError, match="lost after"):
            pool.run(tasks)

    def test_recovery_knob_validation(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(task_timeout=0.0)
        with pytest.raises(ValueError):
            ProcessPoolBackend(max_retries=-1)


def run_fault_cell(seed):
    """Worker-picklable: one seeded chaos cell to a RunResult."""
    from repro.api import Session
    from repro.faults.chaos import chaos_spec
    return Session(chaos_spec(seed)).run()


class TestResilienceAggregation:
    """`aggregate_resilience` merges worker counters like a serial loop."""

    def test_parallel_merge_matches_serial(self):
        from repro.api import aggregate_resilience
        from repro.exec import ParallelRunner
        seeds = [0, 1, 2]
        serial = [run_fault_cell(seed) for seed in seeds]
        pooled = ParallelRunner(parallel=2, chunk_size=1).map(
            run_fault_cell, seeds)
        merged = aggregate_resilience(serial)
        assert aggregate_resilience(pooled) == merged
        # The rollup is plain per-key integer addition: every counter
        # key any cell produced survives, nothing is invented.
        keys = set()
        for result in serial:
            keys |= set(result.resilience)
            for key, value in result.resilience.items():
                assert merged[key] >= value
        assert set(merged) == keys
        assert merged["completed"] == sum(
            r.resilience.get("completed", 0) for r in serial)
        assert merged["completed"] > 0

    def test_empty_and_counterless_results_merge_to_nothing(self):
        from repro.api import ScenarioSpec, Session, aggregate_resilience
        assert aggregate_resilience([]) == {}
        plain = Session(ScenarioSpec(model="gpt3-7b", fidelity="analytic",
                                     layers_resident=2)).run()
        assert plain.resilience == {}
        assert aggregate_resilience([plain, plain]) == {}


class TestFaultyBackend:
    def test_crashing_tasks_retry_and_match_serial(self):
        tasks = [TaskSpec(square, (i,)) for i in range(5)]
        backend = FaultyBackend({1: 1, 3: 1}, max_retries=1)
        assert backend.run(list(tasks)) == SerialBackend().run(list(tasks))
        assert backend.retried_tasks == 2
        assert backend.salvaged_tasks == 0
        assert backend.attempts == 7  # 5 tasks + 2 crashed attempts

    def test_exhausted_retries_salvage(self):
        tasks = [TaskSpec(square, (i,)) for i in range(3)]
        backend = FaultyBackend({0: 5}, max_retries=2)
        assert backend.run(list(tasks)) == [0, 1, 4]
        assert backend.salvaged_tasks == 1
        assert backend.retried_tasks == 2

    def test_salvage_disabled_raises_worker_crash(self):
        backend = FaultyBackend({0: 5}, max_retries=1, salvage=False)
        with pytest.raises(WorkerCrash, match="task 0 crashed"):
            backend.run([TaskSpec(square, (1,))])

    def test_task_bugs_still_wrapped_not_retried(self):
        backend = FaultyBackend({}, max_retries=3)
        with pytest.raises(TaskError) as err:
            backend.run([TaskSpec(square, (0,)), TaskSpec(boom, (1,))])
        assert err.value.index == 1
        assert backend.attempts == 2  # no retry for deterministic bugs

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultyBackend({-1: 1})
        with pytest.raises(ValueError):
            FaultyBackend({0: -1})
        with pytest.raises(ValueError):
            FaultyBackend({}, max_retries=-1)
